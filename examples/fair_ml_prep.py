"""Fair data preparation: missingness, imputation parity, interventions.

Demonstrates the tutorial's §2.4/§3.3 story quantitatively:

1. group-dependent missingness (MAR on race) is injected into clean data;
2. the two naive resolutions the tutorial dissects — dropping rows and
   global-mean imputation — are compared against group-aware imputers
   using imputation accuracy parity (Zhang & Long);
3. a FairPrep-style pipeline then compares pre-processing interventions
   on the downstream model's fairness metrics.

Run:  python examples/fair_ml_prep.py
"""

import numpy as np

from respdi.cleaning import (
    GroupMeanImputer,
    HotDeckImputer,
    KNNImputer,
    MeanImputer,
    imputation_accuracy_parity,
)
from respdi.cleaning.fairprep import compare_interventions
from respdi.datagen import inject_mar
from respdi.datagen.population import default_health_population

FEATURES = ["x0", "x1", "x2", "x3"]


def main() -> None:
    population = default_health_population(
        minority_fraction=0.2, label_bias_against_minority=-1.5, group_signal=1.5
    )
    clean = population.sample(4000, rng=1)

    print("== injecting MAR missingness: 45% for black patients, 5% white ==")
    dirty, mask = inject_mar(
        clean, "x0", "race", {"black": 0.45, "white": 0.05}, rng=2
    )
    clean_values = np.asarray(clean.column("x0"), dtype=float)
    print(f"  {int(mask.sum())} of {len(clean)} cells removed")

    print("\n== imputation accuracy parity by imputer ==")
    imputers = {
        "global mean": MeanImputer("x0"),
        "group mean": GroupMeanImputer("x0", ["race"]),
        "hot deck": HotDeckImputer("x0", ["race"], rng=3),
        "kNN": KNNImputer("x0", ["x1", "x2", "x3"], k=7),
    }
    header = f"  {'imputer':<12} {'rmse black':>11} {'rmse white':>11} {'parity diff':>12}"
    print(header)
    for name, imputer in imputers.items():
        imputed = imputer.fit_transform(dirty)
        report = imputation_accuracy_parity(
            imputed, "x0", clean_values, mask, ["race"]
        )
        print(
            f"  {name:<12} {report.group_rmse[('black',)]:>11.3f} "
            f"{report.group_rmse[('white',)]:>11.3f} "
            f"{report.accuracy_parity_difference:>12.3f}"
        )

    print("\n== FairPrep-style intervention comparison (clean data) ==")
    results = compare_interventions(
        clean, FEATURES, "y", ["race"], rng=4
    )
    print(f"  {'intervention':<12} {'acc':>6} {'dp diff':>8} "
          f"{'disp impact':>12} {'eo diff':>8}")
    for name, result in results.items():
        summary = result.summary()
        print(
            f"  {name:<12} {summary['accuracy']:>6.3f} "
            f"{summary['dp_difference']:>8.3f} "
            f"{summary['disparate_impact']:>12.3f} "
            f"{summary['eo_difference']:>8.3f}"
        )


if __name__ == "__main__":
    main()
