"""Matcher strength views and the gold-set coverage harness (§2+§5).

The same dirty registry is linked at three strengths — Exact (raw key
equality), Normalized (canonicalized equality), Fuzzy (similarity over
blocked pairs) — and the harness scores each against the ground-truth
entity ids: pairwise precision/recall, per-group entity coverage, and
FuzzyGain, the coverage each strength step recovers.  The punchline is
*whose* records needed the stronger matcher: the group transcribed
cleanly is covered by exact matching alone, while the noisy group only
becomes visible under the fuzzy view.

Run:  python examples/matching_strengths.py
"""

from respdi.datagen import NameNoiseModel, generate_gold_registry
from respdi.linkage import build_view, canonicalize, evaluate_strengths


def main() -> None:
    # Green duplicates are byte-identical copies; blue duplicates carry
    # typos, diacritics, nicknames, token swaps, case and punctuation
    # noise at 1.5x the model's default rates.
    registry = generate_gold_registry(
        300,
        duplicates_per_entity=2,
        noise=NameNoiseModel(),
        group_intensity={"blue": 1.5, "green": 0.0},
        rng=7,
    )
    print(
        f"gold registry: {registry.n_records} records, "
        f"{registry.n_pairs} true duplicate pairs"
    )

    sample = registry.table.column("name")[0]
    print(f"canonicalize({sample!r}) = {canonicalize(sample)!r}\n")

    # The views share one interface; each returns the transitively
    # closed link set at its strength.
    for strength in ("exact", "normalized", "fuzzy"):
        links = build_view(strength, ["name"], threshold=0.85).link(
            registry.table
        )
        print(
            f"{strength:<11} {links.num_links:>5} links, "
            f"{links.num_clusters:>4} clusters"
        )
    print()

    report = evaluate_strengths(
        registry.table,
        "_entity",
        ["name"],
        group_columns=["group"],
        threshold=0.85,
    )
    print(report.render())
    print()
    gains = report.group_coverage_gains["fuzzy"]
    noisy = max(gains, key=lambda group: gains[group])
    print(
        f"FuzzyGain localizes the noise: group {'|'.join(noisy)} recovers "
        f"{gains[noisy]:.1%} of its entities only under the fuzzy view."
    )


if __name__ == "__main__":
    main()
