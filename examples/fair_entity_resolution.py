"""Fairness-aware entity resolution (§5).

A person registry contains duplicates whose corruption rate differs by
group (transcription quality disparity).  A standard ER pipeline —
blocking, weighted field matching, clustering, survivorship — looks fine
on aggregate metrics, but the per-group audit shows it silently loses
more duplicates (and hence more records after naive dedup-merge
decisions) for the high-corruption group.

Run:  python examples/fair_entity_resolution.py
"""

from respdi.datagen import generate_person_registry
from respdi.linkage import (
    FieldComparator,
    RecordMatcher,
    blocking_stats,
    deduplicate,
    evaluate_linkage,
    jaro_winkler_similarity,
    key_blocking,
    levenshtein_similarity,
    numeric_similarity,
    sorted_neighborhood_blocking,
)


def main() -> None:
    registry = generate_person_registry(
        500,
        duplicates_per_entity=1,
        corruption_rates={"blue": 0.55, "green": 0.1},
        rng=3,
    )
    print(f"registry: {len(registry)} records, 500 true entities")

    candidates = key_blocking(
        registry, lambda r: r["name"][:2] if r["name"] else None
    ) | sorted_neighborhood_blocking(registry, lambda r: r["name"], window=6)
    stats = blocking_stats(registry, candidates, "_entity")
    print(
        f"blocking: {stats.candidate_pairs} candidates "
        f"({stats.reduction_ratio:.1%} of pairs pruned, "
        f"pair recall {stats.pair_recall:.2f})"
    )

    matcher = RecordMatcher(
        [
            FieldComparator("name", jaro_winkler_similarity, 3.0),
            FieldComparator("zip", levenshtein_similarity, 1.0),
            FieldComparator(
                "age", lambda a, b: numeric_similarity(a, b, scale=3.0), 1.0
            ),
        ],
        threshold=0.85,
    )
    result = matcher.match(registry, candidates)
    print(f"matching: {len(result.matches)} pairs accepted at "
          f"threshold {matcher.threshold}")

    report = evaluate_linkage(registry, result.matches, "_entity", ["group"])
    print("\naggregate quality looks healthy:")
    print(f"  precision {report.precision:.3f}  recall {report.recall:.3f}  "
          f"F1 {report.f1:.3f}")
    print("\n...but the per-group audit disagrees:")
    for group, recall in sorted(report.group_recall.items()):
        print(f"  recall for group {group}: {recall:.3f} "
              f"({report.group_true_pairs[group]} true pairs)")
    print(f"  recall parity difference: {report.recall_parity_difference:.3f} "
          f"(worst: {report.worst_group})")

    deduped = deduplicate(registry, result.matches, keep="most_complete")
    print(f"\ndeduplication: {len(registry)} -> {len(deduped)} records")
    true_entities = {
        group: len(registry.filter_mask(
            registry.column("group") == group
        ).value_counts("_entity"))
        for group in registry.unique("group")
    }
    print("residual duplicate rows by group (0 = perfect dedup):")
    for (group,), count in sorted(deduped.group_counts(["group"]).items()):
        extra = count - true_entities[group]
        print(f"  {group}: {extra}")


if __name__ == "__main__":
    main()
