"""Unbiased query answering over a skewed sample (§5, Themis-style).

A survey over-sampled white respondents 9:1; the analyst wants
population-level aggregates.  This example compares naive aggregates
against post-stratified and raked estimates, reports the effective
sample size the weights imply, and finishes with disparate-impact repair
of a feature that proxies race.

Run:  python examples/unbiased_query_answering.py
"""


from respdi.cleaning import disparate_impact_repair
from respdi.datagen.population import PopulationModel, SensitiveAttribute
from respdi.debiasing import (
    WeightedQuery,
    effective_sample_size,
    post_stratification_weights,
    raking_weights,
)
from respdi.stats import correlation_ratio


def main() -> None:
    race = SensitiveAttribute("race", {"white": 0.8, "black": 0.2})
    gender = SensitiveAttribute("gender", {"F": 0.5, "M": 0.5})
    population = PopulationModel(
        sensitive=[gender, race],
        n_features=2,
        label_weights=[0.5, -0.5],
        group_label_bias={("F", "black"): -1.5, ("M", "black"): -1.5},
    )
    truth = population.sample(50000, rng=0).aggregate("y", "mean")

    skewed = {
        ("F", "white"): 0.45, ("M", "white"): 0.45,
        ("F", "black"): 0.05, ("M", "black"): 0.05,
    }
    sample = population.sample_biased(5000, skewed, rng=1)
    naive = sample.aggregate("y", "mean")

    print(f"population positive rate (50k reference sample): {truth:.4f}")
    print(f"naive sample estimate (white-oversampled 9:1):   {naive:.4f}")

    post_weights = post_stratification_weights(
        sample, ["gender", "race"], population.group_distribution()
    )
    post = WeightedQuery(sample, post_weights)
    print(f"post-stratified estimate:                        {post.avg('y'):.4f}")
    print(f"  effective sample size: {effective_sample_size(post_weights):.0f} "
          f"of {len(sample)}")

    raked_weights = raking_weights(
        sample,
        {"gender": {"F": 0.5, "M": 0.5}, "race": {"white": 0.8, "black": 0.2}},
    )
    raked = WeightedQuery(sample, raked_weights)
    print(f"raked estimate (marginals only):                 {raked.avg('y'):.4f}")

    print("\nper-group debiased positive rates:")
    for group, mean in sorted(post.group_avg("y", ["gender", "race"]).items()):
        print(f"  {group}: {mean:.4f}")

    print("\nselection fraction for x0 > 1 (population-weighted):")
    from respdi.table import Range

    print(f"  naive:    {len(sample.filter(Range('x0', 1.0, None))) / len(sample):.4f}")
    print(f"  debiased: {post.fraction(Range('x0', 1.0, None)):.4f}")

    print("\ndisparate-impact repair of x0 (race proxy strength):")
    for level in (0.0, 0.5, 1.0):
        repaired = disparate_impact_repair(sample, "x0", ["race"], level)
        association = correlation_ratio(
            list(repaired.column("race")), repaired.column("x0")
        )
        print(f"  repair level {level:.1f}: feature~race association "
              f"{association:.3f}")


if __name__ == "__main__":
    main()
