"""Data-lake discovery: search, joinability, and unbiased feature search.

Generates a synthetic lake with planted ground truth, then runs every
discovery mode the tutorial surveys (§3.1): keyword search, unionable-
table search, joinable-column search, and join-correlation feature
discovery with a bias penalty — ending with a uniform sample over the
discovered join (§3.4).

Run:  python examples/lake_discovery_and_join.py
"""

from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import DataLakeIndex, LSHEnsemble
from respdi.sampling import AcceptRejectJoinSampler


def main() -> None:
    lake = generate_lake(LakeSpec(n_distractors=40), rng=7)
    index = DataLakeIndex(rng=0)
    for name, table in lake.tables.items():
        index.register(name, table, description=f"synthetic table {name}")
    query = lake.tables[lake.query_table]

    print("== keyword search: 'feat key' ==")
    for hit in index.keyword_search("feat key", k=3):
        print(f"  {hit.table_name:<14} score {hit.score:.3f}")

    print("\n== unionable tables (truth: union_0 .. union_4, decreasing) ==")
    for candidate in index.unionable_tables(query.project([lake.query_column]), k=6):
        truth = lake.unionable_truth.get(candidate.table_name, "-")
        print(f"  {candidate.table_name:<14} est {candidate.score:.2f}  true {truth}")

    print("\n== LSH Ensemble domain search at containment >= 0.45 ==")
    ensemble = LSHEnsemble(num_hashes=128, num_partitions=4, rng=1)
    for name, table in lake.tables.items():
        for column in table.schema.categorical_names:
            values = table.unique(column)
            if values:
                ensemble.index((name, column), values)
    ensemble.freeze()
    for key, containment in ensemble.query(query.unique(lake.query_column), 0.45)[:5]:
        print(f"  {str(key):<28} est containment {containment:.2f}")

    print("\n== joinable columns for the query's key ==")
    for candidate in index.joinable_columns(query.unique("key"), k=4):
        print(f"  {candidate.table_name}.{candidate.column_name:<8} "
              f"overlap {candidate.overlap}")

    print("\n== unbiased feature discovery (truth: joinable_0 strongest) ==")
    for feature in index.discover_features(query, "key", "target", k=5):
        truth = lake.join_truth.get(feature.table_name, "-")
        print(f"  {feature.table_name}.{feature.feature_column:<6} "
              f"est corr {feature.estimated_target_correlation:+.2f}  true {truth}")

    print("\n== uniform sample over the discovered join ==")
    best = [f for f in index.discover_features(query, "key", "target", k=5)
            if f.table_name != lake.query_table][0]
    partner = lake.tables[best.table_name]
    sampler = AcceptRejectJoinSampler(query, partner, "key", rng=2)
    sample = sampler.sample(200)
    print(f"  sampled {len(sample)} join tuples from "
          f"query ⋈ {best.table_name} "
          f"(acceptance rate {sampler.stats.acceptance_rate:.2f})")
    print(f"  columns: {sample.column_names}")


if __name__ == "__main__":
    main()
