"""The query service: pinned snapshots, a generation-keyed cache, serve.

Builds a small synthetic lake into a catalog, then walks the four
things :mod:`respdi.service` adds on top of it:

1. **Cached queries** — repeated queries are served from a bounded LRU
   keyed by ``(manifest generation, query fingerprint)``; a hit is
   byte-identical to a recompute, just much faster.
2. **Snapshot isolation** — a pinned :class:`~respdi.service.Snapshot`
   keeps answering against its generation while a writer commits; the
   service re-pins (and drops stale cache entries) on the next query.
3. **Batched fan-out** — ``query_many`` answers a whole batch against
   ONE pinned generation, in parallel, order-preserving.
4. **The serve loop** — the same machinery behind
   ``respdi-catalog serve``: JSON request in, JSON response out.

Run:  python examples/query_service.py
"""

import io
import json
import tempfile
import time
from pathlib import Path

from respdi.catalog import CatalogStore
from respdi.datagen import LakeSpec, generate_lake
from respdi.service import (
    JoinQuery,
    KeywordQuery,
    QueryService,
    UnionQuery,
    serve,
)

SEED = 7


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="respdi-service-"))
    lake = generate_lake(LakeSpec(n_distractors=20), rng=13)
    query_table = lake.tables["query"]
    store = CatalogStore.build(
        workdir / "lake.catalog", dict(lake.tables), rng=SEED
    )
    print(f"catalog: {len(store.names)} tables at {store.directory}")

    # 1. Cached vs. uncached: identical bytes, a fraction of the cost.
    service = QueryService(store, cache_size=64)
    queries = [
        KeywordQuery(text="union", k=5),
        UnionQuery(table=query_table, k=5),
        JoinQuery(values=tuple(query_table.unique("key")), k=5),
    ]
    start = time.perf_counter()
    uncached = [service.query(q, cached=False) for q in queries]
    cold_s = time.perf_counter() - start
    service.query_many(queries)  # prime the cache (all misses)
    start = time.perf_counter()
    cached = [service.query(q) for q in queries]
    warm_s = time.perf_counter() - start
    assert [repr(r) for r in cached] == [repr(r) for r in uncached]
    print(
        f"recompute {cold_s * 1e3:.1f}ms vs. warm cache {warm_s * 1e3:.1f}ms "
        f"({cold_s / warm_s:.0f}x) — identical results "
        f"(stats: {service.cache.stats()})"
    )

    # 2. Snapshot isolation: the pinned handle outlives a commit.
    snapshot = service.snapshot()
    writer = CatalogStore.open(store.directory)
    writer.refresh_many({"query": query_table.head(max(1, len(query_table) // 2))})
    fresh = service.snapshot()
    print(
        f"writer committed: pinned generation {snapshot.generation} still "
        f"answers; service re-pinned to {fresh.generation}, cache keys now "
        f"{sorted({key[0] for key in service.cache.keys()}) or '(empty)'}"
    )

    # 3. One serve round-trip, exactly as `respdi-catalog serve` does it.
    requests = [
        {"op": "keyword", "text": "union", "k": 3},
        {"op": "stats"},
        {"op": "stop"},
    ]
    out = io.StringIO()
    serve(
        service,
        io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
        out,
    )
    for line in out.getvalue().splitlines():
        print(f"serve> {line[:100]}")


if __name__ == "__main__":
    main()
