"""Concurrent socket clients for ``respdi-catalog serve --port``.

Drives N threads against a running JSON-lines socket server, each
sending the same request mix over its own connection, and checks the
serving contract from the outside:

* every client gets an answer for every request (requests shed with
  ``{"error": "overloaded", "retry_after_ms": ...}`` are retried after
  the server-suggested backoff);
* all clients agree **byte-for-byte**: for each slot in the mix, the
  response line is identical across every client — whatever the
  interleaving, there is one answer;
* optionally (``--out``) the agreed lines are written to a file so two
  runs — e.g. before and after corrupting the persistent cache sidecar,
  or against a cold rebuild served on another port — can be ``diff``-ed.

Exits non-zero on any disagreement, transport error, or in-band error
response.  This is both an example and the driver the CI ``serve-smoke``
job uses.

Run:  python examples/socket_clients.py --port 7341 --clients 20 \\
          --request '{"op": "keyword", "text": "query", "k": 5}'
"""

import argparse
import json
import socket
import sys
import threading
import time

DEFAULT_REQUESTS = [
    {"op": "ping"},
    {"op": "keyword", "text": "query", "k": 5},
]
MAX_RETRIES = 200


def drive_client(address, requests, tenant, repeat, lines, errors):
    """One connection; returns the raw response line per request slot."""
    try:
        with socket.create_connection(address, timeout=60) as conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for _ in range(repeat):
                for request in requests:
                    payload = dict(request, tenant=tenant)
                    for _ in range(MAX_RETRIES):
                        writer.write(json.dumps(payload) + "\n")
                        writer.flush()
                        line = reader.readline().rstrip("\n")
                        if not line:
                            raise ConnectionError("server closed mid-request")
                        response = json.loads(line)
                        if response.get("error") == "overloaded":
                            time.sleep(
                                min(response["retry_after_ms"], 50) / 1000.0
                            )
                            continue
                        break
                    if not response.get("ok"):
                        raise AssertionError(f"error response: {line}")
                    lines.append(line)
    except Exception as exc:  # noqa: BLE001 - reported via exit code
        errors.append(f"{tenant}: {type(exc).__name__}: {exc}")


def fetch_stats(address):
    with socket.create_connection(address, timeout=30) as conn:
        conn.sendall(b'{"op": "stats"}\n')
        return conn.makefile("r", encoding="utf-8").readline().rstrip("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="drive concurrent clients against respdi-catalog serve"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=20)
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="times each client replays the request mix",
    )
    parser.add_argument(
        "--request", action="append", default=None, metavar="JSON",
        help="request object to add to the mix (repeatable); "
             "default: a ping plus one keyword query",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the agreed response lines (one per mix slot) here",
    )
    parser.add_argument(
        "--print-stats", action="store_true",
        help="print the server's stats response after the run",
    )
    args = parser.parse_args(argv)

    address = (args.host, args.port)
    requests = (
        [json.loads(raw) for raw in args.request]
        if args.request
        else DEFAULT_REQUESTS
    )

    per_client = [[] for _ in range(args.clients)]
    errors = []
    threads = [
        threading.Thread(
            target=drive_client,
            args=(address, requests, f"client{i}", args.repeat,
                  per_client[i], errors),
        )
        for i in range(args.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    if errors:
        for error in errors:
            print(f"client error: {error}", file=sys.stderr)
        return 1

    slots = args.repeat * len(requests)
    disagreements = 0
    agreed = []
    for slot in range(slots):
        distinct = {lines[slot] for lines in per_client}
        if len(distinct) != 1:
            disagreements += 1
            print(
                f"slot {slot}: {len(distinct)} distinct responses",
                file=sys.stderr,
            )
        agreed.append(sorted(distinct)[0])
    total = args.clients * slots
    print(
        f"{args.clients} clients x {slots} requests = {total} responses "
        f"in {elapsed:.2f}s ({total / elapsed:.0f} req/s), "
        f"{disagreements} disagreements"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in agreed))
        print(f"agreed response lines written to {args.out}")
    if args.print_stats:
        print(fetch_stats(address))
    return 1 if disagreements else 0


if __name__ == "__main__":
    sys.exit(main())
