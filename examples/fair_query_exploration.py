"""Fairness-aware query answering (§5).

A data scientist selects applicants with 30 <= score <= 55, not realizing
the two demographic groups have shifted score distributions, so the
output is heavily one-sided.  The example (1) reports the disparity,
(2) finds the most similar *fair* range for a sweep of disparity bounds
(Shetiya et al.), and (3) alternatively relaxes the query until both
groups reach a minimum count (coverage-based rewriting, Accinelli et al.).

Run:  python examples/fair_query_exploration.py
"""

import numpy as np

from respdi.fairqueries import coverage_rewrite, fair_range_refinement, range_disparity
from respdi.table import Schema, Table


def applicants(seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema([("group", "categorical"), ("score", "numeric")])
    scores = np.concatenate(
        [rng.normal(42, 8, 700), rng.normal(58, 8, 300)]
    )
    groups = ["blue"] * 700 + ["green"] * 300
    return Table(schema, {"group": groups, "score": np.round(scores, 1)})


def main() -> None:
    table = applicants()
    lo, hi = 30.0, 55.0
    disparity, counts = range_disparity(table, "score", lo, hi, "group")
    print(f"original query: score in [{lo}, {hi}]")
    print(f"  output counts {counts}  disparity {disparity}\n")

    print("== fair range refinement: similarity vs disparity bound ==")
    print(f"  {'bound':>6} {'range':>18} {'similarity':>11} {'disparity':>10}")
    for bound in (400, 200, 100, 50, 20, 5):
        result = fair_range_refinement(
            table, "score", lo, hi, "group", max_disparity=bound
        )
        range_str = f"[{result.lo:.1f}, {result.hi:.1f}]"
        print(f"  {bound:>6} {range_str:>18} {result.similarity:>11.3f} "
              f"{result.disparity:>10}")

    print("\n== coverage-based rewriting: min 150 rows of each group ==")
    rewrite = coverage_rewrite(table, "score", lo, hi, "group", min_count=150)
    print(f"  relaxed range [{rewrite.lo:.1f}, {rewrite.hi:.1f}] "
          f"added {rewrite.added_rows} rows")
    print(f"  counts before {rewrite.original_counts}  after {rewrite.group_counts}")


if __name__ == "__main__":
    main()
