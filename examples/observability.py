"""Observability: metrics and spans across one integration flow.

Enables :mod:`respdi.obs`, attaches a JSON-lines span exporter, runs a
discovery query plus the responsible integration pipeline, then audits
the integrated table with ``respdi-audit --metrics`` *in the same
process* — so the printed snapshot combines discovery, tailoring,
pipeline, and CLI metrics from one registry.

Run:  python examples/observability.py
"""

import tempfile
from pathlib import Path

from respdi import ResponsibleIntegrationPipeline, obs
from respdi.cli import main as audit_main
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.discovery import DataLakeIndex
from respdi.table import write_csv
from respdi.tailoring import CountSpec


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="respdi-obs-"))

    # 1. Turn instrumentation on (off by default, near-zero cost while off)
    #    and stream finished spans to a JSON-lines file.
    obs.enable()
    exporter = obs.JsonLinesExporter(workdir / "spans.jsonl")
    obs.set_exporter(exporter)

    # 2. A small discovery pass: index the sources, ask for unionable
    #    tables — every index/query call lands in the metrics registry.
    population = default_health_population(minority_fraction=0.15)
    distributions = skewed_group_distributions(
        population.group_distribution(),
        n_sources=3,
        concentration=3.0,
        specialized={0: ("F", "black")},
        rng=1,
    )
    tables = make_source_tables(population, distributions, 2000, rng=2)
    sources = {f"clinic{i}": t for i, t in enumerate(tables)}

    index = DataLakeIndex(rng=3)
    for name, table in sources.items():
        index.register(name, table)
    matches = index.unionable_tables(sources["clinic0"])
    print(f"unionable with clinic0: {[m.table_name for m in matches]}")

    # 3. The integration pipeline: each stage runs under a span, stage
    #    timings land in the provenance.
    spec = CountSpec(("gender", "race"), {g: 60 for g in population.groups})
    pipeline = ResponsibleIntegrationPipeline(
        sensitive_columns=("gender", "race"), target_column="y"
    )
    result = pipeline.run(sources, spec, rng=4)
    print("\n=== provenance (note the stage timings line) ===")
    print(result.render_provenance())

    # 4. Audit the integrated table in-process.  --metrics prints one
    #    combined JSON snapshot of everything recorded above.
    csv_path = workdir / "integrated.csv"
    write_csv(result.table, csv_path)
    audit_main([str(csv_path), "--sensitive", "gender,race", "--metrics"])

    exporter.close()
    n_spans = sum(1 for _ in open(workdir / "spans.jsonl"))
    print(f"\n{n_spans} spans written to {workdir / 'spans.jsonl'}")


if __name__ == "__main__":
    main()
