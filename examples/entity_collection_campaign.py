"""Distribution-aware crowdsourced entity collection (§4.1).

Simulates a POI-collection campaign: workers have hidden, specialized
entity distributions over five districts; the requester wants an even
spread.  Compares adaptive worker selection (Fan et al.) against random
and static selection, printing the KL(target || collected) trajectory.

Run:  python examples/entity_collection_campaign.py
"""

from respdi.entitycollection import (
    AdaptiveSelection,
    EntityCollector,
    RandomSelection,
    StaticSelection,
    make_worker_pool,
)

DISTRICTS = ["north", "south", "east", "west", "center"]


def main() -> None:
    workers = make_worker_pool(DISTRICTS, n_workers=15, concentration=0.3, rng=1)
    target = {district: 0.2 for district in DISTRICTS}
    rounds = 500

    print(f"{len(workers)} workers, target: even POIs over {len(DISTRICTS)} "
          f"districts, {rounds} rounds\n")
    print(f"{'strategy':<10} {'final KL':>9}   collected counts")
    results = {}
    for name, strategy in [
        ("adaptive", AdaptiveSelection()),
        ("static", StaticSelection()),
        ("random", RandomSelection()),
    ]:
        collector = EntityCollector(workers, target, strategy)
        result = collector.run(rounds, rng=2)
        results[name] = result
        print(f"{name:<10} {result.final_kl:>9.4f}   {result.collected}")

    print("\nKL trajectory (every 100 rounds):")
    checkpoints = range(99, rounds, 100)
    header = "rounds    " + "".join(f"{name:>10}" for name in results)
    print(header)
    for checkpoint in checkpoints:
        row = f"{checkpoint + 1:<10}"
        for name, result in results.items():
            row += f"{result.kl_trajectory[checkpoint]:>10.4f}"
        print(row)

    adaptive = results["adaptive"]
    used = sum(1 for count in adaptive.worker_usage if count > 0)
    print(f"\nadaptive strategy used {used}/{len(workers)} workers "
          "(it needs a mix to hit the target)")


if __name__ == "__main__":
    main()
