"""Tutorial Example 1: cost-aware integration of skewed clinic data.

An AI company needs a breast-cancer training set that adequately
represents minority patients.  Its in-house data is skewed by historical
access disparities; a consortium of clinics (each with its own skew and
query cost) can be sampled record-by-record.  This example compares
source-selection policies for both the known- and unknown-distribution
regimes, and shows the §5 extensions (range counts, marginal counts,
overlapping sources).

Run:  python examples/healthcare_tailoring.py
"""

import numpy as np

from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.datagen.sources import overlapping_source_tables
from respdi.tailoring import (
    CountSpec,
    EpsilonGreedyPolicy,
    MarginalCountSpec,
    OverlapAwareRatioCollPolicy,
    RandomPolicy,
    RangeCountSpec,
    RatioCollPolicy,
    RoundRobinPolicy,
    TableSource,
    UCBPolicy,
    tailor,
)


def build_sources(population, publish=True, rng=0):
    distributions = skewed_group_distributions(
        population.group_distribution(),
        n_sources=5,
        concentration=3.0,
        specialized={0: ("F", "black"), 1: ("M", "black")},
        rng=rng,
    )
    tables = make_source_tables(population, distributions, 3000, rng=rng + 1)
    costs = [1.0, 2.0, 1.0, 1.5, 1.0]  # specialized clinics may cost more
    return [
        TableSource(f"clinic{i}", table, cost=costs[i], publish_distribution=publish)
        for i, table in enumerate(tables)
    ]


def mean_cost(sources, spec, policy_factory, seeds=range(5), **kwargs):
    costs = []
    for seed in seeds:
        result = tailor(sources, spec, policy_factory(), rng=seed, **kwargs)
        assert result.satisfied, "budget too small for the spec"
        costs.append(result.total_cost)
    return float(np.mean(costs))


def main() -> None:
    population = default_health_population(minority_fraction=0.08)
    spec = CountSpec(("gender", "race"), {g: 50 for g in population.groups})

    print("== known distributions (clinics publish their group mixes) ==")
    sources = build_sources(population, publish=True)
    for name, factory in [
        ("RatioColl", RatioCollPolicy),
        ("Random", RandomPolicy),
        ("RoundRobin", RoundRobinPolicy),
    ]:
        print(f"  {name:<12} expected cost: {mean_cost(sources, spec, factory):8.1f}")

    print("\n== unknown distributions (mixes must be learned) ==")
    hidden = build_sources(population, publish=False)
    for name, factory in [
        ("UCB", UCBPolicy),
        ("EpsGreedy", lambda: EpsilonGreedyPolicy(0.1)),
        ("Random", RandomPolicy),
    ]:
        print(f"  {name:<12} expected cost: {mean_cost(hidden, spec, factory):8.1f}")

    print("\n== extension: range counts [40, 80] per group ==")
    range_spec = RangeCountSpec(
        ("gender", "race"), {g: (40, 80) for g in population.groups}
    )
    result = tailor(sources, range_spec, RatioCollPolicy(), rng=9)
    table = result.collected_table(population.schema())
    print(f"  cost {result.total_cost:.1f}, group counts "
          f"{table.group_counts(['gender', 'race'])}")

    print("\n== extension: marginal (non-intersectional) counts ==")
    marginal_spec = MarginalCountSpec(
        ("gender", "race"),
        {"gender": {"F": 100, "M": 100}, "race": {"white": 100, "black": 100}},
    )
    result = tailor(sources, marginal_spec, RatioCollPolicy(), rng=10)
    table = result.collected_table(population.schema())
    print(f"  cost {result.total_cost:.1f}, gender {table.value_counts('gender')}, "
          f"race {table.value_counts('race')}")

    print("\n== extension: overlapping sources (dedup by record id) ==")
    distributions = skewed_group_distributions(
        population.group_distribution(), 4, concentration=4.0, rng=20
    )
    overlap_tables, _ = overlapping_source_tables(
        population, distributions, 1200, overlap=0.5, rng=21
    )
    overlap_sources = [
        TableSource(f"s{i}", t) for i, t in enumerate(overlap_tables)
    ]
    small_spec = CountSpec(("gender", "race"), {g: 25 for g in population.groups})
    for name, factory in [
        ("RatioColl", RatioCollPolicy),
        ("OverlapAware", OverlapAwareRatioCollPolicy),
    ]:
        result = tailor(
            overlap_sources, small_spec, factory(), rng=22,
            dedupe_column="_id", max_steps=100_000,
        )
        print(f"  {name:<12} cost {result.total_cost:8.1f} "
              f"duplicates {sum(result.duplicates):5d}")


if __name__ == "__main__":
    main()
