"""Online aggregation over joins: ripple join vs wander join (§3.4).

Builds two Zipf-skewed tables, then estimates COUNT/SUM/AVG of their join
with both online estimators, printing the error trajectory against the
exact answer.  Also contrasts the exact and upper-bound regimes of the
generic chain-join sampler (acceptance-rate trade-off).

Run:  python examples/online_aggregation.py
"""

import numpy as np

from respdi.sampling import (
    AcceptRejectJoinSampler,
    ChainJoinSampler,
    ChainJoinSpec,
    RippleJoin,
    WanderJoin,
    full_join,
)
from respdi.table import Schema, Table


def zipf_table(prefix, n, seed):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(25)]
    schema = Schema([("k", "categorical"), (prefix, "numeric")])
    rows = [
        (keys[min(int(rng.zipf(1.5)) - 1, 24)], float(rng.normal(10, 3)))
        for _ in range(n)
    ]
    return Table.from_rows(schema, rows)


def main() -> None:
    left = zipf_table("a", 800, seed=1)
    right = zipf_table("b", 800, seed=2)
    joined = full_join(left, right, ["k"])
    true_count = len(joined)
    true_sum = joined.aggregate("b", "sum")
    print(f"exact join: COUNT={true_count}  SUM(b)={true_sum:.1f}  "
          f"AVG(b)={true_sum / true_count:.3f}")

    print("\n== ripple join trajectory (relative COUNT error) ==")
    ripple = RippleJoin(left, right, "k", expression=lambda a, b: b["b"], rng=3)
    for estimate in ripple.run(record_every=200):
        error = abs(estimate.count_estimate - true_count) / true_count
        print(f"  tuples {estimate.tuples_consumed:>5}: "
              f"count≈{estimate.count_estimate:>10.0f}  rel.err {error:.3f}")

    print("\n== wander join trajectory (relative COUNT error) ==")
    spec = ChainJoinSpec([left, right], [("k", "k")])
    wander = WanderJoin(spec, expression=lambda rows: rows[1]["b"], rng=4)
    for estimate in wander.run(4000, record_every=800):
        error = abs(estimate.count_estimate - true_count) / true_count
        print(f"  walks {estimate.walks:>5}: "
              f"count≈{estimate.count_estimate:>10.0f}  rel.err {error:.3f}  "
              f"success rate {estimate.success_rate:.2f}")

    print("\n== uniform join sampling: exact vs upper-bound statistics ==")
    exact = AcceptRejectJoinSampler(left, right, "k", rng=5)
    exact.sample(1000)
    loose = AcceptRejectJoinSampler(
        left, right, "k", statistics="upper_bound",
        frequency_upper_bound=3 * len(right), rng=6,
    )
    loose.sample(1000)
    print(f"  exact frequencies : acceptance {exact.stats.acceptance_rate:.3f}")
    print(f"  loose upper bound : acceptance {loose.stats.acceptance_rate:.3f}")

    print("\n== three-way chain join (generic framework) ==")
    third = zipf_table("c", 800, seed=7)
    chain = ChainJoinSpec([left, right, third], [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(chain, rng=8)
    sample = sampler.materialize(sampler.sample(500))
    print(f"  exact 3-way join size: {sampler.join_size:.0f}")
    print(f"  sampled {len(sample)} tuples with zero rejections "
          f"(acceptance {sampler.stats.acceptance_rate:.2f})")


if __name__ == "__main__":
    main()
