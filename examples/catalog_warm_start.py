"""Catalog warm starts: sketch a lake once, discover from disk forever.

Builds a small synthetic data lake, persists it into a
:class:`respdi.catalog.CatalogStore`, then shows the three things the
catalog buys you:

1. **Warm-start discovery** — re-opening the catalog rehydrates a full
   :class:`~respdi.discovery.DataLakeIndex` from sketches alone (no raw
   data read) with byte-identical query results, several times faster
   than re-sketching.
2. **Incremental refresh** — unchanged tables are fingerprint hits;
   only changed tables pay a re-sketch.
3. **Integrity** — every file is checksummed into the manifest, so
   corruption is detected at verify/load time instead of silently
   skewing discovery results.

Run:  python examples/catalog_warm_start.py
"""

import tempfile
import time
from pathlib import Path

from respdi.catalog import CatalogStore, load_catalog_index
from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import DataLakeIndex

SEED = 7


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="respdi-catalog-"))
    lake = generate_lake(LakeSpec(n_distractors=20), rng=13)
    query = lake.tables["query"]

    # 1. One-time cold build: sketch every table and persist everything.
    start = time.perf_counter()
    store = CatalogStore.build(workdir / "lake.catalog", dict(lake.tables), rng=SEED)
    build_s = time.perf_counter() - start
    print(f"built catalog: {len(store.names)} tables in {build_s:.3f}s")
    print(f"on disk at {store.directory}")

    # 2. Cold baseline vs. warm open.  The warm path never touches the
    #    raw tables — it loads signatures, sketches, and index state.
    start = time.perf_counter()
    cold = DataLakeIndex(rng=SEED)
    for name, table in lake.tables.items():
        cold.register(name, table)
    cold_matches = cold.unionable_tables(query, k=5)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = load_catalog_index(workdir / "lake.catalog")
    warm_matches = warm.unionable_tables(query, k=5)
    warm_s = time.perf_counter() - start

    print(f"\ncold build+query {cold_s:.3f}s  warm open+query {warm_s:.3f}s "
          f"({cold_s / warm_s:.1f}x)")
    print(f"identical results: {warm_matches == cold_matches}")
    print("top unionable:", [m.table_name for m in warm_matches])

    # 3. Incremental refresh: the unchanged table is a fingerprint hit,
    #    the truncated one is re-sketched.
    reopened = CatalogStore.open(workdir / "lake.catalog")
    unchanged = reopened.refresh("union_0", lake.tables["union_0"])
    changed = reopened.refresh("union_0", lake.tables["union_0"].head(10))
    print(f"\nrefresh unchanged -> rebuilt={unchanged}, "
          f"truncated -> rebuilt={changed}")
    reopened.refresh("union_0", lake.tables["union_0"])  # restore

    # 4. Integrity: flip a byte in one entry and verify catches it.
    victim = next((workdir / "lake.catalog" / "entries").iterdir())
    sketch_file = victim / "sketches.npz"
    blob = bytearray(sketch_file.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    sketch_file.write_bytes(bytes(blob))
    problems = CatalogStore.open(workdir / "lake.catalog").verify()
    print(f"\nafter corrupting {sketch_file.name}: "
          f"verify() reports {len(problems)} problem(s)")
    print(" ", problems[0])


if __name__ == "__main__":
    main()
