"""Quickstart: responsible data integration in ~60 lines.

Builds three skewed synthetic clinics, tailors a group-balanced data set
from them at minimum cost, audits it against the tutorial's requirements,
and prints the nutritional label and datasheet the pipeline produces.

Run:  python examples/quickstart.py
"""

from respdi import ResponsibleIntegrationPipeline
from respdi.cleaning import MeanImputer
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.requirements import (
    CompletenessCorrectnessRequirement,
    DistributionRepresentationRequirement,
    GroupRepresentationRequirement,
)
from respdi.tailoring import CountSpec


def main() -> None:
    # Ground truth: a population where black patients are 15% and the
    # label process is historically biased against them (tutorial Ex. 1).
    population = default_health_population(minority_fraction=0.15)

    # Three clinics, each with its own skew; clinic0 predominantly serves
    # the minority community.
    distributions = skewed_group_distributions(
        population.group_distribution(),
        n_sources=3,
        concentration=3.0,
        specialized={0: ("F", "black")},
        rng=1,
    )
    tables = make_source_tables(population, distributions, 2000, rng=2)
    sources = {f"clinic{i}": t for i, t in enumerate(tables)}

    # What we want: 60 records of every intersectional group.
    spec = CountSpec(("gender", "race"), {g: 60 for g in population.groups})

    # What "responsible" means, machine-checkable (§2 of the tutorial).
    requirements = [
        GroupRepresentationRequirement(("gender", "race"), threshold=50),
        DistributionRepresentationRequirement(
            ("gender", "race"),
            {g: 0.25 for g in population.groups},
            max_divergence=0.1,
        ),
        CompletenessCorrectnessRequirement(
            ["x0", "x1", "x2", "x3"], ("gender", "race")
        ),
    ]

    pipeline = ResponsibleIntegrationPipeline(
        sensitive_columns=("gender", "race"),
        target_column="y",
        imputers=[MeanImputer("x0")],
        coverage_threshold=50,
    )
    result = pipeline.run(sources, spec, requirements=requirements, rng=3)

    print("=== provenance ===")
    print(result.render_provenance())
    print("\n=== audit ===")
    print(result.audit.render())
    print("\n=== nutritional label ===")
    print(result.label.render())
    print("\n=== datasheet ===")
    print(result.datasheet.render())
    print(f"fit for use: {result.fit_for_use}")


if __name__ == "__main__":
    main()
