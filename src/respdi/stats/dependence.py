"""Dependence and association measures between attributes.

These back the tutorial's Unbiased & Informative Features requirement
(§2.3): a feature is *informative* when it has high association with the
target attribute and *unbiased* when it has low association with the
sensitive attribute.  Both continuous (Pearson/Spearman) and categorical
(mutual information, Cramér's V) measures are provided.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError


def _check_paired(x: Sequence, y: Sequence) -> None:
    if len(x) != len(y):
        raise SpecificationError(
            f"paired sequences must have equal length: {len(x)} vs {len(y)}"
        )
    if len(x) == 0:
        raise EmptyInputError("dependence measures require at least one pair")


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson linear correlation coefficient in [-1, 1].

    Returns 0.0 when either variable is constant (no linear association is
    measurable), rather than propagating a NaN into downstream scores.
    """
    _check_paired(x, y)
    xv = np.asarray(x, dtype=float)
    yv = np.asarray(y, dtype=float)
    xs = xv - xv.mean()
    ys = yv - yv.mean()
    # Prescale each centered vector by its max magnitude: correlation is
    # scale-invariant, and without this, squaring tiny deviations (think
    # 1e-161) lands in subnormal territory where the lost precision can
    # push the ratio visibly outside [-1, 1].
    x_scale = float(np.max(np.abs(xs))) if len(xs) else 0.0
    y_scale = float(np.max(np.abs(ys))) if len(ys) else 0.0
    if x_scale == 0.0 or y_scale == 0.0:
        return 0.0
    xs /= x_scale
    ys /= y_scale
    denom = math.sqrt(float((xs**2).sum()) * float((ys**2).sum()))
    if denom == 0.0:
        return 0.0
    return max(-1.0, min(1.0, float((xs * ys).sum() / denom)))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties get the mean of their rank range)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        mean_rank = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson correlation of average ranks)."""
    _check_paired(x, y)
    xv = np.asarray(x, dtype=float)
    yv = np.asarray(y, dtype=float)
    return pearson_correlation(_ranks(xv), _ranks(yv))


def entropy(values: Sequence[Hashable]) -> float:
    """Shannon entropy (nats) of the empirical distribution of *values*."""
    if len(values) == 0:
        raise EmptyInputError("entropy requires at least one value")
    counts = Counter(values)
    n = len(values)
    return -sum((c / n) * math.log(c / n) for c in counts.values())


def _joint_counts(x: Sequence[Hashable], y: Sequence[Hashable]) -> Counter:
    return Counter(zip(x, y))


def mutual_information(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Mutual information (nats) between two categorical sequences."""
    _check_paired(x, y)
    n = len(x)
    joint = _joint_counts(x, y)
    px = Counter(x)
    py = Counter(y)
    mi = 0.0
    for (xv, yv), cxy in joint.items():
        pxy = cxy / n
        mi += pxy * math.log(pxy / ((px[xv] / n) * (py[yv] / n)))
    return max(mi, 0.0)


def normalized_mutual_information(
    x: Sequence[Hashable], y: Sequence[Hashable]
) -> float:
    """Mutual information normalized by ``sqrt(H(x) * H(y))``, in [0, 1].

    Returns 0.0 when either variable is constant (it carries no
    information to share).
    """
    _check_paired(x, y)
    hx = entropy(x)
    hy = entropy(y)
    if hx == 0.0 or hy == 0.0:
        return 0.0
    return min(mutual_information(x, y) / math.sqrt(hx * hy), 1.0)


def conditional_entropy(x: Sequence[Hashable], given: Sequence[Hashable]) -> float:
    """Conditional entropy ``H(x | given)`` in nats.

    ``H(x | given) == 0`` certifies the functional dependency
    ``given -> x``, which the profiling module uses to flag sensitive
    attributes that fully determine a target (§3.2).
    """
    _check_paired(x, given)
    return max(entropy(list(zip(given, x))) - entropy(given), 0.0)


def cramers_v(x: Sequence[Hashable], y: Sequence[Hashable]) -> float:
    """Cramér's V association between two categorical sequences, in [0, 1].

    Returns 0.0 when either variable is constant.
    """
    _check_paired(x, y)
    xs = sorted(set(x), key=repr)
    ys = sorted(set(y), key=repr)
    if len(xs) < 2 or len(ys) < 2:
        return 0.0
    x_index = {v: i for i, v in enumerate(xs)}
    y_index = {v: i for i, v in enumerate(ys)}
    table = np.zeros((len(xs), len(ys)), dtype=float)
    for xv, yv in zip(x, y):
        table[x_index[xv], y_index[yv]] += 1
    n = table.sum()
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        contrib = np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
    chi2 = float(contrib.sum())
    phi2 = chi2 / n
    k = min(len(xs) - 1, len(ys) - 1)
    if k == 0:
        return 0.0
    return float(math.sqrt(phi2 / k))


def correlation_ratio(categories: Sequence[Hashable], values: Sequence[float]) -> float:
    """Correlation ratio (eta) between a categorical and a numeric variable.

    ``eta^2`` is the fraction of the numeric variance explained by the
    category means; eta lies in [0, 1] and is the natural
    numeric-vs-categorical analogue of Pearson correlation.  Returns 0.0
    when the numeric variable is constant.
    """
    _check_paired(categories, values)
    numeric = np.asarray(values, dtype=float)
    overall_mean = numeric.mean()
    total = float(((numeric - overall_mean) ** 2).sum())
    if total == 0.0:
        return 0.0
    groups: dict = {}
    for category, value in zip(categories, numeric):
        groups.setdefault(category, []).append(value)
    between = 0.0
    for members in groups.values():
        members = np.asarray(members)
        between += len(members) * float((members.mean() - overall_mean) ** 2)
    return float(math.sqrt(min(between / total, 1.0)))


def feature_bias_score(
    feature: Sequence[Hashable], sensitive: Sequence[Hashable]
) -> float:
    """Association between a feature and a sensitive attribute, in [0, 1].

    Thin naming wrapper over :func:`cramers_v` so that requirement-audit
    code reads in the tutorial's vocabulary.
    """
    return cramers_v(feature, sensitive)


def feature_informativeness_score(
    feature: Sequence[Hashable], target: Sequence[Hashable]
) -> float:
    """Association between a feature and the target attribute, in [0, 1]."""
    return normalized_mutual_information(feature, target)
