"""Statistical primitives used throughout respdi.

Divergence measures back the Underlying Distribution Representation
requirement (tutorial §2.1) and distribution tailoring (§4.2); dependence
measures back the Unbiased & Informative Features requirement (§2.3) and
join-correlation discovery (§3.1); uniformity tests back the join-sampling
audits (§3.4).
"""

from respdi.stats.dependence import (
    conditional_entropy,
    correlation_ratio,
    cramers_v,
    entropy,
    feature_bias_score,
    feature_informativeness_score,
    mutual_information,
    normalized_mutual_information,
    pearson_correlation,
    spearman_correlation,
)
from respdi.stats.divergence import (
    chi_square_goodness_of_fit,
    chi_square_uniformity,
    empirical_distribution,
    hellinger,
    js_divergence,
    kl_divergence,
    normalize_distribution,
    total_variation,
)

__all__ = [
    "kl_divergence",
    "js_divergence",
    "total_variation",
    "hellinger",
    "chi_square_uniformity",
    "chi_square_goodness_of_fit",
    "empirical_distribution",
    "normalize_distribution",
    "pearson_correlation",
    "spearman_correlation",
    "mutual_information",
    "normalized_mutual_information",
    "cramers_v",
    "conditional_entropy",
    "entropy",
    "correlation_ratio",
    "feature_bias_score",
    "feature_informativeness_score",
]
