"""Divergence measures and distribution tests over discrete distributions.

Distributions are represented as mappings ``{value: probability}`` or as
aligned probability vectors.  Helpers are provided to build empirical
distributions from raw samples so that the rest of the library can compare
"the data we collected" against "the distribution we wanted" (tutorial
§2.1, §4.1, §4.2).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from respdi.errors import EmptyInputError, SpecificationError

Distribution = Mapping[Hashable, float]


def normalize_distribution(weights: Mapping[Hashable, float]) -> Dict[Hashable, float]:
    """Return *weights* rescaled to sum to one.

    Raises :class:`SpecificationError` if any weight is negative or all
    weights are zero.
    """
    if not weights:
        raise EmptyInputError("cannot normalize an empty distribution")
    total = 0.0
    for key, value in weights.items():
        if value < 0:
            raise SpecificationError(f"negative weight {value!r} for key {key!r}")
        total += value
    if total <= 0:
        raise SpecificationError("all weights are zero; distribution undefined")
    return {key: value / total for key, value in weights.items()}


def empirical_distribution(samples: Iterable[Hashable]) -> Dict[Hashable, float]:
    """Return the empirical distribution of *samples* as ``{value: freq}``."""
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        raise EmptyInputError("cannot build an empirical distribution from no samples")
    return {value: count / total for value, count in counts.items()}


def _aligned(p: Distribution, q: Distribution) -> Tuple[np.ndarray, np.ndarray]:
    """Align two distributions on the union of their supports."""
    support = sorted(set(p) | set(q), key=repr)
    pv = np.array([p.get(key, 0.0) for key in support], dtype=float)
    qv = np.array([q.get(key, 0.0) for key in support], dtype=float)
    return pv, qv


def kl_divergence(p: Distribution, q: Distribution, smoothing: float = 0.0) -> float:
    """Kullback-Leibler divergence ``KL(p || q)`` in nats.

    ``smoothing`` (additive, applied to both distributions and then
    renormalized) avoids infinities when *q* has zero mass where *p* does
    not — the situation that arises constantly when comparing a partially
    collected data set against a target distribution.  With
    ``smoothing=0`` the divergence is ``inf`` in that case, matching the
    mathematical definition.
    """
    pv, qv = _aligned(p, q)
    if smoothing < 0:
        raise SpecificationError("smoothing must be non-negative")
    if smoothing > 0:
        pv = (pv + smoothing) / (pv.sum() + smoothing * len(pv))
        qv = (qv + smoothing) / (qv.sum() + smoothing * len(qv))
    total = 0.0
    for pi, qi in zip(pv, qv):
        if pi == 0.0:
            continue
        if qi == 0.0:
            return math.inf
        total += pi * math.log(pi / qi)
    # Clamp tiny negative values caused by floating-point noise.
    return max(total, 0.0)


def js_divergence(p: Distribution, q: Distribution) -> float:
    """Jensen-Shannon divergence (symmetric, finite, in nats, <= ln 2)."""
    pv, qv = _aligned(p, q)
    support = range(len(pv))
    mv = 0.5 * (pv + qv)
    m = {i: mv[i] for i in support}
    pd = {i: pv[i] for i in support}
    qd = {i: qv[i] for i in support}
    return 0.5 * kl_divergence(pd, m) + 0.5 * kl_divergence(qd, m)


def total_variation(p: Distribution, q: Distribution) -> float:
    """Total variation distance ``0.5 * sum |p - q|`` (in [0, 1])."""
    pv, qv = _aligned(p, q)
    return min(0.5 * float(np.abs(pv - qv).sum()), 1.0)


def hellinger(p: Distribution, q: Distribution) -> float:
    """Hellinger distance (in [0, 1])."""
    pv, qv = _aligned(p, q)
    return min(float(np.sqrt(0.5 * ((np.sqrt(pv) - np.sqrt(qv)) ** 2).sum())), 1.0)


def chi_square_goodness_of_fit(
    observed_counts: Sequence[float], expected_probs: Sequence[float]
) -> Tuple[float, float]:
    """Chi-square goodness-of-fit test.

    Returns ``(statistic, p_value)`` for the null hypothesis that
    *observed_counts* were drawn from the categorical distribution
    *expected_probs*.  Used to audit join-sampling uniformity (§3.4).
    """
    observed = np.asarray(observed_counts, dtype=float)
    expected_probs = np.asarray(expected_probs, dtype=float)
    if observed.shape != expected_probs.shape:
        raise SpecificationError(
            f"shape mismatch: {observed.shape} counts vs {expected_probs.shape} probs"
        )
    if observed.size == 0:
        raise EmptyInputError("chi-square test requires at least one category")
    total = observed.sum()
    if total <= 0:
        raise EmptyInputError("chi-square test requires at least one observation")
    if not math.isclose(expected_probs.sum(), 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise SpecificationError("expected_probs must sum to 1")
    expected = expected_probs * total
    if (expected <= 0).any():
        raise SpecificationError("every category must have positive expected count")
    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = observed.size - 1
    p_value = float(_scipy_stats.chi2.sf(statistic, dof)) if dof > 0 else 1.0
    return statistic, p_value


def chi_square_uniformity(observed_counts: Sequence[float]) -> Tuple[float, float]:
    """Chi-square test against the uniform distribution over the categories."""
    observed = np.asarray(observed_counts, dtype=float)
    if observed.size == 0:
        raise EmptyInputError("uniformity test requires at least one category")
    uniform = np.full(observed.size, 1.0 / observed.size)
    return chi_square_goodness_of_fit(observed, uniform)
