"""Source-selection policies for distribution tailoring.

A policy chooses which source to query next given the engine's running
:class:`PolicyContext`.  Policies mirror the regimes in Nargesian et al.
(VLDB 2021):

* :class:`RatioCollPolicy` — known distributions: query the source
  minimizing ``cost / P(useful draw)``, the myopic expected
  cost-per-useful-sample optimum;
* :class:`UCBPolicy` — unknown distributions: UCB1 over per-source
  empirical usefulness rates divided by cost (exploration-exploitation);
* :class:`EpsilonGreedyPolicy`, :class:`ExploitPolicy` — ablation
  variants of the unknown regime;
* :class:`RandomPolicy`, :class:`RoundRobinPolicy` — the baselines every
  DT experiment compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from respdi.errors import SpecificationError
from respdi.tailoring.sources import DataSource
from respdi.tailoring.specs import TailoringSpec


@dataclass
class PolicyContext:
    """Everything a policy may look at when choosing a source."""

    sources: Sequence[DataSource]
    spec: TailoringSpec
    state: Dict
    pulls: List[int]
    useful: List[int]
    duplicates: List[int]
    step: int


class Policy:
    """Base class: implement :meth:`select`."""

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any internal state before a fresh run."""


class RatioCollPolicy(Policy):
    """Known-distribution greedy: argmin over sources of
    ``cost_i / P_i(useful)``.

    Requires every source to publish its group distribution.  Sources
    whose useful-probability is zero are never selected (unless all are,
    in which case the engine will stop by budget).
    """

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        best_index = None
        best_score = math.inf
        for i, source in enumerate(context.sources):
            distribution = source.group_distribution(context.spec.attributes)
            if distribution is None:
                raise SpecificationError(
                    f"source {source.name!r} does not publish its distribution; "
                    "RatioColl requires the known-distributions regime"
                )
            p_useful = context.spec.useful_probability(distribution, context.state)
            if p_useful <= 0:
                continue
            score = source.cost / p_useful
            if score < best_score:
                best_score = score
                best_index = i
        if best_index is None:
            # No source can produce a useful row; fall back to cheapest
            # (the engine's budget guard will stop a hopeless run).
            best_index = min(
                range(len(context.sources)), key=lambda i: context.sources[i].cost
            )
        return best_index


class OverlapAwareRatioCollPolicy(RatioCollPolicy):
    """RatioColl discounted by each source's observed duplicate rate.

    In the §5 overlap-aware setting, a draw that repeats an already
    collected record is useless no matter its group.  The empirical
    duplicate rate of each source (Laplace-smoothed) multiplies into the
    usefulness probability, steering collection away from sources whose
    remaining novelty is exhausted.
    """

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        best_index = None
        best_score = math.inf
        for i, source in enumerate(context.sources):
            distribution = source.group_distribution(context.spec.attributes)
            if distribution is None:
                raise SpecificationError(
                    f"source {source.name!r} does not publish its distribution"
                )
            p_useful = context.spec.useful_probability(distribution, context.state)
            novelty = 1.0 - (context.duplicates[i] + 1.0) / (context.pulls[i] + 2.0)
            effective = p_useful * novelty
            if effective <= 0:
                continue
            score = source.cost / effective
            if score < best_score:
                best_score = score
                best_index = i
        if best_index is None:
            best_index = min(
                range(len(context.sources)), key=lambda i: context.sources[i].cost
            )
        return best_index


class UCBPolicy(Policy):
    """UCB1 over usefulness-per-cost for the unknown-distribution regime.

    Each source's reward per pull is 1 when the draw was useful, else 0.
    The policy selects ``argmax (mean_i + c * sqrt(2 ln t / n_i)) / cost_i``
    after pulling every source once.
    """

    def __init__(self, exploration: float = 1.0) -> None:
        if exploration < 0:
            raise SpecificationError("exploration must be non-negative")
        self.exploration = exploration

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        for i, pulls in enumerate(context.pulls):
            if pulls == 0:
                return i
        total = sum(context.pulls)
        best_index = 0
        best_score = -math.inf
        for i, source in enumerate(context.sources):
            mean = context.useful[i] / context.pulls[i]
            bonus = self.exploration * math.sqrt(
                2.0 * math.log(max(total, 2)) / context.pulls[i]
            )
            score = (mean + bonus) / source.cost
            if score > best_score:
                best_score = score
                best_index = i
        return best_index


class EpsilonGreedyPolicy(Policy):
    """Explore uniformly with probability epsilon, else exploit the best
    empirical usefulness-per-cost."""

    def __init__(self, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise SpecificationError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        for i, pulls in enumerate(context.pulls):
            if pulls == 0:
                return i
        if rng.random() < self.epsilon:
            return int(rng.integers(len(context.sources)))
        return max(
            range(len(context.sources)),
            key=lambda i: (context.useful[i] / context.pulls[i])
            / context.sources[i].cost,
        )


class ExploitPolicy(EpsilonGreedyPolicy):
    """Pure exploitation (epsilon = 0) — the ablation's degenerate case."""

    def __init__(self) -> None:
        super().__init__(epsilon=0.0)


class RandomPolicy(Policy):
    """Uniformly random source each step (RandomColl baseline)."""

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        return int(rng.integers(len(context.sources)))


class RoundRobinPolicy(Policy):
    """Cycle through sources in order."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select(self, context: PolicyContext, rng: np.random.Generator) -> int:
        index = self._next % len(context.sources)
        self._next += 1
        return index
