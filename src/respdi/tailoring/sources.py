"""Costed data sources for tailoring.

The DT model (tutorial §4.2): each source is queried sequentially; every
query returns one random record from that source's population and incurs
that source's cost (monetary, computational, or network).  Sources may
publish their group distribution ("known distributions" regime) or keep
it hidden ("unknown distributions" regime — the policy must learn it).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table

Group = Tuple[Hashable, ...]


class DataSource:
    """Interface: one random record per query, at a fixed cost."""

    name: str
    cost: float

    def draw(self, rng: np.random.Generator) -> Dict[str, Hashable]:
        """One random record, as a dict."""
        raise NotImplementedError

    def group_distribution(
        self, attributes: Sequence[str]
    ) -> Optional[Mapping[Group, float]]:
        """The source's group distribution over *attributes*, or ``None``
        when the source does not publish it."""
        raise NotImplementedError


class TableSource(DataSource):
    """A source backed by a table; queries sample rows with replacement.

    With-replacement sampling matches the DT model of querying a large
    underlying population through a limited interface: the table is the
    (empirical) population, not a finite stock.

    Parameters
    ----------
    name, table, cost:
        Identification, backing data, and per-query cost.
    publish_distribution:
        When True, :meth:`group_distribution` exposes the empirical group
        distribution (the "known distributions" regime); when False it
        returns ``None`` and policies must learn by sampling.
    """

    def __init__(
        self,
        name: str,
        table: Table,
        cost: float = 1.0,
        publish_distribution: bool = True,
    ) -> None:
        if cost <= 0:
            raise SpecificationError("source cost must be positive")
        if len(table) == 0:
            raise EmptyInputError(f"source {name!r} is empty")
        self.name = name
        self.table = table
        self.cost = float(cost)
        self.publish_distribution = publish_distribution
        self._rows = table.to_dicts()
        # Policies query the distribution every step; memoize per
        # attribute tuple (the table is immutable by convention).
        self._distribution_cache: Dict[Tuple[str, ...], Mapping[Group, float]] = {}

    def draw(self, rng: np.random.Generator) -> Dict[str, Hashable]:
        return dict(self._rows[int(rng.integers(len(self._rows)))])

    def group_distribution(
        self, attributes: Sequence[str]
    ) -> Optional[Mapping[Group, float]]:
        if not self.publish_distribution:
            return None
        key = tuple(attributes)
        if key not in self._distribution_cache:
            counts = self.table.group_counts(list(key))
            total = sum(counts.values())
            self._distribution_cache[key] = {
                group: count / total for group, count in counts.items()
            }
        return self._distribution_cache[key]

    def __repr__(self) -> str:
        return f"TableSource({self.name!r}, rows={len(self.table)}, cost={self.cost})"
