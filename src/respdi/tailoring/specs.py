"""Requirement languages for distribution tailoring.

A spec defines (a) which rows are *useful* given what has already been
collected, (b) when collection is *complete*, and (c) — for policies
with distribution knowledge — the probability that a draw from a source
with a given group distribution is useful.

Three spec families, per the tutorial:

* :class:`CountSpec` — the original DT problem: a minimum count for each
  intersectional group (§4.2);
* :class:`RangeCountSpec` — §5 extension: per-group ``[lo, hi]`` ranges;
  a group stops accepting new samples once it reaches ``hi``;
* :class:`MarginalCountSpec` — §5 extension: counts on individual
  attribute values (e.g. 100 of gender=F *and* 100 of race=NW) rather
  than on their intersections.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from respdi.errors import SpecificationError

Group = Tuple[Hashable, ...]


class TailoringSpec:
    """Base class for tailoring requirement specs."""

    #: sensitive attribute names, ordered; groups are value tuples over these.
    attributes: Tuple[str, ...]

    def group_of(self, row: Mapping[str, Hashable]) -> Group:
        """The group of a row (tuple of its sensitive attribute values)."""
        try:
            return tuple(row[name] for name in self.attributes)
        except KeyError as exc:
            raise SpecificationError(
                f"row is missing sensitive attribute {exc.args[0]!r}"
            ) from None

    # -- state protocol ---------------------------------------------------

    def new_state(self) -> Dict:
        """Fresh mutable collection state."""
        raise NotImplementedError

    def is_satisfied(self, state: Dict) -> bool:
        raise NotImplementedError

    def process(self, group: Group, state: Dict) -> bool:
        """Account for a drawn row of *group*.

        Returns True when the row is useful (kept), False when it is
        discarded; mutates *state* accordingly.
        """
        raise NotImplementedError

    def useful_probability(
        self, group_distribution: Mapping[Group, float], state: Dict
    ) -> float:
        """Probability that one draw from a source with the given group
        distribution is useful in the current state."""
        raise NotImplementedError

    def deficits(self, state: Dict) -> Dict:
        """Human-inspectable remaining needs."""
        raise NotImplementedError


class CountSpec(TailoringSpec):
    """Minimum counts per intersectional group.

    ``CountSpec(("gender", "race"), {("F", "black"): 100, ...})``

    Groups not mentioned have requirement 0 (their rows are discarded).
    """

    def __init__(
        self, attributes: Sequence[str], counts: Mapping[Group, int]
    ) -> None:
        if not attributes:
            raise SpecificationError("spec needs at least one attribute")
        if not counts:
            raise SpecificationError("spec needs at least one group count")
        self.attributes = tuple(attributes)
        for group, count in counts.items():
            if len(group) != len(self.attributes):
                raise SpecificationError(
                    f"group {group!r} has {len(group)} values; "
                    f"expected {len(self.attributes)}"
                )
            if count < 0:
                raise SpecificationError(f"negative count for group {group!r}")
        self.counts: Dict[Group, int] = dict(counts)

    def new_state(self) -> Dict:
        return {"remaining": {g: c for g, c in self.counts.items() if c > 0}}

    def is_satisfied(self, state: Dict) -> bool:
        return not state["remaining"]

    def process(self, group: Group, state: Dict) -> bool:
        remaining = state["remaining"]
        if group not in remaining:
            return False
        remaining[group] -= 1
        if remaining[group] == 0:
            del remaining[group]
        return True

    def useful_probability(
        self, group_distribution: Mapping[Group, float], state: Dict
    ) -> float:
        remaining = state["remaining"]
        return sum(group_distribution.get(g, 0.0) for g in remaining)

    def deficits(self, state: Dict) -> Dict:
        return dict(state["remaining"])


class RangeCountSpec(TailoringSpec):
    """Per-group count ranges ``[lo, hi]``.

    A group is *required* until it reaches ``lo`` and *accepting* until it
    reaches ``hi`` (rows beyond ``hi`` are discarded).  Collection is
    complete when every group has reached its ``lo``.  Accepting rows
    between ``lo`` and ``hi`` is free representation: they cost nothing
    extra (the row was already drawn) and enlarge the output.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        ranges: Mapping[Group, Tuple[int, int]],
    ) -> None:
        if not attributes:
            raise SpecificationError("spec needs at least one attribute")
        if not ranges:
            raise SpecificationError("spec needs at least one group range")
        self.attributes = tuple(attributes)
        for group, (lo, hi) in ranges.items():
            if len(group) != len(self.attributes):
                raise SpecificationError(f"group {group!r} has wrong width")
            if lo < 0 or hi < lo:
                raise SpecificationError(
                    f"invalid range [{lo}, {hi}] for group {group!r}"
                )
        self.ranges: Dict[Group, Tuple[int, int]] = {
            g: (int(lo), int(hi)) for g, (lo, hi) in ranges.items()
        }

    def new_state(self) -> Dict:
        return {"collected": {g: 0 for g in self.ranges}}

    def is_satisfied(self, state: Dict) -> bool:
        collected = state["collected"]
        return all(collected[g] >= lo for g, (lo, _) in self.ranges.items())

    def process(self, group: Group, state: Dict) -> bool:
        if group not in self.ranges:
            return False
        collected = state["collected"]
        _, hi = self.ranges[group]
        if collected[group] >= hi:
            return False
        collected[group] += 1
        return True

    def useful_probability(
        self, group_distribution: Mapping[Group, float], state: Dict
    ) -> float:
        # Only groups still below their *lo* constitute progress toward
        # completion; groups between lo and hi accept rows but do not
        # bring the end closer, so a cost-minimizing policy targets the
        # deficient ones.
        collected = state["collected"]
        return sum(
            group_distribution.get(g, 0.0)
            for g, (lo, _) in self.ranges.items()
            if collected[g] < lo
        )

    def deficits(self, state: Dict) -> Dict:
        collected = state["collected"]
        return {
            g: lo - collected[g]
            for g, (lo, _) in self.ranges.items()
            if collected[g] < lo
        }


class MarginalCountSpec(TailoringSpec):
    """Counts on individual attribute values, not intersections.

    ``MarginalCountSpec(("gender", "race"),
    {"gender": {"F": 100, "M": 100}, "race": {"W": 100, "NW": 100}})``

    A row is useful when it reduces at least one marginal deficit; it
    then reduces *every* marginal deficit it matches (a black woman
    counts toward both gender=F and race=NW).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        marginals: Mapping[str, Mapping[Hashable, int]],
    ) -> None:
        if not attributes:
            raise SpecificationError("spec needs at least one attribute")
        self.attributes = tuple(attributes)
        unknown = set(marginals) - set(self.attributes)
        if unknown:
            raise SpecificationError(f"marginals on unknown attributes {unknown}")
        if not marginals:
            raise SpecificationError("spec needs at least one marginal")
        for attribute, values in marginals.items():
            for value, count in values.items():
                if count < 0:
                    raise SpecificationError(
                        f"negative count for {attribute}={value!r}"
                    )
        self.marginals: Dict[str, Dict[Hashable, int]] = {
            a: dict(v) for a, v in marginals.items()
        }

    def new_state(self) -> Dict:
        remaining = {
            (attribute, value): count
            for attribute, values in self.marginals.items()
            for value, count in values.items()
            if count > 0
        }
        return {"remaining": remaining}

    def is_satisfied(self, state: Dict) -> bool:
        return not state["remaining"]

    def _matched_needs(self, group: Group, state: Dict) -> List[Tuple[str, Hashable]]:
        remaining = state["remaining"]
        matched = []
        for attribute, value in zip(self.attributes, group):
            key = (attribute, value)
            if key in remaining:
                matched.append(key)
        return matched

    def process(self, group: Group, state: Dict) -> bool:
        matched = self._matched_needs(group, state)
        if not matched:
            return False
        remaining = state["remaining"]
        for key in matched:
            remaining[key] -= 1
            if remaining[key] == 0:
                del remaining[key]
        return True

    def useful_probability(
        self, group_distribution: Mapping[Group, float], state: Dict
    ) -> float:
        remaining = state["remaining"]
        total = 0.0
        for group, probability in group_distribution.items():
            for attribute, value in zip(self.attributes, group):
                if (attribute, value) in remaining:
                    total += probability
                    break
        return total

    def deficits(self, state: Dict) -> Dict:
        return dict(state["remaining"])
