"""The tailoring collection loop.

``tailor(sources, spec, policy)`` repeatedly asks the policy for a
source, draws one record (paying the source's cost), lets the spec
decide whether the record is useful, and stops when the spec is
satisfied or the cost budget is exhausted.  The engine also implements
the §5 *overlap-aware* variant: when records carry an identity column,
re-drawing an already-collected identity is never useful, and the
per-source duplicate counters feed policies that want to discount
overlapping sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from respdi import obs
from respdi._rng import RngLike, ensure_rng
from respdi.errors import BudgetExceededError, SpecificationError
from respdi.table import Schema, Table
from respdi.tailoring.policies import Policy, PolicyContext
from respdi.tailoring.sources import DataSource
from respdi.tailoring.specs import TailoringSpec


@dataclass
class TailoringResult:
    """Outcome of one tailoring run."""

    satisfied: bool
    total_cost: float
    steps: int
    rows: List[Dict[str, Hashable]]
    pulls: List[int]
    useful: List[int]
    duplicates: List[int]
    deficits: Dict
    cost_trajectory: List[Tuple[float, int]] = field(default_factory=list)
    """``(cumulative_cost, total_useful_rows)`` after each step."""

    def collected_table(self, schema: Schema) -> Table:
        """The collected rows as a table under *schema*."""
        return Table.from_dicts(schema, self.rows)

    @property
    def useful_total(self) -> int:
        return sum(self.useful)


class TailoringEngine:
    """Reusable engine; see :func:`tailor` for the one-shot convenience."""

    def __init__(
        self,
        sources: Sequence[DataSource],
        spec: TailoringSpec,
        policy: Policy,
        dedupe_column: Optional[str] = None,
    ) -> None:
        if not sources:
            raise SpecificationError("tailoring needs at least one source")
        self.sources = list(sources)
        self.spec = spec
        self.policy = policy
        self.dedupe_column = dedupe_column

    def run(
        self,
        budget: float = float("inf"),
        max_steps: int = 1_000_000,
        rng: RngLike = None,
        raise_on_budget: bool = False,
    ) -> TailoringResult:
        """Collect until the spec is satisfied, the cost *budget* is spent,
        or *max_steps* draws have been made.

        With ``raise_on_budget=True`` an unsatisfied run raises
        :class:`BudgetExceededError` instead of returning a partial result.
        """
        if max_steps < 1:
            raise SpecificationError("max_steps must be >= 1")
        generator = ensure_rng(rng)
        self.policy.reset()
        state = self.spec.new_state()
        n = len(self.sources)
        pulls = [0] * n
        useful = [0] * n
        duplicates = [0] * n
        rows: List[Dict[str, Hashable]] = []
        seen_ids: set = set()
        total_cost = 0.0
        trajectory: List[Tuple[float, int]] = []
        steps = 0

        span = obs.trace(
            "tailoring.run", sources=n, policy=type(self.policy).__name__
        )
        with span:
            while not self.spec.is_satisfied(state):
                if steps >= max_steps or total_cost >= budget:
                    if raise_on_budget:
                        raise BudgetExceededError(
                            f"budget exhausted after {steps} steps "
                            f"(cost {total_cost}); deficits: {self.spec.deficits(state)}"
                        )
                    break
                context = PolicyContext(
                    sources=self.sources,
                    spec=self.spec,
                    state=state,
                    pulls=pulls,
                    useful=useful,
                    duplicates=duplicates,
                    step=steps,
                )
                index = self.policy.select(context, generator)
                if not 0 <= index < n:
                    raise SpecificationError(
                        f"policy selected invalid source index {index}"
                    )
                source = self.sources[index]
                row = source.draw(generator)
                total_cost += source.cost
                pulls[index] += 1
                steps += 1

                is_duplicate = False
                if self.dedupe_column is not None:
                    identity = row.get(self.dedupe_column)
                    if identity is not None:
                        if identity in seen_ids:
                            is_duplicate = True
                        else:
                            seen_ids.add(identity)
                if is_duplicate:
                    duplicates[index] += 1
                    trajectory.append((total_cost, len(rows)))
                    continue

                group = self.spec.group_of(row)
                if self.spec.process(group, state):
                    useful[index] += 1
                    rows.append(row)
                trajectory.append((total_cost, len(rows)))

        result = TailoringResult(
            satisfied=self.spec.is_satisfied(state),
            total_cost=total_cost,
            steps=steps,
            rows=rows,
            pulls=pulls,
            useful=useful,
            duplicates=duplicates,
            deficits=self.spec.deficits(state),
            cost_trajectory=trajectory,
        )
        span.set_attribute("steps", steps)
        span.set_attribute("satisfied", result.satisfied)
        self._record_metrics(result)
        return result

    def _record_metrics(self, result: TailoringResult) -> None:
        """Aggregate per-run counters (cheap: called once, after the loop)."""
        obs.inc("tailoring.runs")
        obs.inc("tailoring.draws", result.steps)
        obs.inc("tailoring.useful", result.useful_total)
        obs.inc("tailoring.duplicates", sum(result.duplicates))
        obs.observe("tailoring.run.cost", result.total_cost)
        # Coupon-collector progress: how many useful rows each unit of
        # budget bought, and what remains unsatisfied.
        if result.total_cost > 0:
            obs.set_gauge(
                "tailoring.last_run.rows_per_cost",
                result.useful_total / result.total_cost,
            )
        obs.set_gauge("tailoring.last_run.satisfied", float(result.satisfied))
        for source, source_pulls in zip(self.sources, result.pulls):
            obs.inc(f"tailoring.pulls.{source.name}", source_pulls)


def tailor(
    sources: Sequence[DataSource],
    spec: TailoringSpec,
    policy: Policy,
    budget: float = float("inf"),
    max_steps: int = 1_000_000,
    rng: RngLike = None,
    dedupe_column: Optional[str] = None,
) -> TailoringResult:
    """One-shot tailoring run (see :class:`TailoringEngine`)."""
    engine = TailoringEngine(sources, spec, policy, dedupe_column=dedupe_column)
    return engine.run(budget=budget, max_steps=max_steps, rng=rng)
