"""Data distribution tailoring (tutorial §4.2; Nargesian et al., VLDB 2021).

Given a set of data sources — each with its own group skew and per-sample
cost — collect a target data set satisfying user-specified group-count
requirements at minimum expected cost.

* :mod:`respdi.tailoring.specs` — requirement languages: exact minimum
  counts on intersectional groups (the original DT problem), range
  counts, and marginal (per-attribute, non-intersectional) counts — the
  latter two are the §5 extensions;
* :mod:`respdi.tailoring.sources` — the costed-source abstraction and a
  table-backed implementation;
* :mod:`respdi.tailoring.policies` — source-selection policies:
  RatioColl (known distributions), UCB / epsilon-greedy explore-exploit
  (unknown distributions), and random / round-robin baselines;
* :mod:`respdi.tailoring.engine` — the collection loop, cost accounting,
  and overlap-aware variant.
"""

from respdi.tailoring.engine import TailoringEngine, TailoringResult, tailor
from respdi.tailoring.policies import (
    EpsilonGreedyPolicy,
    ExploitPolicy,
    OverlapAwareRatioCollPolicy,
    RandomPolicy,
    RatioCollPolicy,
    RoundRobinPolicy,
    UCBPolicy,
)
from respdi.tailoring.sources import DataSource, TableSource
from respdi.tailoring.specs import CountSpec, MarginalCountSpec, RangeCountSpec

__all__ = [
    "CountSpec",
    "RangeCountSpec",
    "MarginalCountSpec",
    "DataSource",
    "TableSource",
    "RatioCollPolicy",
    "OverlapAwareRatioCollPolicy",
    "UCBPolicy",
    "EpsilonGreedyPolicy",
    "ExploitPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "TailoringEngine",
    "TailoringResult",
    "tailor",
]
