"""Exception hierarchy for respdi.

Every error raised by the library derives from :class:`RespdiError`, so a
caller can guard an entire pipeline with one ``except RespdiError`` clause
while still being able to discriminate failure modes when needed.
"""

from __future__ import annotations


class RespdiError(Exception):
    """Base class for all errors raised by the respdi library."""


class SchemaError(RespdiError):
    """A table or operation was given an inconsistent or unknown schema.

    Raised, for example, when a column name does not exist, when two
    tables that must be union-compatible are not, or when column lengths
    disagree at construction time.
    """


class TypeMismatchError(SchemaError):
    """A value or column has a type incompatible with the declared dtype."""


class EmptyInputError(RespdiError):
    """An operation that requires at least one row/element got none."""


class SpecificationError(RespdiError):
    """A user-provided specification (query, requirement, count spec) is invalid."""


class InfeasibleError(RespdiError):
    """A requested outcome is provably unattainable.

    Examples: a distribution-tailoring count spec that exceeds what the
    union of all sources contains, or a fairness constraint no range
    refinement can satisfy.
    """


class ExhaustedSourceError(RespdiError):
    """A data source was sampled past the number of records it holds."""


class BudgetExceededError(RespdiError):
    """An acquisition or collection loop ran out of its cost budget."""


class ConvergenceError(RespdiError):
    """An iterative estimator failed to converge within its iteration cap."""


class NotFittedError(RespdiError):
    """A model or estimator was used before being fitted."""


class CatalogError(RespdiError):
    """A persistent-catalog operation failed (unknown entry, missing data,
    a directory that is not a catalog, ...)."""


class CatalogCorruptError(CatalogError):
    """On-disk catalog state fails integrity checks.

    Raised when a manifest or entry file is unreadable, a blake2b
    checksum recorded in the manifest does not match the bytes on disk,
    or persisted sketches were produced by a different MinHasher than the
    one the manifest declares.
    """


class CatalogLockedError(CatalogError):
    """Another writer holds the catalog's lock file and the acquisition
    timeout elapsed."""


class SnapshotContentionError(CatalogError):
    """A reader could not pin a consistent snapshot within its retry
    budget.

    Raised by the service layer when every pin attempt raced a writer's
    commit-and-garbage-collect cycle (the referenced entry files were
    replaced faster than they could be read).  Transient by nature:
    retrying later, or raising the service's pin retry budget, resolves
    it."""
