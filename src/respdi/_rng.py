"""Random-number-generator plumbing shared across the library.

All stochastic components in respdi accept either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
:func:`ensure_rng` normalizes the three forms so call sites stay short and
experiments stay reproducible.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged so that callers can thread one generator
    through a whole experiment).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, or a numpy.random.Generator; "
        f"got {type(rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive *n* independent child generators from *rng*.

    Used when an experiment needs statistically independent streams (for
    example, one per simulated data source) that remain reproducible from
    a single seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
