"""The distribution-aware collection loop and its selection strategies.

Each round the collector asks a selection strategy for a worker, the
worker submits one entity, and the per-worker estimator plus the global
collected histogram are updated.  The figure of merit is
``KL(target || collected)`` as a function of rounds — the quantity
Fan et al. minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.entitycollection.estimation import DirichletEstimator
from respdi.entitycollection.workers import SimulatedWorker
from respdi.errors import SpecificationError
from respdi.stats.divergence import kl_divergence, normalize_distribution


class SelectionStrategy:
    """Interface: pick the worker index for the next round."""

    def select(
        self,
        estimators: Sequence[DirichletEstimator],
        collected: Mapping[Hashable, int],
        target: Mapping[Hashable, float],
        rng: np.random.Generator,
    ) -> int:
        raise NotImplementedError


class AdaptiveSelection(SelectionStrategy):
    """Fan et al.'s adaptive rule: pick the worker minimizing the expected
    post-submission divergence.

    For worker *w* with posterior mean ``p_w``, the expected collected
    histogram after one submission is ``counts + p_w``; the worker whose
    expectation yields the smallest ``KL(target || expected)`` wins.
    Warm-up: any worker with no history yet is tried first (round-robin
    over unobserved workers) so every estimator gets grounded.
    """

    def select(self, estimators, collected, target, rng) -> int:
        for i, estimator in enumerate(estimators):
            if estimator.observations == 0:
                return i
        n = sum(collected.values())
        best_index = 0
        best_divergence = float("inf")
        for i, estimator in enumerate(estimators):
            posterior = estimator.posterior_mean()
            expected = {
                category: collected.get(category, 0) + posterior.get(category, 0.0)
                for category in target
            }
            expected_distribution = normalize_distribution(expected)
            divergence = kl_divergence(target, expected_distribution, smoothing=1e-9)
            if divergence < best_divergence:
                best_divergence = divergence
                best_index = i
        return best_index


class RandomSelection(SelectionStrategy):
    """Uniformly random worker (the no-intelligence baseline)."""

    def select(self, estimators, collected, target, rng) -> int:
        return int(rng.integers(len(estimators)))


class StaticSelection(SelectionStrategy):
    """After a warm-up round over all workers, always use the single
    worker whose estimated distribution is closest to the target.

    Captures "estimate once, never adapt" — good when one worker matches
    the target alone, poor when the target needs a *mix* of workers.
    """

    def select(self, estimators, collected, target, rng) -> int:
        for i, estimator in enumerate(estimators):
            if estimator.observations == 0:
                return i
        divergences = [
            kl_divergence(target, est.posterior_mean(), smoothing=1e-9)
            for est in estimators
        ]
        return int(np.argmin(divergences))


@dataclass
class CollectionResult:
    """Trajectory of one collection run."""

    collected: Dict[Hashable, int]
    kl_trajectory: List[float]
    worker_usage: List[int]

    @property
    def final_kl(self) -> float:
        return self.kl_trajectory[-1] if self.kl_trajectory else float("inf")


class EntityCollector:
    """Runs a collection campaign against a pool of workers."""

    def __init__(
        self,
        workers: Sequence[SimulatedWorker],
        target: Mapping[Hashable, float],
        strategy: SelectionStrategy,
        alpha: float = 1.0,
    ) -> None:
        if not workers:
            raise SpecificationError("need at least one worker")
        self.workers = list(workers)
        self.target = normalize_distribution(dict(target))
        self.strategy = strategy
        self.categories = tuple(sorted(self.target, key=repr))
        self.alpha = alpha

    def run(self, rounds: int, rng: RngLike = None) -> CollectionResult:
        """Collect for *rounds* rounds (one submission per round)."""
        if rounds < 1:
            raise SpecificationError("rounds must be >= 1")
        generator = ensure_rng(rng)
        estimators = [
            DirichletEstimator(self.categories, self.alpha) for _ in self.workers
        ]
        collected: Dict[Hashable, int] = {c: 0 for c in self.categories}
        usage = [0] * len(self.workers)
        trajectory: List[float] = []
        for _ in range(rounds):
            index = self.strategy.select(
                estimators, collected, self.target, generator
            )
            if not 0 <= index < len(self.workers):
                raise SpecificationError(
                    f"strategy selected invalid worker {index}"
                )
            category = self.workers[index].submit(generator)
            usage[index] += 1
            if category in collected:
                collected[category] += 1
            estimators[index].observe(category)
            empirical = normalize_distribution(
                {c: collected[c] + 1e-9 for c in self.categories}
            )
            trajectory.append(kl_divergence(self.target, empirical, smoothing=1e-9))
        return CollectionResult(
            collected=collected, kl_trajectory=trajectory, worker_usage=usage
        )
