"""Distribution-aware crowdsourced entity collection (tutorial §4.1).

Following Fan et al. (TKDE 2019): workers submit entities drawn from
*latent, worker-specific* distributions; the requester wants the
collected set to follow a target distribution over an attribute (e.g.
POIs evenly spread over districts).  The collector iterates between

1. **estimation** — a Dirichlet posterior over each worker's latent
   distribution from that worker's submission history, and
2. **selection** — picking the worker whose expected next submission
   moves the collected distribution closest (in KL divergence) to the
   target.

Baselines (uniform-random worker, fixed single best worker) quantify the
value of adaptivity.
"""

from respdi.entitycollection.collector import (
    AdaptiveSelection,
    CollectionResult,
    EntityCollector,
    RandomSelection,
    StaticSelection,
)
from respdi.entitycollection.estimation import DirichletEstimator
from respdi.entitycollection.workers import SimulatedWorker, make_worker_pool

__all__ = [
    "SimulatedWorker",
    "make_worker_pool",
    "DirichletEstimator",
    "EntityCollector",
    "CollectionResult",
    "AdaptiveSelection",
    "RandomSelection",
    "StaticSelection",
]
