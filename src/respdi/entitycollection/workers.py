"""Simulated crowd workers with latent entity distributions.

The substitution for a real crowd (see DESIGN.md): the adaptive
collection algorithm only ever observes the stream of submitted
entities, so a worker simulator with a hidden categorical distribution
exercises the identical estimation/selection code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.stats.divergence import normalize_distribution


@dataclass
class SimulatedWorker:
    """A worker whose submissions follow a hidden categorical distribution."""

    name: str
    latent: Dict[Hashable, float]

    def __post_init__(self) -> None:
        self.latent = normalize_distribution(self.latent)
        self._categories = sorted(self.latent, key=repr)
        self._probs = np.array([self.latent[c] for c in self._categories])

    def submit(self, rng: np.random.Generator) -> Hashable:
        """One entity submission (its category)."""
        return self._categories[int(rng.choice(len(self._categories), p=self._probs))]


def make_worker_pool(
    categories: Sequence[Hashable],
    n_workers: int,
    concentration: float = 1.0,
    rng: RngLike = None,
) -> List[SimulatedWorker]:
    """*n_workers* workers with Dirichlet-random latent distributions.

    Small *concentration* makes workers highly specialized (each covers
    few categories) — the regime where adaptive selection pays off most.
    """
    if n_workers < 1:
        raise SpecificationError("need at least one worker")
    if not categories:
        raise SpecificationError("need at least one category")
    if concentration <= 0:
        raise SpecificationError("concentration must be positive")
    generator = ensure_rng(rng)
    workers = []
    for i in range(n_workers):
        draw = generator.dirichlet([concentration] * len(categories))
        latent = {c: float(p) for c, p in zip(categories, draw)}
        workers.append(SimulatedWorker(name=f"w{i}", latent=latent))
    return workers
