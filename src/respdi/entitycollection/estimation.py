"""Per-worker distribution estimation.

Fan et al. estimate each worker's latent entity distribution "on the
fly based on the worker's history of collected entities".  With
categorical submissions the natural statistical method is a Dirichlet
posterior: prior ``Dir(alpha)`` over the known categories, posterior
mean ``(alpha + counts) / (alpha * K + n)`` after ``n`` submissions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

from respdi.errors import SpecificationError


class DirichletEstimator:
    """Online Dirichlet-posterior estimate of one worker's distribution."""

    def __init__(self, categories: Sequence[Hashable], alpha: float = 1.0) -> None:
        if not categories:
            raise SpecificationError("need at least one category")
        if alpha <= 0:
            raise SpecificationError("alpha must be positive")
        self.categories = tuple(sorted(set(categories), key=repr))
        self.alpha = alpha
        self._counts: Dict[Hashable, int] = {c: 0 for c in self.categories}
        self._n = 0

    @property
    def observations(self) -> int:
        return self._n

    def observe(self, category: Hashable) -> None:
        """Record one submission."""
        if category not in self._counts:
            raise SpecificationError(
                f"unknown category {category!r}; estimator knows {self.categories}"
            )
        self._counts[category] += 1
        self._n += 1

    def posterior_mean(self) -> Dict[Hashable, float]:
        """Current posterior-mean distribution over the categories."""
        denominator = self.alpha * len(self.categories) + self._n
        return {
            c: (self.alpha + count) / denominator
            for c, count in self._counts.items()
        }

    def counts(self) -> Dict[Hashable, int]:
        return dict(self._counts)
