"""Deterministic fault injection: named points, plans, and fault kinds.

Durability claims ("we use atomic renames", "a failed worker retries
then falls back to serial") are only as good as the tests that exercise
the failure windows.  This module turns the library's crash- and
fault-critical code paths into *named injection points*::

    from respdi.faults import fault_point

    fault_point("catalog.commit.manifest")        # plain checkpoint
    fault_point("fsutil.tmp_written", tear_target=tmp)  # with context

A point is a no-op unless a :class:`FaultPlan` is installed — the hook
costs one module-global load and a ``None`` check, the same contract as
:mod:`respdi.obs` — so production code pays nothing for being testable.
Tests install a plan that maps points to faults::

    plan = FaultPlan().on("fsutil.fsync", FsyncFailFault())
    with active_plan(plan):
        store.add_table("t", table)   # the 1st fsync now fails

Fault kinds cover the failure modes a responsible integration system
must audit (RAIDS' reliability pillar): :class:`RaiseFault` (transient
or deterministic errors), :class:`DelayFault` (hangs/timeouts),
:class:`CrashFault` (hard kill via ``os._exit`` — *no* cleanup handlers
run, exactly like SIGKILL), and :class:`TornWriteFault` (truncate a
half-written file, then crash).  Rules trigger deterministically by
occurrence count (``skip``/``every``/``times``) and an optional ``when``
predicate over the point's context, so "fail chunk 3's second attempt"
is expressible and repeatable.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from respdi.errors import RespdiError

#: Exit status a :class:`CrashFault` terminates the process with, so a
#: parent (e.g. :class:`~respdi.faults.crash.CrashSimulator`) can tell a
#: simulated crash apart from any other death.
CRASH_EXIT_CODE = 173

#: Every injection point wired into the library, by subsystem.  Tests
#: assert this registry is complete (each name is hit by the suite) so a
#: point can never silently go unexercised.
KNOWN_POINTS = frozenset(
    {
        # respdi._fsutil — the atomic tmp-write/fsync/rename recipe
        "fsutil.tmp_created",
        "fsutil.fsync",
        "fsutil.tmp_written",
        "fsutil.renamed",
        # respdi.catalog.store — manifest commit protocol and read gate
        "catalog.commit.ensemble",
        "catalog.commit.manifest",
        "catalog.commit.gc",
        "catalog.entry.read",
        # respdi.catalog.locking — writer-lock lifecycle
        "catalog.lock.acquire",
        "catalog.lock.acquired",
        "catalog.lock.break",
        "catalog.lock.release",
        # respdi.parallel.engine — per-chunk worker execution
        "parallel.worker",
        # respdi.catalog.sharding — shard routing, per-shard commit
        # fan-out, and scatter-gather merge
        "shard.route",
        "shard.commit",
        "shard.gather",
        # respdi.service — read-path query layer (snapshot pinning, the
        # generation-keyed result cache, and the serve loop).  All
        # read-only: killing at any of them must leave the store intact.
        "service.snapshot.pin",
        "service.cache.lookup",
        "service.cache.store",
        "service.serve.start",
        "service.serve.request",
        # respdi.service.pcache — the persistent result-cache sidecar.
        # ``store`` and ``sweep`` write (through _fsutil / unlink); the
        # crash matrix kills at each and proves no corrupt entry is ever
        # served (checksum gate) and the catalog itself is untouched.
        "service.pcache.lookup",
        "service.pcache.store",
        "service.pcache.sweep",
        # respdi.ingest — the continuous ingestion daemon (watcher scan,
        # change-set apply, and the cycle loop).  The apply is the only
        # mutating point; killing there must leave a committed catalog.
        "ingest.scan",
        "ingest.apply",
        "ingest.cycle",
        # respdi.pipeline — stage boundaries (resolve runs only when a
        # matcher strength is configured; the completeness gate's mini
        # pipeline configures one)
        "pipeline.stage.tailor",
        "pipeline.stage.clean",
        "pipeline.stage.resolve",
        "pipeline.stage.audit",
        "pipeline.stage.document",
    }
)


class InjectedFaultError(RespdiError):
    """Default exception raised by :class:`RaiseFault` (clearly synthetic)."""


class SimulatedCrash(BaseException):
    """In-process stand-in for a hard kill.

    Derives from :class:`BaseException` so recovery code written as
    ``except Exception`` cannot swallow it.  Note that ``finally``
    blocks and ``except BaseException`` cleanup *do* still run — for a
    faithful kill (nothing after the point executes) use
    :class:`CrashFault`, which exits the process outright.
    """


class Fault:
    """A failure behavior triggered at an injection point."""

    def fire(self, point: str, info: Dict[str, Any]) -> None:
        raise NotImplementedError


class RaiseFault(Fault):
    """Raise an exception at the point (default: :class:`InjectedFaultError`)."""

    def __init__(self, exception: Optional[BaseException] = None) -> None:
        self.exception = exception

    def fire(self, point: str, info: Dict[str, Any]) -> None:
        if self.exception is not None:
            raise self.exception
        raise InjectedFaultError(f"injected fault at {point!r}")


class FsyncFailFault(RaiseFault):
    """An fsync that fails with ``EIO`` — the classic torn-durability error."""

    def __init__(self) -> None:
        super().__init__(OSError(errno.EIO, "injected fsync failure"))


class DelayFault(Fault):
    """Sleep at the point — models a hung worker or a slow disk."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)

    def fire(self, point: str, info: Dict[str, Any]) -> None:
        time.sleep(self.seconds)


class CrashFault(Fault):
    """Terminate the process immediately via ``os._exit``.

    Nothing after the injection point runs: no ``finally`` blocks, no
    ``atexit``, no buffered flushes — the closest an in-tree fault can
    get to SIGKILL or power loss.  Meant to fire inside a child process
    forked by :class:`~respdi.faults.crash.CrashSimulator`.
    """

    def __init__(self, exit_code: int = CRASH_EXIT_CODE) -> None:
        self.exit_code = int(exit_code)

    def fire(self, point: str, info: Dict[str, Any]) -> None:
        os._exit(self.exit_code)


class TornWriteFault(CrashFault):
    """Truncate the point's ``tear_target`` file to a prefix, then crash.

    Simulates a crash that left only the leading *fraction* of a write
    on disk (lost tail sectors).  Points that can tear pass the path to
    mutilate as ``tear_target`` in their context.
    """

    def __init__(
        self, fraction: float = 0.5, exit_code: int = CRASH_EXIT_CODE
    ) -> None:
        super().__init__(exit_code=exit_code)
        if not 0.0 <= fraction < 1.0:
            raise RespdiError("tear fraction must be in [0, 1)")
        self.fraction = float(fraction)

    def fire(self, point: str, info: Dict[str, Any]) -> None:
        target = info.get("tear_target")
        if target is not None:
            try:
                size = os.path.getsize(target)
                os.truncate(target, int(size * self.fraction))
            except OSError:
                pass
        os._exit(self.exit_code)


class FaultRule:
    """When one fault fires: occurrence gating plus a context predicate.

    The rule sees every hit of its point that passes *when*; among
    those, it skips the first *skip*, then fires on every *every*-th,
    at most *times* times (``times=None`` = unlimited).
    """

    def __init__(
        self,
        fault: Fault,
        skip: int = 0,
        every: int = 1,
        times: Optional[int] = 1,
        when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> None:
        if skip < 0 or every < 1 or (times is not None and times < 1):
            raise RespdiError("need skip >= 0, every >= 1, times >= 1 or None")
        self.fault = fault
        self.skip = skip
        self.every = every
        self.times = times
        self.when = when
        self.seen = 0
        self.fired = 0

    def consider(self, info: Dict[str, Any]) -> bool:
        """Record one hit; return True when the fault should fire now."""
        if self.when is not None and not self.when(info):
            return False
        self.seen += 1
        if self.times is not None and self.fired >= self.times:
            return False
        eligible = self.seen - self.skip
        if eligible < 1 or (eligible - 1) % self.every != 0:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A deterministic mapping from injection points to fault rules.

    Also an observer: every hit is counted in :attr:`hits` (and, with
    ``record_trace=True``, appended to :attr:`trace` in order), which is
    how :class:`~respdi.faults.crash.CrashSimulator` enumerates the
    kill-points of an operation before re-running it against each one.
    Thread-safe: worker threads hitting points concurrently never lose
    counts or double-fire a ``times``-bounded rule.
    """

    def __init__(self, record_trace: bool = False) -> None:
        self._rules: Dict[str, List[FaultRule]] = {}
        self._lock = threading.Lock()
        self.hits: Dict[str, int] = {}
        self.trace: Optional[List[str]] = [] if record_trace else None

    def on(
        self,
        point: str,
        fault: Fault,
        *,
        skip: int = 0,
        every: int = 1,
        times: Optional[int] = 1,
        when: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> "FaultPlan":
        """Arm *fault* at *point*; returns self for chaining."""
        rule = FaultRule(fault, skip=skip, every=every, times=times, when=when)
        self._rules.setdefault(point, []).append(rule)
        return self

    def hit(self, point: str, info: Dict[str, Any]) -> None:
        """Record a hit of *point* and fire any rule that triggers."""
        with self._lock:
            self.hits[point] = self.hits.get(point, 0) + 1
            if self.trace is not None:
                self.trace.append(point)
            to_fire = [
                rule for rule in self._rules.get(point, ()) if rule.consider(info)
            ]
        for rule in to_fire:
            rule.fault.fire(point, info)

    def count(self, point: str) -> int:
        """How many times *point* was hit under this plan."""
        with self._lock:
            return self.hits.get(point, 0)


# The active plan is a bare module global so fault_point() costs one
# attribute load and a None check when no plan is installed — the same
# near-zero-overhead discipline as respdi.obs._state.
_ACTIVE: Optional[FaultPlan] = None


def fault_point(point: str, **info: Any) -> None:
    """Checkpoint for fault injection; a no-op unless a plan is active."""
    plan = _ACTIVE
    if plan is not None:
        plan.hit(point, info)


def install_plan(plan: FaultPlan) -> None:
    """Make *plan* the process-wide active fault plan."""
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    """Deactivate fault injection (every point becomes a no-op again)."""
    global _ACTIVE
    _ACTIVE = None


def current_plan() -> Optional[FaultPlan]:
    """The installed plan, or None when injection is inactive."""
    return _ACTIVE


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of a ``with`` block."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()
