"""Crash simulation: kill an operation at every step, audit the wreckage.

:class:`CrashSimulator` machine-checks a crash-consistency claim.  Given
three callables —

* ``prepare(workdir)`` — build the initial on-disk state,
* ``mutate(workdir)`` — the operation whose durability is under test,
* ``classify(workdir)`` — load the post-crash state and name it
  (conventionally ``"old"`` / ``"new"``; raise on anything corrupt) —

it first runs *mutate* once under a recording :class:`FaultPlan` to
enumerate every injection point the operation passes through, then
re-runs it once per step in a **forked child process** armed with a
:class:`CrashFault` at exactly that step.  ``os._exit`` in the child
means no ``finally`` blocks, no atexit hooks, and no buffer flushes run
— the closest a test can get to pulling the plug.  The parent then
classifies the surviving state.  A healthy atomic-commit protocol
yields only complete-old or complete-new outcomes; anything else lands
in :attr:`CrashReport.corrupt` and fails the matrix.

POSIX-only (requires ``os.fork``); the crash-matrix tests skip
elsewhere.
"""

from __future__ import annotations

import os
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from respdi.errors import SpecificationError
from respdi.faults.plan import (
    CRASH_EXIT_CODE,
    CrashFault,
    FaultPlan,
    active_plan,
    install_plan,
)

PathLike = Union[str, Path]

#: Child exit status when the mutation finished without reaching its
#: armed step (a non-deterministic point sequence — reported as corrupt).
COMPLETED_EXIT_CODE = 170

#: Child exit status when the mutation raised instead of crashing.
ERROR_EXIT_CODE = 171


@dataclass
class CrashOutcome:
    """What one kill-at-step trial left on disk."""

    step: int
    point: str
    state: Optional[str] = None
    problem: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.problem is None


class CrashReport:
    """The full kill-at-every-step matrix for one operation."""

    def __init__(self, operation: str, outcomes: Sequence[CrashOutcome]) -> None:
        self.operation = operation
        self.outcomes = list(outcomes)

    @property
    def corrupt(self) -> List[CrashOutcome]:
        """Trials whose surviving state classified as neither old nor new."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def states(self) -> Dict[str, int]:
        """Histogram of healthy classifications (e.g. ``{"old": 9, "new": 3}``)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.ok and outcome.state is not None:
                counts[outcome.state] = counts.get(outcome.state, 0) + 1
        return counts

    def summary(self) -> str:
        states = " ".join(
            f"{state}={count}" for state, count in sorted(self.states.items())
        )
        return (
            f"{self.operation}: {len(self.outcomes)} kill-step(s), "
            f"{len(self.corrupt)} corrupt, {states}"
        )


class CrashSimulator:
    """Re-run a mutation, killing it at every injection point it crosses."""

    def __init__(
        self,
        prepare: Callable[[Path], None],
        mutate: Callable[[Path], None],
        classify: Callable[[Path], str],
        points: Optional[Sequence[str]] = None,
        operation: str = "mutation",
    ) -> None:
        """*points*, when given, restricts kill-steps to points whose name
        starts with any of the given prefixes (the recording still sees
        every point, so per-point occurrence numbering is unaffected)."""
        self.prepare = prepare
        self.mutate = mutate
        self.classify = classify
        self.points = tuple(points) if points is not None else None
        self.operation = operation

    # -- enumeration ---------------------------------------------------------

    def record(self, workdir: Path) -> List[str]:
        """The ordered injection points one clean run of *mutate* crosses."""
        workdir.mkdir(parents=True, exist_ok=True)
        self.prepare(workdir)
        plan = FaultPlan(record_trace=True)
        with active_plan(plan):
            self.mutate(workdir)
        assert plan.trace is not None
        return list(plan.trace)

    def _selected(self, point: str) -> bool:
        if self.points is None:
            return True
        return any(point.startswith(prefix) for prefix in self.points)

    # -- the matrix ----------------------------------------------------------

    def run(self, base_dir: PathLike) -> CrashReport:
        """Kill *mutate* at every selected step; classify each survivor."""
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX only
            raise SpecificationError(
                "CrashSimulator needs os.fork to kill without cleanup "
                "(POSIX only)"
            )
        base_dir = Path(base_dir)
        trace = self.record(base_dir / "record")
        steps: List[Tuple[int, str, int]] = []
        occurrences: Dict[str, int] = {}
        for index, point in enumerate(trace):
            seen = occurrences.get(point, 0)
            if self._selected(point):
                steps.append((index, point, seen))
            occurrences[point] = seen + 1

        outcomes = []
        for step, point, skip in steps:
            workdir = base_dir / f"step-{step:04d}"
            workdir.mkdir(parents=True, exist_ok=True)
            self.prepare(workdir)
            status = self._run_crashing_child(workdir, point, skip)
            outcome = CrashOutcome(step=step, point=point)
            if status == CRASH_EXIT_CODE:
                try:
                    outcome.state = self.classify(workdir)
                except BaseException as exc:  # noqa: BLE001 - report, don't die
                    outcome.problem = f"{type(exc).__name__}: {exc}"
            elif status == COMPLETED_EXIT_CODE:
                outcome.problem = (
                    "mutation completed without reaching its kill-step "
                    "(non-deterministic point sequence?)"
                )
            elif status == ERROR_EXIT_CODE:
                outcome.problem = "mutation raised instead of crashing"
            else:
                outcome.problem = f"child exited with unexpected status {status}"
            outcomes.append(outcome)
            if outcome.ok:
                shutil.rmtree(workdir, ignore_errors=True)
        return CrashReport(self.operation, outcomes)

    def _run_crashing_child(self, workdir: Path, point: str, skip: int) -> int:
        """Fork; the child runs *mutate* armed to crash at *point*."""
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits via os._exit
            # The child must never return into the test harness: every
            # path out of this block is an os._exit.
            try:
                plan = FaultPlan().on(
                    point, CrashFault(), skip=skip, times=1
                )
                install_plan(plan)
                self.mutate(workdir)
            except BaseException:
                os._exit(ERROR_EXIT_CODE)
            os._exit(COMPLETED_EXIT_CODE)
        _, status = os.waitpid(pid, 0)
        if os.WIFEXITED(status):
            return os.WEXITSTATUS(status)
        return -(os.WTERMSIG(status) if os.WIFSIGNALED(status) else 1)
