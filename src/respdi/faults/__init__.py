"""respdi.faults — deterministic fault injection and crash simulation.

The reliability counterpart to :mod:`respdi.obs`: where obs makes the
system's behavior *observable*, faults makes its failure behavior
*provable*.  Library code is seeded with named injection points
(:func:`fault_point`) that are no-ops in production; tests install a
:class:`FaultPlan` mapping points to faults — raise, delay, fsync
failure, torn write, or a hard ``os._exit`` crash — and a
:class:`CrashSimulator` that re-runs a catalog mutation killing it at
*every* step it crosses, asserting the store afterwards loads as the
complete old state or the complete new state, never a hybrid.

See ``tests/test_crash_consistency.py`` for the kill-at-every-step
matrix over the catalog and ``tests/test_faults_engine.py`` for the
plan/point semantics and the parallel-engine fault drills.
"""

from __future__ import annotations

from respdi.faults.crash import (
    COMPLETED_EXIT_CODE,
    ERROR_EXIT_CODE,
    CrashOutcome,
    CrashReport,
    CrashSimulator,
)
from respdi.faults.plan import (
    CRASH_EXIT_CODE,
    KNOWN_POINTS,
    CrashFault,
    DelayFault,
    Fault,
    FaultPlan,
    FaultRule,
    FsyncFailFault,
    InjectedFaultError,
    RaiseFault,
    SimulatedCrash,
    TornWriteFault,
    active_plan,
    clear_plan,
    current_plan,
    fault_point,
    install_plan,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "COMPLETED_EXIT_CODE",
    "ERROR_EXIT_CODE",
    "KNOWN_POINTS",
    "CrashFault",
    "CrashOutcome",
    "CrashReport",
    "CrashSimulator",
    "DelayFault",
    "Fault",
    "FaultPlan",
    "FaultRule",
    "FsyncFailFault",
    "InjectedFaultError",
    "RaiseFault",
    "SimulatedCrash",
    "TornWriteFault",
    "active_plan",
    "clear_plan",
    "current_plan",
    "fault_point",
    "install_plan",
]
