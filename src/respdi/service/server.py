"""``respdi-catalog serve`` — a long-lived JSON-lines query server.

The transport is deliberately the simplest thing that makes the catalog
a *service* instead of a one-shot command: one JSON request per input
line, one JSON response per output line, over any pair of file-like
streams (stdin/stdout from the CLI, ``io.StringIO`` in tests, a socket
file if a caller wants one).  The store is opened once at startup and
every request is answered through the shared :class:`QueryService`
machinery — pinned snapshots, generation-keyed cache, obs counters.

Request ops::

    {"op": "keyword", "text": "demographics", "k": 10}
    {"op": "join", "values": ["a", "b"], "k": 5, "min_overlap": 1}
    {"op": "join", "csv": "query.csv", "column": "key", "k": 5}
    {"op": "union", "csv": "query.csv", "k": 5}
    {"op": "containment", "values": ["a", "b"], "threshold": 0.5, "k": 3}
    {"op": "match", "csv": "dirty.csv", "match_strength": "fuzzy",
     "keys": ["name"], "threshold": 0.85, "window": 8}
    {"op": "stats"}      # cache/snapshot counters
    {"op": "reload"}     # re-pin the latest committed generation
    {"op": "ping"}
    {"op": "stop"}       # drain and exit the loop

Every response carries ``ok`` plus either the rendered ``results`` and
the ``generation`` they were computed against, or an ``error`` string —
a malformed request never kills the server.  Responses render through
:meth:`respdi.service.queries.Query.render`, so their bytes are a
deterministic function of (catalog generation, request): the
differential suite compares served lines across backends and
``PYTHONHASHSEED`` values directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, TextIO

from respdi.errors import RespdiError
from respdi.faults.plan import fault_point
from respdi.service.cache import is_hit
from respdi.service.queries import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    MatchQuery,
    Query,
    UnionQuery,
)
from respdi.service.service import QueryService
from respdi.table import read_csv


def _require(request: Dict[str, Any], field: str) -> Any:
    value = request.get(field)
    if value is None:
        raise RespdiError(f"{request.get('op')!r} request needs {field!r}")
    return value


def _join_values(request: Dict[str, Any]) -> tuple:
    if "values" in request:
        return tuple(request["values"])
    csv_path = _require(request, "csv")
    column = _require(request, "column")
    return tuple(read_csv(csv_path).unique(column))


def build_query(request: Dict[str, Any]) -> Query:
    """Translate one request object into a fingerprintable :class:`Query`."""
    op = _require(request, "op")
    k = int(request.get("k", 10))
    if op == "keyword":
        return KeywordQuery(text=str(_require(request, "text")), k=k)
    if op == "union":
        return UnionQuery(table=read_csv(_require(request, "csv")), k=k)
    if op == "join":
        return JoinQuery(
            values=_join_values(request),
            k=k,
            min_overlap=int(request.get("min_overlap", 1)),
        )
    if op == "containment":
        return ContainmentQuery(
            values=tuple(_require(request, "values")),
            threshold=float(_require(request, "threshold")),
            k=request.get("k"),
        )
    if op == "match":
        return MatchQuery(
            table=read_csv(_require(request, "csv")),
            strength=str(_require(request, "match_strength")),
            keys=tuple(_require(request, "keys")),
            threshold=float(request.get("threshold", 0.85)),
            window=int(request.get("window", 8)),
        )
    raise RespdiError(f"unknown op {op!r}")


def handle_request(
    service: QueryService,
    request: Dict[str, Any],
    cached: bool = True,
    pcache: Optional[Any] = None,
) -> Dict[str, Any]:
    """Answer one already-parsed request; exceptions become error payloads.

    With *pcache* (a :class:`~respdi.service.pcache.PersistentResultCache`),
    query results are additionally served from — and stored to — the
    on-disk sidecar at *rendered* granularity: a persistent hit skips
    both the query computation and the render, and produces the same
    response bytes either way (the entry is keyed by the exact
    ``(generation, fingerprint)`` pair and checksum-gated on read).
    """
    fault_point("service.serve.request", op=request.get("op"))
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "ping"}
    if op == "stats":
        stats = service.stats()
        if pcache is not None:
            stats["pcache"] = pcache.stats()
        return {"ok": True, "op": "stats", "stats": stats}
    if op == "reload":
        # The operator's (and the ingest daemon's) re-pin-on-demand: a
        # long-lived server picks up whatever generation is committed
        # right now, without waiting for the next query's token check.
        old, new = service.reload()
        return {
            "ok": True,
            "op": "reload",
            "previous_generation": old,
            "generation": new,
        }
    query = build_query(request)
    snapshot = service.snapshot()
    generation = snapshot.generation
    if pcache is not None:
        pcache.observe_generation(generation)
        payload = pcache.get(generation, query.fingerprint)
        if is_hit(payload):
            return {
                "ok": True,
                "op": op,
                "generation": generation,
                "results": payload,
            }
    result = service._query_at(query, snapshot, cached)
    rendered = query.render(result)
    if pcache is not None:
        pcache.put(generation, query.fingerprint, rendered, op=op)
    return {
        "ok": True,
        "op": op,
        "generation": generation,
        "results": rendered,
    }


def serve(
    service: QueryService,
    input_stream: TextIO,
    output_stream: TextIO,
    cached: bool = True,
    max_requests: Optional[int] = None,
    pcache: Optional[Any] = None,
) -> int:
    """Run the request/response loop until EOF, ``stop``, or *max_requests*.

    Returns the number of requests served.  Per-request failures (bad
    JSON, unknown op, missing CSV, ...) are reported in-band and the
    loop keeps serving; only stream-level failures propagate.
    """
    fault_point("service.serve.start", directory=str(service.directory))
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        if max_requests is not None and served >= max_requests:
            break
        served += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise RespdiError("request must be a JSON object")
            if request.get("op") == "stop":
                response: Dict[str, Any] = {"ok": True, "op": "stop"}
                output_stream.write(json.dumps(response) + "\n")
                output_stream.flush()
                break
            response = handle_request(
                service, request, cached=cached, pcache=pcache
            )
        except (RespdiError, OSError, ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
        if max_requests is not None and served >= max_requests:
            break
    return served
