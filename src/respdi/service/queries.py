"""Fingerprintable query descriptors for the catalog query service.

A :class:`Query` names one discovery question precisely enough to cache
its answer: two queries with equal fingerprints are guaranteed to
produce byte-identical results against the same catalog generation.
Fingerprints are blake2b digests over a canonical descriptor — query
kind, every parameter, and (for table-valued queries) the content
fingerprint of the query table — so they are stable across processes
and ``PYTHONHASHSEED`` values, like every other hash in the catalog.

Each descriptor knows how to run itself against a
:class:`~respdi.discovery.lake_index.DataLakeIndex` (:meth:`Query.run`)
and how to render its result as plain JSON-able data
(:meth:`Query.render`) for the serve loop and the differential suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Hashable, List, Optional, Tuple

from respdi.catalog.store import table_fingerprint
from respdi.discovery.lake_index import DataLakeIndex
from respdi.errors import SpecificationError
from respdi.table import Table


def _digest(*parts: str) -> str:
    digest = blake2b(digest_size=16)
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _values_part(values: Tuple[Hashable, ...]) -> str:
    return repr(list(values))


@dataclass(frozen=True)
class Query:
    """Base class: one cacheable discovery question."""

    kind = "query"

    #: Memoized fingerprint — table-valued queries hash every cell of
    #: their query table, which is worth paying once per descriptor, not
    #: once per lookup.  ``field`` keeps it out of __init__/__eq__/repr.
    _fp: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def fingerprint(self) -> str:
        fp = self._fp
        if fp is None:
            fp = self._compute_fingerprint()
            object.__setattr__(self, "_fp", fp)
        return fp

    def _compute_fingerprint(self) -> str:
        raise NotImplementedError

    def run(self, index: DataLakeIndex) -> Any:
        raise NotImplementedError

    def render(self, result: Any) -> List[dict]:
        raise NotImplementedError


@dataclass(frozen=True)
class KeywordQuery(Query):
    """TF-IDF keyword search over table names, descriptions, and values."""

    text: str = ""
    k: int = 10

    kind = "keyword"

    def _compute_fingerprint(self) -> str:
        return _digest(self.kind, self.text, str(self.k))

    def run(self, index: DataLakeIndex) -> Any:
        return index.keyword_search(self.text, k=self.k)

    def render(self, result: Any) -> List[dict]:
        return [
            {"table": hit.table_name, "score": hit.score} for hit in result
        ]


@dataclass(frozen=True)
class UnionQuery(Query):
    """Tables unionable with the query table (sketch-based alignment)."""

    table: Optional[Table] = None
    k: int = 10

    kind = "union"

    def __post_init__(self) -> None:
        if self.table is None:
            raise SpecificationError("UnionQuery requires a query table")

    def _compute_fingerprint(self) -> str:
        return _digest(self.kind, table_fingerprint(self.table), str(self.k))

    def run(self, index: DataLakeIndex) -> Any:
        return index.unionable_tables(self.table, k=self.k)

    def render(self, result: Any) -> List[dict]:
        return [
            {
                "table": cand.table_name,
                "score": cand.score,
                "alignment": dict(cand.alignment),
            }
            for cand in result
        ]


@dataclass(frozen=True)
class JoinQuery(Query):
    """Columns with the largest exact value overlap with *values*."""

    values: Tuple[Hashable, ...] = ()
    k: int = 10
    min_overlap: int = 1

    kind = "join"

    def _compute_fingerprint(self) -> str:
        return _digest(
            self.kind,
            _values_part(self.values),
            str(self.k),
            str(self.min_overlap),
        )

    def run(self, index: DataLakeIndex) -> Any:
        return index.joinable_columns(
            list(self.values), k=self.k, min_overlap=self.min_overlap
        )

    def render(self, result: Any) -> List[dict]:
        return [
            {
                "table": cand.table_name,
                "column": cand.column_name,
                "overlap": cand.overlap,
            }
            for cand in result
        ]


@dataclass(frozen=True)
class ContainmentQuery(Query):
    """Columns whose domains contain *values* above a threshold (LSH)."""

    values: Tuple[Hashable, ...] = ()
    threshold: float = 0.5
    k: Optional[int] = None

    kind = "containment"

    def _compute_fingerprint(self) -> str:
        return _digest(
            self.kind,
            _values_part(self.values),
            repr(self.threshold),
            str(self.k),
        )

    def run(self, index: DataLakeIndex) -> Any:
        return index.containment_search(
            list(self.values), self.threshold, k=self.k
        )

    def render(self, result: Any) -> List[dict]:
        return [
            {"table": table, "column": column, "containment": estimate}
            for (table, column), estimate in result
        ]


@dataclass(frozen=True)
class MatchQuery(Query):
    """Link the query table's records at a chosen matcher strength.

    The serve path's ``match_strength`` knob: the request carries its
    own table (like :class:`UnionQuery`) plus a strength name, and the
    answer is the transitively closed link set the corresponding
    :mod:`respdi.linkage.views` view produces.  The computation is a
    pure function of the request — it reads nothing from the catalog —
    so plain and sharded services answer byte-identically and the
    result caches under the query fingerprint like every other kind.
    """

    table: Optional[Table] = None
    strength: str = "normalized"
    keys: Tuple[str, ...] = ()
    threshold: float = 0.85
    window: int = 8

    kind = "match"

    def __post_init__(self) -> None:
        from respdi.linkage.views import STRENGTH_ORDER

        if self.table is None:
            raise SpecificationError("MatchQuery requires a query table")
        if not self.keys:
            raise SpecificationError("MatchQuery requires key columns")
        if self.strength not in STRENGTH_ORDER:
            raise SpecificationError(
                f"unknown match strength {self.strength!r}; pick one of "
                f"{', '.join(STRENGTH_ORDER)}"
            )

    def _compute_fingerprint(self) -> str:
        return _digest(
            self.kind,
            table_fingerprint(self.table),
            self.strength,
            repr(list(self.keys)),
            repr(self.threshold),
            str(self.window),
        )

    def run(self, index: DataLakeIndex) -> Any:
        # *index* is deliberately unused: matching runs on the request's
        # own table.  The serve machinery still pins a snapshot, so the
        # response's generation field reports what was current.
        from respdi.linkage.views import build_view

        view = build_view(
            self.strength, self.keys, threshold=self.threshold,
            window=self.window,
        )
        return view.link(self.table)

    def render(self, result: Any) -> List[dict]:
        return [
            {
                "strength": result.strength,
                "records": result.n_records,
                "num_links": result.num_links,
                "clusters": result.num_clusters,
                "links": [[int(i), int(j)] for i, j in result.sorted_pairs()],
            }
        ]
