"""``respdi-catalog serve --port``: a threaded multi-tenant socket server.

The stdin JSON-lines loop (:func:`respdi.service.server.serve`) serves
one client; this module serves many, concurrently, over TCP — same
protocol (one JSON request per line, one JSON response per line), same
query machinery (shared :class:`QueryService`/:class:`ShardedQueryService`,
one pinned snapshot per request), so a socket response is byte-identical
to the stdin response for the same request against the same generation
(the serve differential suite asserts exactly that).

What the socket path adds on top of the protocol:

* **concurrency** — one handler thread per connection; all threads
  share the service's snapshot/cache machinery, which is thread-safe by
  construction (PR 5's concurrency stress).
* **tenancy** — requests may carry ``"tenant": "name"``; an optional
  :class:`~respdi.service.admission.AdmissionController` applies
  per-tenant token-bucket quotas and a global bounded inflight gate.
  Shed requests get ``{"ok": false, "error": "overloaded",
  "retry_after_ms": ...}`` *in-band* — the connection stays usable, the
  server stays responsive, other tenants keep their latency.  ``ping``
  and ``stats`` bypass admission so health checks always answer.
* **observability** — per-kind and per-tenant latency ledgers with
  p50/p99 (mirrored to ``serve.latency.*`` obs histograms), request
  counters, and a ``stats`` op that reports admission ledgers, latency
  summaries, and cache tiers without any process-internal access.
* an optional **persistent cache tier**
  (:class:`~respdi.service.pcache.PersistentResultCache`) shared by all
  connections, so a restarted server warm-starts from disk.

The server binds ``127.0.0.1`` by default: this is a backend service;
exposing it wider is an explicit operator decision (``--host``).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from respdi import obs
from respdi.errors import RespdiError
from respdi.faults.plan import fault_point
from respdi.service.admission import (
    DEFAULT_TENANT,
    AdmissionController,
    LatencyLedger,
)
from respdi.service.pcache import PersistentResultCache
from respdi.service.server import handle_request

#: Ops that never pass through admission control: operators must always
#: be able to health-check and read counters, throttled tenants included
#: (a quota that silences ``stats`` would hide the very overload it
#: causes).  ``stop`` only ends its own connection.
UNGATED_OPS = frozenset({"ping", "stats", "stop"})


class SocketQueryServer:
    """A threaded JSON-lines query server over one query service.

    One accept loop, one handler thread per connection, all sharing
    *service* (and, when given, *pcache* and *admission*).  ``port=0``
    binds an ephemeral port — :meth:`start` returns the bound address,
    which is how tests and benchmarks avoid port races.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        cached: bool = True,
        pcache: Optional[PersistentResultCache] = None,
        admission: Optional[AdmissionController] = None,
        latency: Optional[LatencyLedger] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.cached = cached
        self.pcache = pcache
        self.admission = admission
        self.latency = latency if latency is not None else LatencyLedger()
        self.max_requests = max_requests
        self.requests_served = 0
        self.connections_accepted = 0
        self._count_lock = threading.Lock()
        self._stopping = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._conns: List[socket.socket] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spawn the accept loop; returns ``(host, port)``."""
        fault_point("service.serve.start", directory=str(self.service.directory))
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="respdi-serve-accept", daemon=True
        )
        self._accept_thread.start()
        obs.inc("serve.started")
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting, close every connection, join the threads."""
        self._stopping.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            # close() alone does not wake a thread blocked in accept():
            # shutdown() does on Linux, and the throwaway self-connection
            # covers platforms where shutting down a listener is a no-op.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=1.0
                ):
                    pass
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        with self._count_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        for thread in list(self._handlers):
            thread.join(timeout)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (e.g. ``max_requests`` reached)."""
        return self._stopping.wait(timeout)

    def serve_forever(self) -> int:
        """Blocking convenience for the CLI: start, run until stopped."""
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.wait(0.2):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()
        return self.requests_served

    # -- the accept loop -------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._count_lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self.connections_accepted += 1
                self._conns.append(conn)
            obs.inc("serve.connections")
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="respdi-serve-conn",
                daemon=True,
            )
            self._handlers.append(thread)
            thread.start()

    # -- per-connection handling -----------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                response, last, counted = self._respond(line)
                writer.write(json.dumps(response) + "\n")
                writer.flush()
                # Count (and possibly trip the max_requests stop latch)
                # only AFTER the response is flushed: the latch wakes
                # stop(), which closes connections, and winning that
                # race against our own write would eat the response.
                if counted and self._count_request():
                    break
                if last or self._stopping.is_set():
                    break
        except (OSError, ValueError):
            pass  # client went away mid-write; nothing to salvage
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._count_lock:
                try:
                    self._conns.remove(conn)
                except ValueError:
                    pass

    def _respond(self, line: str) -> Tuple[Dict[str, Any], bool, bool]:
        """Answer one raw request line; returns ``(response, close?, count?)``."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise RespdiError("request must be a JSON object")
        except (RespdiError, ValueError) as exc:
            return (
                {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                False,
                False,
            )

        op = request.get("op")
        tenant = str(request.get("tenant", DEFAULT_TENANT))
        if op == "stop":
            return {"ok": True, "op": "stop"}, True, False
        if op == "stats":
            return self._stats_response(), False, False

        ticket = None
        if self.admission is not None and op not in UNGATED_OPS:
            ticket = self.admission.admit(tenant)
            if not ticket:
                return ticket.rejection(), False, False
        start = time.perf_counter()
        try:
            if ticket is not None:
                with ticket:
                    response = handle_request(
                        self.service, request, cached=self.cached,
                        pcache=self.pcache,
                    )
            else:
                response = handle_request(
                    self.service, request, cached=self.cached,
                    pcache=self.pcache,
                )
        except (RespdiError, OSError, ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - start
        if op is not None and op not in UNGATED_OPS:
            self.latency.observe(f"kind.{op}", elapsed)
            self.latency.observe(f"tenant.{tenant}", elapsed)
        obs.inc("serve.requests")
        return response, False, True

    def _count_request(self) -> bool:
        """Count one served request; trip the stop latch at max_requests."""
        with self._count_lock:
            self.requests_served += 1
            if (
                self.max_requests is not None
                and self.requests_served >= self.max_requests
            ):
                # Latch only: closing sockets from a handler thread would
                # deadlock stop()'s joins, so just stop accepting work and
                # let wait()/serve_forever() run the actual shutdown.
                self._stopping.set()
                return True
        return False

    # -- introspection ---------------------------------------------------------

    def _stats_response(self) -> Dict[str, Any]:
        stats = self.service.stats()
        stats["server"] = {
            "connections_accepted": self.connections_accepted,
            "requests_served": self.requests_served,
        }
        stats["latency"] = self.latency.stats()
        if self.admission is not None:
            stats["admission"] = self.admission.stats()
        if self.pcache is not None:
            stats["pcache"] = self.pcache.stats()
        return {"ok": True, "op": "stats", "stats": stats}
