"""Scatter-gather queries over a sharded catalog, byte-identical to unsharded.

:class:`ShardedQueryService` is the read path for
:class:`~respdi.catalog.sharding.ShardedCatalogStore`: it pins a
**generation vector** — one committed generation per shard, each an
ordinary :class:`~respdi.service.service.Snapshot` — as a single
:class:`ShardVector`, fans each query across the shards, and merges the
ranked partials deterministically.  The result cache is keyed by the
*full* vector plus the query fingerprint, so a commit on any shard
invalidates exactly what it must and nothing else.

The load-bearing property, enforced by ``tests/test_sharded_differential.py``:
**scatter-gathered results are byte-identical to a single unsharded
store over the same tables.**  Each query kind earns that differently:

* *keyword* — TF-IDF scores depend on corpus-global document
  frequencies, so per-shard :class:`~respdi.discovery.keyword.CorpusStats`
  are merged at pin time and broadcast back; every shard scores its own
  documents under global IDF (the classic distributed-IR two-phase
  trick), making shard-local top-k lists globally comparable.
* *containment* — the LSH Ensemble's cardinality partitioning is a pure,
  insertion-order-free function of ``{domain: cardinality}``
  (:func:`~respdi.discovery.lshensemble.partition_max_map`), so the
  vector recomputes the exact **global** layout from per-shard
  signatures and each shard scores locally under it
  (:func:`~respdi.discovery.lshensemble.scatter_containment_hits`).
* *join* and *union* — per-candidate scores are shard-local facts
  (exact overlap; query-vs-candidate alignment), so partials are exact
  as-is.

In every kind the per-candidate score is exactly what the unsharded
index computes and the rank key is a **total** order (score, then
name), so the global top-k is contained in the union of per-shard
top-k lists and :func:`merge_ranked` — a plain sort of the concatenated
partials — reproduces the unsharded ranking no matter which shard
answered first (merge-order independence is property-tested).

``shard.gather`` fires before each merge; killing there is read-only by
construction, which the sharded crash matrix verifies.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from respdi import obs
from respdi.catalog.sharding import ShardedCatalogStore
from respdi.discovery.keyword import CorpusStats
from respdi.discovery.lshensemble import (
    partition_max_map,
    scatter_containment_hits,
)
from respdi.errors import EmptyInputError, SpecificationError
from respdi.faults.plan import fault_point
from respdi.parallel import ExecutionContext, map_chunked
from respdi.service.cache import QueryResultCache, is_hit, make_key
from respdi.service.queries import Query
from respdi.service.service import (
    Snapshot,
    _manifest_token,
    pin_snapshot,
)

PathLike = Union[str, Path]

#: Rank keys per query kind — total orders (score, then name parts), the
#: same keys the unsharded sub-indexes sort by.  Totality is what makes
#: :func:`merge_ranked` independent of shard completion order: no two
#: distinct results can compare equal (names are unique across shards).
RANK_KEYS: Dict[str, Callable[[Any], Tuple]] = {
    "keyword": lambda hit: (-hit.score, hit.table_name),
    "union": lambda cand: (-cand.score, cand.table_name),
    "join": lambda cand: (-cand.overlap, cand.table_name, cand.column_name),
    "containment": lambda item: (-item[1], repr(item[0])),
}


def merge_ranked(
    partials: Sequence[Sequence[Any]],
    kind: str,
    k: Optional[int] = None,
) -> List[Any]:
    """Merge per-shard ranked partials into one global ranking.

    A plain total-order sort of the concatenation: because each partial
    is its shard's top-*k* under the same key, the merged prefix equals
    the unsharded top-*k*.  Pure and order-insensitive by construction —
    the property test feeds it the same partials in every permutation.
    """
    merged = [item for partial in partials for item in partial]
    merged.sort(key=RANK_KEYS[kind])
    return merged if k is None else merged[:k]


class ShardVector:
    """A pinned generation vector plus the merged global query state.

    One immutable :class:`Snapshot` per shard, pinned together; the
    vector of their generations names one committed state per shard (the
    cache key component).  The cross-shard state every scatter needs —
    merged corpus statistics for keyword IDF, the global containment
    partition layout — is computed once here, at pin time, from the
    pinned snapshots only, so queries against one vector are mutually
    consistent even while writers commit on any shard.
    """

    __slots__ = (
        "snapshots",
        "generation",
        "names",
        "corpus_stats",
        "partition_max",
    )

    def __init__(self, snapshots: Sequence[Snapshot]) -> None:
        self.snapshots: Tuple[Snapshot, ...] = tuple(snapshots)
        self.generation: Tuple[int, ...] = tuple(
            int(snapshot.generation) for snapshot in self.snapshots
        )
        self.names: Tuple[str, ...] = tuple(
            name for snapshot in self.snapshots for name in snapshot.names
        )
        self.corpus_stats = CorpusStats.merge(
            [
                snapshot.index.keyword.corpus_stats()
                for snapshot in self.snapshots
            ]
        )
        cardinalities = {
            key: signature.cardinality
            for snapshot in self.snapshots
            for key, signature in snapshot.index.domain_signatures.items()
        }
        self.partition_max = (
            partition_max_map(
                cardinalities, self.snapshots[0].index.num_partitions
            )
            if cardinalities
            else {}
        )

    def entry_fingerprints(self) -> Dict[str, str]:
        """``{table name: content fingerprint}`` across all shards."""
        merged: Dict[str, str] = {}
        for snapshot in self.snapshots:
            merged.update(snapshot.entry_fingerprints())
        return merged


class _ShardScatterTask:
    """Run one query's shard-local partial (threads-backend task)."""

    __slots__ = ("query", "vector")

    def __init__(self, query: Query, vector: ShardVector):
        self.query = query
        self.vector = vector

    def __call__(self, snapshot: Snapshot) -> List[Any]:
        query, vector = self.query, self.vector
        if query.kind == "keyword":
            return snapshot.index.keyword.search(
                query.text, k=query.k, stats=vector.corpus_stats
            )
        if query.kind == "union":
            return snapshot.index.unionable_tables(query.table, k=query.k)
        if query.kind == "join":
            return snapshot.index.joinable_columns(
                list(query.values), k=query.k, min_overlap=query.min_overlap
            )
        if query.kind == "containment":
            # The query signature is signed per shard with the shard's
            # own hasher object: every shard's hasher is the same hash
            # family (fingerprint-pinned in SHARDS.json), so the bytes
            # are identical, while the per-object hasher_id keeps the
            # in-memory mixed-hasher guard intact.
            query_signature = snapshot.index.hasher.signature(
                list(query.values)
            )
            return scatter_containment_hits(
                snapshot.index.domain_signatures,
                query_signature,
                query.threshold,
                vector.partition_max,
                query_signature.values.shape[0],
            )
        raise SpecificationError(f"unsupported query kind {query.kind!r}")


def _eligible_snapshots(query: Query, vector: ShardVector) -> List[Snapshot]:
    """The shards that participate in *query*, after global validation.

    Validation mirrors the unsharded sub-indexes' checks — same
    exception types, same messages, same order — but over the union of
    shards, so an all-empty sharded catalog fails exactly like an empty
    unsharded one while a merely *partially* empty one skips its empty
    shards (which contribute nothing to any ranking).
    """
    if query.kind in ("keyword", "union"):
        if query.k < 1:
            raise SpecificationError("k must be >= 1")
        eligible = [s for s in vector.snapshots if s.names]
        if not eligible:
            raise EmptyInputError("no tables indexed")
        return eligible
    if query.kind == "join":
        if query.k < 1:
            raise SpecificationError("k must be >= 1")
        if query.min_overlap < 1:
            raise SpecificationError("min_overlap must be >= 1")
        if not set(query.values):
            raise EmptyInputError("query value set is empty")
        eligible = [
            s for s in vector.snapshots if s.index.joinability.num_columns
        ]
        if not eligible:
            raise EmptyInputError("no columns indexed")
        return eligible
    if query.kind == "containment":
        eligible = [s for s in vector.snapshots if s.index.domain_signatures]
        if not eligible:
            raise EmptyInputError("no tables registered")
        return eligible
    raise SpecificationError(f"unsupported query kind {query.kind!r}")


class _BatchQueryTask:
    """Run one query of a ``query_many`` batch against the pinned vector."""

    __slots__ = ("service", "vector", "cached")

    def __init__(
        self, service: "ShardedQueryService", vector: ShardVector, cached: bool
    ) -> None:
        self.service = service
        self.vector = vector
        self.cached = cached

    def __call__(self, query: Query) -> Any:
        return self.service._query_at(query, self.vector, self.cached)


class ShardedQueryService:
    """Scatter-gather :class:`~respdi.service.service.QueryService` sibling.

    Same surface (``snapshot``/``query``/``query_many``/``stats``, plus
    the ``_query_at`` hook the serve loop uses), same caching contract —
    but the snapshot is a :class:`ShardVector` and every miss fans out
    across shards and merges.  ``respdi-catalog query|serve`` pick this
    service automatically when the directory holds a ``SHARDS.json``.
    """

    def __init__(
        self,
        store: Union[ShardedCatalogStore, PathLike],
        cache_size: int = 256,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
        max_pin_retries: int = 16,
    ) -> None:
        if not isinstance(store, ShardedCatalogStore):
            store = ShardedCatalogStore.open(store)
        self.store = store
        self.cache = QueryResultCache(cache_size)
        self.max_pin_retries = int(max_pin_retries)
        #: Context for the scatter and ``query_many`` fan-outs.  Shards
        #: share the pinned in-memory vector, so threads is the useful
        #: pool; the default resolves like every other engine call.
        self.context = ExecutionContext.resolve(context, n_jobs)
        self._lock = threading.Lock()
        self._vector: Optional[ShardVector] = None
        self._tokens: Optional[Tuple] = None

    @property
    def directory(self) -> Path:
        return self.store.directory

    # -- snapshot management --------------------------------------------------

    def snapshot(self) -> ShardVector:
        """The current vector, re-pinned iff *some* shard has committed.

        Freshness is one manifest ``stat`` per shard.  On change, every
        shard is re-pinned and the merged global state rebuilt — commits
        are per shard, but the vector is pinned as a unit so a batch
        never mixes pre- and post-commit views of one shard.
        """
        tokens = tuple(
            _manifest_token(shard.directory) for shard in self.store.shards
        )
        with self._lock:
            if self._vector is not None and tokens == self._tokens:
                return self._vector
            vector = ShardVector(
                [
                    pin_snapshot(shard, self.max_pin_retries)
                    for shard in self.store.shards
                ]
            )
            self._vector = vector
            self._tokens = tokens
            self.cache.evict_stale_generations(vector.generation)
            obs.inc("service.shards.pinned")
            return vector

    def reload(self) -> Tuple[Optional[List[int]], List[int]]:
        """Re-pin the latest committed generation vector on demand.

        Returns ``(old vector, new vector)`` as lists (None when
        nothing was pinned yet) — the sharded face of
        :meth:`~respdi.service.service.QueryService.reload`, with the
        same drop-the-token semantics so every shard re-reads.
        """
        with self._lock:
            old = list(self._vector.generation) if self._vector else None
            self._vector = None
            self._tokens = None
        vector = self.snapshot()
        obs.inc("service.reloads")
        return old, list(vector.generation)

    def committed_generation(self) -> Optional[List[int]]:
        """The per-shard generations committed on disk right now."""
        from respdi.catalog.store import read_manifest
        from respdi.errors import RespdiError

        generations: List[int] = []
        for shard in self.store.shards:
            try:
                manifest = read_manifest(shard.directory)
            except RespdiError:
                return None
            generations.append(int(manifest.get("ensemble_generation", 0)))
        return generations

    # -- queries --------------------------------------------------------------

    def query(self, query: Query, cached: bool = True) -> Any:
        """Answer *query* against the current generation vector."""
        return self._query_at(query, self.snapshot(), cached)

    def _query_at(
        self, query: Query, vector: ShardVector, cached: bool
    ) -> Any:
        use_cache = cached and self.cache.enabled
        obs.inc("service.queries")
        with obs.trace(
            "service.shards.query", kind=query.kind, shards=len(vector.snapshots)
        ) as span:
            if use_cache:
                key = make_key(vector.generation, query.fingerprint)
                value = self.cache.get(key)
                if is_hit(value):
                    span.set_attribute("cache", "hit")
                    return value
                span.set_attribute("cache", "miss")
            result = self._scatter(query, vector)
            if use_cache:
                self.cache.put(key, result)
        return result

    def _scatter(self, query: Query, vector: ShardVector) -> Any:
        if query.kind == "match":
            # Matching is a pure function of the request's own table; no
            # shard holds any of its state, so scatter degenerates to a
            # single local evaluation (still cached under the vector).
            return query.run(None)
        eligible = _eligible_snapshots(query, vector)
        if query.kind == "containment" and not set(query.values):
            # Match the unsharded path: signing an empty query set fails
            # before any shard work is scheduled.
            raise EmptyInputError("cannot sign an empty set")
        partials = map_chunked(
            _ShardScatterTask(query, vector),
            eligible,
            context=self.context,
            label="service.shards.scatter",
        )
        fault_point(
            "shard.gather", kind=query.kind, shards=len(eligible)
        )
        return merge_ranked(partials, query.kind, getattr(query, "k", None))

    def query_many(
        self,
        queries: Sequence[Query],
        cached: bool = True,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> List[Any]:
        """Answer a batch of queries, all against **one** pinned vector."""
        queries = list(queries)
        if not queries:
            return []
        vector = self.snapshot()
        ctx = (
            ExecutionContext.resolve(context, n_jobs)
            if (context is not None or n_jobs is not None)
            else self.context
        )
        with obs.trace(
            "service.shards.query_many",
            queries=len(queries),
            shards=len(vector.snapshots),
        ):
            return map_chunked(
                _BatchQueryTask(self, vector, cached),
                queries,
                context=ctx,
                label="service.shards.query_many",
            )

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Cache and vector state as plain data (serve's ``stats`` op)."""
        with self._lock:
            generation = (
                list(self._vector.generation) if self._vector else None
            )
            entries = len(self._vector.names) if self._vector else None
        payload: Dict[str, Any] = {
            "directory": str(self.directory),
            "shards": self.store.num_shards,
            "generation": generation,
            "committed_generation": self.committed_generation(),
            "entries": entries,
        }
        payload.update(self.cache.stats())
        return payload
