"""respdi.service — the concurrent read path over a persisted catalog.

Where :mod:`respdi.catalog` made discovery state durable, this package
makes it *servable*: a long-lived :class:`QueryService` answers
keyword / union / join / containment queries from pinned
:class:`Snapshot` handles (readers see exactly one committed generation,
even mid-refresh), memoizes results in a bounded LRU keyed by
``(generation, query fingerprint)``, and fans batches out over
:mod:`respdi.parallel`.  ``respdi-catalog serve`` exposes the same
machinery as a JSON-lines request loop, and
``ResponsibleIntegrationPipeline.discover_sources(service=...)`` runs
pipeline discovery through it.

``respdi-catalog serve --port`` upgrades the loop to a multi-tenant
socket server (:class:`SocketQueryServer`): per-tenant token-bucket
quotas and a bounded inflight gate (:class:`AdmissionController`),
p50/p99 latency ledgers, and an optional crash-safe on-disk result
cache (:class:`PersistentResultCache`) that warm-starts a restarted
server with byte-identical responses.

Invariant the test suite enforces: a cached answer is byte-identical to
an uncached one, which is byte-identical to querying a cold
:class:`~respdi.discovery.lake_index.DataLakeIndex` over the same
tables.
"""

from respdi.service.admission import (
    AdmissionController,
    LatencyLedger,
    TokenBucket,
    parse_quota_specs,
)
from respdi.service.cache import QueryResultCache
from respdi.service.netserver import SocketQueryServer
from respdi.service.pcache import PersistentResultCache, open_pcache
from respdi.service.queries import (
    ContainmentQuery,
    JoinQuery,
    KeywordQuery,
    MatchQuery,
    Query,
    UnionQuery,
)
from respdi.service.server import build_query, handle_request, serve
from respdi.service.service import (
    QueryService,
    Snapshot,
    pin_snapshot,
    reset_shared_services,
    shared_service,
)
from respdi.service.sharded import (
    ShardedQueryService,
    ShardVector,
    merge_ranked,
)

__all__ = [
    "AdmissionController",
    "ContainmentQuery",
    "JoinQuery",
    "KeywordQuery",
    "LatencyLedger",
    "MatchQuery",
    "PersistentResultCache",
    "Query",
    "QueryResultCache",
    "QueryService",
    "ShardVector",
    "ShardedQueryService",
    "Snapshot",
    "SocketQueryServer",
    "TokenBucket",
    "UnionQuery",
    "build_query",
    "handle_request",
    "merge_ranked",
    "open_pcache",
    "parse_quota_specs",
    "pin_snapshot",
    "reset_shared_services",
    "serve",
    "shared_service",
]
