"""The concurrent read path: snapshot handles and the query service.

:class:`CatalogStore` gives writers an atomic commit protocol; this
module gives *readers* the complementary guarantee.  A
:class:`Snapshot` pins one committed manifest generation and eagerly
rehydrates every artifact it references, so the handle keeps answering
queries against exactly that ensemble/entry set even while a concurrent
writer commits refresh after refresh.  Pinning is an optimistic-read
loop: entry files are immutable once committed (their directory names
embed the content fingerprint) and every read re-verifies its manifest
checksum, so a pin either captures one internally consistent generation
or observes a mid-commit garbage collection as a checksum/missing-file
error and retries against the newer manifest — a torn snapshot is
unrepresentable.

:class:`QueryService` fronts a store with:

* automatic re-pinning — a cheap ``stat`` of ``MANIFEST.json`` detects
  a new commit; only then is the manifest re-read and a fresh snapshot
  pinned (``service.snapshot.pinned`` counts pins);
* a bounded LRU result cache keyed by ``(generation, fingerprint)``
  (:mod:`respdi.service.cache`), invalidated by construction when the
  generation advances (stale generations are evicted on re-pin);
* ``query_many`` — a batch API that pins one snapshot for the whole
  batch and fans the queries out over :mod:`respdi.parallel`.

Results served from the cache are the very objects the uncached path
computed, and the fingerprint key is exact — cached and uncached
answers are byte-identical, which the differential test suite enforces.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from respdi import obs
from respdi.catalog.store import CatalogStore, read_manifest
from respdi.discovery.lake_index import DataLakeIndex
from respdi.errors import (
    CatalogCorruptError,
    RespdiError,
    SnapshotContentionError,
)
from respdi.faults.plan import fault_point
from respdi.parallel import ExecutionContext, map_chunked
from respdi.service.cache import QueryResultCache, is_hit, make_key
from respdi.service.queries import Query

PathLike = Union[str, Path]

#: ``(st_mtime_ns, st_size, st_ino)`` of MANIFEST.json — changes iff a
#: writer committed (the manifest is only ever replaced by rename).
_ManifestToken = Tuple[int, int, int]


def _manifest_token(directory: Path) -> Optional[_ManifestToken]:
    try:
        stat = os.stat(directory / "MANIFEST.json")
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size, stat.st_ino)


class Snapshot:
    """A pinned, fully-rehydrated view of one catalog generation.

    Immutable once constructed: the index, manifest, and generation
    never change, whatever writers do to the directory afterwards.
    Concurrent reads through one snapshot are safe — queries only read
    the rehydrated artifacts (the lazily-built containment ensemble is
    assigned atomically and is deterministic, so a benign double build
    cannot change results).
    """

    __slots__ = ("generation", "manifest", "index", "names")

    def __init__(
        self, generation: int, manifest: dict, index: DataLakeIndex
    ) -> None:
        self.generation = generation
        self.manifest = manifest
        self.index = index
        self.names: Tuple[str, ...] = tuple(manifest["entries"])

    def entry_fingerprints(self) -> Dict[str, str]:
        """``{table name: content fingerprint}`` at this generation."""
        return {
            name: record["fingerprint"]
            for name, record in self.manifest["entries"].items()
        }

    def query(self, query: Query) -> Any:
        """Run *query* against this pinned generation (never cached)."""
        return query.run(self.index)


def pin_snapshot(
    store: CatalogStore, max_retries: int = 16
) -> Snapshot:
    """Pin the latest committed generation of *store* as a :class:`Snapshot`.

    Reads the manifest, then eagerly loads every referenced artifact
    through the store's checksum gate.  A concurrent writer that commits
    (and garbage-collects superseded entry files) mid-load surfaces as
    :class:`CatalogCorruptError`; the loop then restarts from the fresh
    manifest.  *max_retries* bounds the loop — exhausting it raises
    :class:`SnapshotContentionError`, never a half-loaded snapshot.
    """
    last_error: Optional[CatalogCorruptError] = None
    for _ in range(max_retries):
        manifest = read_manifest(store.directory)
        fault_point(
            "service.snapshot.pin",
            generation=int(manifest.get("ensemble_generation", 0)),
        )
        reader = store.at_manifest(manifest)
        try:
            index = reader.index()
        except CatalogCorruptError as exc:
            # A writer's commit+GC raced our reads: the manifest we hold
            # references files that were replaced underneath us.  The
            # *new* manifest is complete on disk — retry against it.
            last_error = exc
            continue
        obs.inc("service.snapshot.pinned")
        return Snapshot(reader.generation, manifest, index)
    raise SnapshotContentionError(
        f"could not pin a consistent snapshot of {store.directory} in "
        f"{max_retries} attempts (last error: {last_error})"
    )


class _BatchQueryTask:
    """Run one query of a ``query_many`` batch (threads-backend task)."""

    __slots__ = ("service", "snapshot", "cached")

    def __init__(
        self, service: "QueryService", snapshot: Snapshot, cached: bool
    ) -> None:
        self.service = service
        self.snapshot = snapshot
        self.cached = cached

    def __call__(self, query: Query) -> Any:
        return self.service._query_at(query, self.snapshot, self.cached)


class QueryService:
    """A long-lived, cache-accelerated front-end over one catalog.

    One service object serves many queries (and many threads): it opens
    the store once, pins a snapshot lazily, re-pins only when a commit
    moves the manifest, and memoizes results per generation.  The unit
    of isolation is the snapshot — every individual query runs against
    exactly one generation, and :meth:`query_many` runs its whole batch
    against one.
    """

    def __init__(
        self,
        store: Union[CatalogStore, PathLike],
        cache_size: int = 256,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
        max_pin_retries: int = 16,
    ) -> None:
        if not isinstance(store, CatalogStore):
            store = CatalogStore.open(store)
        self.store = store
        self.cache = QueryResultCache(cache_size)
        self.max_pin_retries = int(max_pin_retries)
        #: Context for ``query_many`` fan-out.  Queries share the pinned
        #: in-memory snapshot, so the threads backend is the useful pool
        #: here; an explicit serial context keeps batches single-threaded.
        self.context = ExecutionContext.resolve(context, n_jobs)
        self._lock = threading.Lock()
        self._snapshot: Optional[Snapshot] = None
        self._token: Optional[_ManifestToken] = None

    @property
    def directory(self) -> Path:
        return self.store.directory

    # -- snapshot management --------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The current snapshot, re-pinned iff a writer has committed.

        Freshness check is one ``stat`` of ``MANIFEST.json`` (the
        manifest is only replaced by rename, so its identity changes
        with every commit); nothing is re-read, re-verified, or
        re-sketched when the catalog is unchanged.
        """
        token = _manifest_token(self.directory)
        with self._lock:
            if self._snapshot is not None and token == self._token:
                return self._snapshot
            snapshot = pin_snapshot(self.store, self.max_pin_retries)
            # Token taken *before* the pin: if a commit lands between the
            # stat and the pin, the pinned snapshot is newer than the
            # token says and the next call simply re-pins — conservative,
            # never stale.
            self._snapshot = snapshot
            self._token = token
            self.cache.evict_stale_generations(snapshot.generation)
            return snapshot

    def reload(self) -> Tuple[Optional[int], int]:
        """Re-pin the latest committed generation on demand.

        Returns ``(old generation, new generation)`` — ``old`` is None
        when nothing was pinned yet.  The freshness token is dropped
        first, so the next :meth:`snapshot` call unconditionally
        re-reads the manifest even if the token would have matched:
        this is the serve loop's ``reload`` op and the ingest daemon's
        auto-re-pin hook, both of which want "pick up whatever is
        committed *now*", not "trust the stat cache".
        """
        with self._lock:
            old = self._snapshot.generation if self._snapshot else None
            self._snapshot = None
            self._token = None
        snapshot = self.snapshot()
        obs.inc("service.reloads")
        return old, snapshot.generation

    def committed_generation(self) -> Optional[int]:
        """The generation committed on disk right now (manifest read only).

        Independent of what this service has pinned — the cheap poll a
        daemon-health check wants.  None when the directory no longer
        holds a readable manifest.
        """
        try:
            manifest = read_manifest(self.directory)
        except RespdiError:
            return None
        return int(manifest.get("ensemble_generation", 0))

    # -- queries --------------------------------------------------------------

    def query(self, query: Query, cached: bool = True) -> Any:
        """Answer *query* against the current generation.

        With *cached* (and a non-zero cache size), the result is served
        from — or inserted into — the LRU under the snapshot's
        generation; either way the returned value is byte-identical to
        an uncached run against the same generation.
        """
        return self._query_at(query, self.snapshot(), cached)

    def _query_at(self, query: Query, snapshot: Snapshot, cached: bool) -> Any:
        use_cache = cached and self.cache.enabled
        obs.inc("service.queries")
        with obs.trace(
            "service.query", kind=query.kind, generation=snapshot.generation
        ) as span:
            if use_cache:
                key = make_key(snapshot.generation, query.fingerprint)
                value = self.cache.get(key)
                if is_hit(value):
                    span.set_attribute("cache", "hit")
                    return value
                span.set_attribute("cache", "miss")
            result = snapshot.query(query)
            if use_cache:
                self.cache.put(key, result)
        return result

    def query_many(
        self,
        queries: Sequence[Query],
        cached: bool = True,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> List[Any]:
        """Answer a batch of queries, all against **one** snapshot.

        The batch pins a single generation up front (so its results are
        mutually consistent even under a concurrent writer) and fans out
        over :mod:`respdi.parallel` under the service's context —
        ordered reduction keeps results aligned with *queries*.  Cache
        hits and misses interleave freely; every miss is computed
        against the shared pinned index.
        """
        queries = list(queries)
        if not queries:
            return []
        snapshot = self.snapshot()
        ctx = (
            ExecutionContext.resolve(context, n_jobs)
            if (context is not None or n_jobs is not None)
            else self.context
        )
        with obs.trace(
            "service.query_many",
            queries=len(queries),
            generation=snapshot.generation,
        ):
            return map_chunked(
                _BatchQueryTask(self, snapshot, cached),
                queries,
                context=ctx,
                label="service.query_many",
            )

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Cache and snapshot state as plain data (serve's ``stats`` op)."""
        with self._lock:
            generation = (
                self._snapshot.generation if self._snapshot else None
            )
            entries = len(self._snapshot.names) if self._snapshot else None
        payload: Dict[str, Any] = {
            "directory": str(self.directory),
            "generation": generation,
            "committed_generation": self.committed_generation(),
            "entries": entries,
        }
        payload.update(self.cache.stats())
        return payload


# -- the shared per-directory registry ----------------------------------------
#
# `respdi-catalog query` is an in-process API as much as a CLI (tests and
# embedding programs call `main()` directly).  Routing every invocation
# through one shared QueryService per directory is what turns the second
# query from "re-open, re-verify, re-sketch" into "stat the manifest,
# serve from the pinned snapshot".

_SHARED: Dict[str, Any] = {}
_SHARED_LOCK = threading.Lock()


def shared_service(directory: PathLike, cache_size: int = 256) -> Any:
    """The process-wide query service for *directory*.

    Created on first use (one store open), then reused for the life of
    the process; staleness is handled by the service's own
    manifest-token check, so a reused service always answers from the
    latest committed generation.  A directory holding a sharded catalog
    (``SHARDS.json``) gets a
    :class:`~respdi.service.sharded.ShardedQueryService` — same surface,
    scatter-gather underneath — so CLI query/serve are shard-transparent.
    """
    key = str(Path(directory).resolve())
    with _SHARED_LOCK:
        service = _SHARED.get(key)
        if service is None:
            from respdi.catalog.sharding import is_sharded

            if is_sharded(directory):
                from respdi.service.sharded import ShardedQueryService

                service = ShardedQueryService(directory, cache_size=cache_size)
            else:
                service = QueryService(directory, cache_size=cache_size)
            _SHARED[key] = service
        return service


def reset_shared_services() -> None:
    """Drop every shared service (tests; never required for correctness)."""
    with _SHARED_LOCK:
        _SHARED.clear()
