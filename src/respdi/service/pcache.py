"""A crash-safe, checksum-gated persistent result cache (the sidecar tier).

The in-memory :class:`~respdi.service.cache.QueryResultCache` dies with
its process; a server restart pays every query again.  This module adds
the deliberate persistence the PR 5 crash matrix proved was *absent*: a
generation-keyed on-disk sidecar of **rendered** results, so a warm
restart answers repeated queries without recomputing — and does it under
the same durability discipline as the catalog itself.

Why rendered results (plain JSON data from :meth:`Query.render`), not
pickled result objects: the serve loop's response bytes are already a
deterministic function of ``(generation, query fingerprint)``, JSON
round-trips losslessly (document order is insertion order, float repr is
shortest-round-trip), and a textual payload can be checksum-gated
exactly like a manifest.  A persistent hit therefore yields the *same
response line* the uncached path would produce — the serve differential
suite asserts byte identity across {no cache, memory cache, persistent
cache} × {plain, sharded} × {stdin, socket}, including across a restart.

Crash-safety contract (machine-checked by ``tests/test_pcache_crash.py``):

* every entry file is written via :func:`respdi._fsutil.atomic_write_text`
  (tmp + fsync + rename), so a kill at any step leaves either no entry
  or a complete one — never a torn file that parses;
* every read re-derives the payload checksum; a mismatch (bit rot,
  manual corruption, a torn write that somehow survived) is **discarded
  and deleted**, counted on ``service.pcache.corrupt``, and treated as a
  miss — a corrupt entry is rebuilt, never served;
* keys embed the catalog generation (an int, or the per-shard vector),
  so entries from superseded generations can never satisfy a lookup and
  are swept once the service observes the generation advance.

Fault points ``service.pcache.lookup`` / ``.store`` / ``.sweep`` expose
the tier to the kill-at-every-step crash matrix.
"""

from __future__ import annotations

import json
import threading
from hashlib import blake2b
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from respdi import obs
from respdi._fsutil import atomic_write_text
from respdi.errors import SpecificationError
from respdi.faults.plan import fault_point
from respdi.service.cache import _ABSENT, Generation

PathLike = Union[str, Path]

#: On-disk entry format version; bump on incompatible changes (readers
#: discard entries from other versions as stale, not corrupt).
PCACHE_SCHEMA_VERSION = 1

#: Default sidecar directory name, created next to (or inside) the
#: catalog it accelerates.
PCACHE_DIRNAME = "pcache.d"


def _normalize_generation(generation: Generation) -> Generation:
    """Ints stay ints; sequences become tuples of ints (the shard vector)."""
    if isinstance(generation, (tuple, list)):
        return tuple(int(part) for part in generation)
    return int(generation)


def _generation_jsonable(generation: Generation) -> Any:
    return list(generation) if isinstance(generation, tuple) else generation


def _payload_checksum(payload: Any) -> str:
    """blake2b over the canonical (sorted, compact) JSON of *payload*."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def entry_filename(generation: Generation, fingerprint: str) -> str:
    """The sidecar filename for one ``(generation, fingerprint)`` key.

    A digest of the full key, so filenames stay short and filesystem-safe
    whatever the generation shape; the generation is also stored *inside*
    the entry, which is what sweeps and audits read.
    """
    generation = _normalize_generation(generation)
    digest = blake2b(digest_size=16)
    digest.update(repr(generation).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(fingerprint.encode("utf-8"))
    return f"{digest.hexdigest()}.json"


class PersistentResultCache:
    """Generation-keyed rendered-result store under one sidecar directory.

    Thread-safe (one lock around directory mutations and counters) and
    bounded: past *max_entries* files, the oldest entries (by mtime) are
    evicted on store.  All counters are mirrored on :mod:`respdi.obs`
    under ``service.pcache.*`` when instrumentation is enabled, and kept
    locally so ``stats`` works without it.
    """

    def __init__(self, directory: PathLike, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise SpecificationError("pcache max_entries must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt_discarded = 0
        self.swept = 0
        #: Last generation observed via :meth:`observe_generation`; sweeps
        #: fire only when it advances.
        self._seen_generation: Optional[Generation] = None

    # -- read path -------------------------------------------------------------

    def get(self, generation: Generation, fingerprint: str) -> Any:
        """The persisted payload for the key, or the miss sentinel.

        Check with :func:`respdi.service.cache.is_hit`.  A present but
        unreadable/corrupt entry is deleted, counted, and reported as a
        miss — the caller recomputes and overwrites it.
        """
        generation = _normalize_generation(generation)
        fault_point("service.pcache.lookup", generation=generation)
        path = self.directory / entry_filename(generation, fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            with self._lock:
                self.misses += 1
            obs.inc("service.pcache.miss")
            return _ABSENT
        payload = self._validate(path, raw, generation, fingerprint)
        if payload is _ABSENT:
            with self._lock:
                self.misses += 1
            obs.inc("service.pcache.miss")
            return _ABSENT
        with self._lock:
            self.hits += 1
        obs.inc("service.pcache.hit")
        return payload

    def _validate(
        self, path: Path, raw: str, generation: Generation, fingerprint: str
    ) -> Any:
        """Parse + checksum-gate one entry; discard (and delete) failures."""
        try:
            entry = json.loads(raw)
            if entry.get("schema_version") != PCACHE_SCHEMA_VERSION:
                # A foreign format version is stale, not corrupt: drop it
                # silently and recompute.
                self._discard(path, corrupt=False)
                return _ABSENT
            stored_generation = _normalize_generation(entry["generation"])
            payload = entry["payload"]
            checksum = entry["checksum"]
        except (ValueError, KeyError, TypeError):
            self._discard(path, corrupt=True)
            return _ABSENT
        if (
            stored_generation != generation
            or entry.get("fingerprint") != fingerprint
            or _payload_checksum(payload) != checksum
        ):
            self._discard(path, corrupt=True)
            return _ABSENT
        return payload

    def _discard(self, path: Path, corrupt: bool) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        if corrupt:
            with self._lock:
                self.corrupt_discarded += 1
            obs.inc("service.pcache.corrupt")

    # -- write path ------------------------------------------------------------

    def put(
        self,
        generation: Generation,
        fingerprint: str,
        payload: Any,
        op: Optional[str] = None,
    ) -> None:
        """Persist *payload* under the key, atomically, then bound size.

        *payload* must be JSON-serializable (rendered results are).  The
        entry embeds its own checksum so a later reader can gate on it
        without any external metadata.
        """
        generation = _normalize_generation(generation)
        fault_point("service.pcache.store", generation=generation)
        entry = {
            "schema_version": PCACHE_SCHEMA_VERSION,
            "generation": _generation_jsonable(generation),
            "fingerprint": fingerprint,
            "op": op,
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        path = self.directory / entry_filename(generation, fingerprint)
        # NOT sort_keys: sorting would reorder keys inside the payload
        # and break byte identity between a persistent hit and the
        # freshly rendered response (the checksum canonicalizes on its
        # own, so gating never depends on this ordering).
        atomic_write_text(path, json.dumps(entry))
        with self._lock:
            self.stores += 1
        obs.inc("service.pcache.store")
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Drop oldest-mtime entries past ``max_entries`` (LRU-by-write)."""
        with self._lock:
            files = self._entry_files()
            excess = len(files) - self.max_entries
            if excess <= 0:
                return
            files.sort(key=lambda p: (p.stat().st_mtime_ns, p.name))
            evicted = 0
            for path in files[:excess]:
                try:
                    path.unlink()
                    evicted += 1
                except OSError:
                    pass
            self.evictions += evicted
        if evicted:
            obs.inc("service.pcache.evict", evicted)

    # -- maintenance -----------------------------------------------------------

    def observe_generation(self, generation: Generation) -> int:
        """Sweep stale entries iff *generation* advanced past the last seen.

        The serve path calls this per request; the sweep itself only runs
        on an actual generation change, so steady-state requests cost one
        comparison.  Returns the number of entries swept.
        """
        generation = _normalize_generation(generation)
        with self._lock:
            if self._seen_generation == generation:
                return 0
            self._seen_generation = generation
        return self.sweep_stale(generation)

    def sweep_stale(self, current_generation: Generation) -> int:
        """Delete every entry persisted under an older generation.

        Mirrors :meth:`QueryResultCache.evict_stale_generations`: per-key
        generations only advance, so ``<`` against the same shape means
        superseded.  Entries of a *different* shape (int vs. vector —
        a catalog resharded underneath its sidecar) are swept too: their
        keys can never be looked up again.
        """
        current_generation = _normalize_generation(current_generation)
        fault_point("service.pcache.sweep", generation=current_generation)
        swept = 0
        for path in self._entry_files():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                stored = _normalize_generation(entry["generation"])
            except (OSError, ValueError, KeyError, TypeError):
                self._discard(path, corrupt=True)
                continue
            if type(stored) is not type(current_generation):
                stale = True  # int vs. vector: a resharded catalog
            elif isinstance(stored, tuple) and len(stored) != len(
                current_generation
            ):
                stale = True  # different shard count: same story
            else:
                stale = stored < current_generation
            if stale:
                try:
                    path.unlink()
                    swept += 1
                except OSError:
                    pass
        if swept:
            with self._lock:
                self.swept += swept
            obs.inc("service.pcache.swept", swept)
        return swept

    def verify(self) -> List[str]:
        """Checksum-audit every entry; returns problem descriptions.

        Unlike the read path (which silently discards and recomputes),
        ``verify`` *reports* — it is the CI smoke gate's view of the
        sidecar.  Nothing is deleted.
        """
        problems: List[str] = []
        for path in self._entry_files():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                problems.append(f"{path.name}: unreadable ({exc})")
                continue
            try:
                if _payload_checksum(entry["payload"]) != entry["checksum"]:
                    problems.append(f"{path.name}: checksum mismatch")
            except (KeyError, TypeError):
                problems.append(f"{path.name}: malformed entry")
        return problems

    def clear(self) -> None:
        with self._lock:
            for path in self._entry_files():
                try:
                    path.unlink()
                except OSError:
                    pass

    def _entry_files(self) -> List[Path]:
        try:
            return [
                path
                for path in self.directory.iterdir()
                if path.suffix == ".json" and not path.name.startswith(".")
            ]
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self._entry_files())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self.directory),
                "size": len(self._entry_files()),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "corrupt_discarded": self.corrupt_discarded,
                "swept": self.swept,
            }


def sidecar_directory(catalog_directory: PathLike) -> Path:
    """The default sidecar location for a catalog: ``<catalog>/pcache.d``.

    Inside the catalog directory so one path names the whole serving
    state, but invisible to the catalog itself: the store's manifest
    never references it, ``verify`` never reads it, and the orphan-tmp
    sweep does not look there.
    """
    return Path(catalog_directory) / PCACHE_DIRNAME


def open_pcache(
    catalog_directory: PathLike,
    directory: Optional[PathLike] = None,
    max_entries: int = 4096,
) -> PersistentResultCache:
    """A :class:`PersistentResultCache` for *catalog_directory*.

    *directory* overrides the default sidecar path (e.g. to put the
    cache on faster or more expendable storage than the catalog).
    """
    if directory is None:
        directory = sidecar_directory(catalog_directory)
    return PersistentResultCache(directory, max_entries=max_entries)
