"""A bounded, thread-safe LRU result cache keyed by catalog generation.

Keys are ``(generation, query fingerprint)`` pairs: the generation names
one immutable committed catalog state (every commit advances it), the
fingerprint names one query up to byte identity of its inputs.  Because
a key can only ever map to one value — the deterministic result of that
query against that state — a hit is always byte-identical to recomputing,
and invalidation reduces to dropping keys whose generation is no longer
current (:meth:`QueryResultCache.evict_stale_generations`).

Counters (``service.cache.hit`` / ``.miss`` / ``.evict``) land on
:mod:`respdi.obs` when enabled and are mirrored locally so the serve
loop can report stats without enabling global instrumentation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Tuple, Union

from respdi import obs
from respdi.errors import SpecificationError
from respdi.faults.plan import fault_point

#: ``(generation, fingerprint)`` — the generation component is an ``int``
#: for a single store and a tuple of ints (one per shard, the generation
#: *vector*) for a sharded one.  Both compare with ``<`` against their
#: own kind, which is all eviction needs: per-shard generations only
#: ever advance, so an older vector is lexicographically below a newer
#: one exactly as an older int is below a newer int.
Generation = Union[int, Tuple[int, ...]]
CacheKey = Tuple[Generation, str]

#: Sentinel distinguishing "no cached value" from a cached ``None``.
_ABSENT = object()


class QueryResultCache:
    """LRU over ``(generation, fingerprint) -> result``.

    ``maxsize=0`` disables the cache entirely: lookups miss, stores are
    dropped, and no counters move — the uncached path with zero
    branches at the call sites.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise SpecificationError("cache maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Every accounted :meth:`get` call; ``hits + misses == lookups``
        #: is invariant under any thread interleaving (all three move
        #: together under the cache lock) — property-tested.
        self.lookups = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Any:
        """The cached result for *key*, or the module sentinel on a miss.

        Check with :func:`is_hit` rather than truthiness: an empty
        result list is a legitimate cached value.
        """
        if not self.enabled:
            return _ABSENT
        fault_point("service.cache.lookup", generation=key[0])
        with self._lock:
            self.lookups += 1
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is _ABSENT:
            obs.inc("service.cache.miss")
        else:
            obs.inc("service.cache.hit")
        return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert *value* under *key*, evicting LRU entries past maxsize."""
        if not self.enabled:
            return
        fault_point("service.cache.store", generation=key[0])
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            obs.inc("service.cache.evict", evicted)

    def evict_stale_generations(self, current_generation: Generation) -> int:
        """Drop every entry keyed under a generation older than *current*.

        Called when the service observes the catalog's generation advance:
        results computed against superseded manifests can never be served
        again (lookups always key on the current generation), so keeping
        them would only displace live entries.  Returns the eviction count.
        """
        if not self.enabled:
            return 0
        with self._lock:
            stale = [
                key for key in self._entries if key[0] < current_generation
            ]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
        if stale:
            obs.inc("service.cache.evict", len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[CacheKey, ...]:
        """A point-in-time copy of the cached keys (for tests/stats)."""
        with self._lock:
            return tuple(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def is_hit(value: Any) -> bool:
    """True when :meth:`QueryResultCache.get` returned a cached value."""
    return value is not _ABSENT


def make_key(generation: Generation, fingerprint: str) -> CacheKey:
    """The canonical cache key for a query against one generation.

    *generation* is a plain int for a single store or a per-shard tuple
    for a sharded one (the generation vector pins one committed state
    per shard, so the full vector — not any scalar of it — names the
    catalog state a result was computed against).
    """
    if isinstance(generation, (tuple, list)):
        return (tuple(int(part) for part in generation), fingerprint)
    return (int(generation), fingerprint)
