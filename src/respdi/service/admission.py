"""Admission control for the serve path: quotas, backpressure, latency.

A serve loop that accepts every request collapses under overload — the
irresponsible failure mode for infrastructure meant to face millions of
users: *every* tenant's latency explodes because *one* tenant misbehaves.
This module makes overload a structured, per-tenant outcome instead:

* :class:`TokenBucket` — the classic rate limiter: a bucket holding up
  to ``burst`` tokens, refilled continuously at ``rate`` tokens/second.
  A request takes one token or is told exactly how long until one
  exists (``retry_after``), so clients can back off precisely instead
  of hammering.
* :class:`AdmissionController` — per-tenant buckets plus one global
  bounded **inflight gate**: even fully within-quota traffic is capped
  at ``max_inflight`` concurrently executing requests, so a burst of
  expensive queries degrades into fast, honest rejections rather than
  an unbounded thread pile-up.  Rejected requests get
  ``{"error": "overloaded", "retry_after_ms": ...}`` — load *shedding*,
  not load collapsing.
* :class:`LatencyLedger` — bounded per-key latency samples with
  p50/p99, kept locally (the ``stats`` op works without global
  instrumentation) and mirrored to :mod:`respdi.obs` histograms.

The accounting invariant the stress suite enforces per tenant and
globally: ``admitted + rejected == received`` — no request is ever
silently dropped or double-counted, whatever the interleaving.

Time is injectable (``clock=``) so quota behavior is deterministic
under test; production uses ``time.monotonic``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from respdi import obs
from respdi.errors import SpecificationError

#: Tenant name used when a request carries no ``tenant`` field.
DEFAULT_TENANT = "default"


class TokenBucket:
    """A continuously-refilled token bucket (thread-safe).

    Holds at most *burst* tokens, gaining *rate* per second.  ``rate``
    may be ``None`` for an unlimited bucket (always admits) — the
    default tenant policy unless the operator configures quotas.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise SpecificationError("token bucket rate must be > 0 (or None)")
        if burst < 1:
            raise SpecificationError("token bucket burst must be >= 1")
        self.rate = float(rate) if rate is not None else None
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self) -> Tuple[bool, float]:
        """Take one token if available.

        Returns ``(True, 0.0)`` on success, else ``(False, seconds)``
        where *seconds* is the exact wait until one token will exist —
        the honest ``retry_after`` a shed response carries.
        """
        if self.rate is None:
            return True, 0.0
        now = self._clock()
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now) — introspection only."""
        if self.rate is None:
            return math.inf
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class Admission:
    """The outcome of one admission decision.

    Truthy iff admitted.  An admitted ticket is a context manager that
    releases its inflight slot on exit — the handler wraps the whole
    request in ``with ticket:`` so slots can never leak, even when the
    query raises.
    """

    __slots__ = ("admitted", "tenant", "reason", "retry_after", "_release")

    def __init__(
        self,
        admitted: bool,
        tenant: str,
        reason: Optional[str] = None,
        retry_after: float = 0.0,
        release: Optional[Callable[[], None]] = None,
    ) -> None:
        self.admitted = admitted
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after
        self._release = release

    def __bool__(self) -> bool:
        return self.admitted

    @property
    def retry_after_ms(self) -> int:
        """``retry_after`` in whole milliseconds, never 0 for a rejection.

        A 0ms hint would tell clients "retry immediately" — exactly the
        stampede backpressure exists to prevent — so rejections round up
        to at least 1ms.
        """
        return max(1, math.ceil(self.retry_after * 1000.0))

    def rejection(self) -> Dict[str, Any]:
        """The structured shed response for a rejected request."""
        return {
            "ok": False,
            "error": "overloaded",
            "tenant": self.tenant,
            "reason": self.reason,
            "retry_after_ms": self.retry_after_ms,
        }

    def __enter__(self) -> "Admission":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._release is not None:
            self._release()
            self._release = None
        return False


class AdmissionController:
    """Per-tenant token buckets behind one bounded inflight gate.

    *quotas* maps tenant name to ``(rate, burst)``; tenants not listed
    get *default_rate*/*default_burst* (``default_rate=None`` means
    unlimited — only the inflight gate applies).  ``max_inflight``
    bounds concurrently admitted requests across **all** tenants; when
    full, within-quota requests are shed with ``reason="inflight"`` and
    a small constant retry hint (slots turn over at service rate, which
    the controller cannot predict per-request).
    """

    def __init__(
        self,
        max_inflight: int = 64,
        default_rate: Optional[float] = None,
        default_burst: float = 8.0,
        quotas: Optional[Dict[str, Tuple[Optional[float], float]]] = None,
        inflight_retry_after: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise SpecificationError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self.default_rate = default_rate
        self.default_burst = float(default_burst)
        self.inflight_retry_after = float(inflight_retry_after)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        for tenant, (rate, burst) in (quotas or {}).items():
            self._buckets[tenant] = TokenBucket(rate, burst, clock)
        self._configured = set(self._buckets)
        self._inflight = 0
        self.peak_inflight = 0
        #: Per-tenant ledgers: every received request lands in exactly
        #: one of admitted / rejected_quota / rejected_inflight.
        self.received: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected_quota: Dict[str, int] = {}
        self.rejected_inflight: Dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.default_rate, self.default_burst, self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str = DEFAULT_TENANT) -> Admission:
        """Decide one request: quota first, then the inflight gate.

        Quota-before-gate means an over-quota tenant cannot consume
        inflight capacity at all — its rejections are pure bookkeeping,
        leaving the shared slots to tenants within their quotas.
        """
        with self._lock:
            self.received[tenant] = self.received.get(tenant, 0) + 1
            bucket = self._bucket(tenant)
        admitted, retry_after = bucket.try_take()
        if not admitted:
            with self._lock:
                self.rejected_quota[tenant] = (
                    self.rejected_quota.get(tenant, 0) + 1
                )
            obs.inc("serve.rejected.quota")
            obs.inc(f"serve.tenant.{tenant}.rejected")
            return Admission(
                False, tenant, reason="quota", retry_after=retry_after
            )
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.rejected_inflight[tenant] = (
                    self.rejected_inflight.get(tenant, 0) + 1
                )
                full = True
            else:
                self._inflight += 1
                self.peak_inflight = max(self.peak_inflight, self._inflight)
                self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
                full = False
        if full:
            obs.inc("serve.rejected.inflight")
            obs.inc(f"serve.tenant.{tenant}.rejected")
            return Admission(
                False,
                tenant,
                reason="inflight",
                retry_after=self.inflight_retry_after,
            )
        obs.inc("serve.admitted")
        obs.inc(f"serve.tenant.{tenant}.admitted")
        return Admission(True, tenant, release=self._release)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def ledger(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant counters; ``admitted + rejected == received`` holds."""
        with self._lock:
            tenants = set(self.received)
            out = {}
            for tenant in sorted(tenants):
                out[tenant] = {
                    "received": self.received.get(tenant, 0),
                    "admitted": self.admitted.get(tenant, 0),
                    "rejected_quota": self.rejected_quota.get(tenant, 0),
                    "rejected_inflight": self.rejected_inflight.get(tenant, 0),
                }
            return out

    def stats(self) -> Dict[str, Any]:
        ledger = self.ledger()
        totals = {
            key: sum(row[key] for row in ledger.values())
            for key in (
                "received",
                "admitted",
                "rejected_quota",
                "rejected_inflight",
            )
        }
        with self._lock:
            inflight = self._inflight
        return {
            "max_inflight": self.max_inflight,
            "inflight": inflight,
            "peak_inflight": self.peak_inflight,
            "totals": totals,
            "tenants": ledger,
        }


def parse_quota_specs(
    specs: List[str],
) -> Dict[str, Tuple[Optional[float], float]]:
    """Parse CLI ``TENANT=RATE[:BURST]`` specs into a quota mapping.

    ``RATE`` is requests/second; ``BURST`` defaults to ``max(1, RATE)``
    so a freshly-started tenant can spend about one second of its rate
    instantly.
    """
    quotas: Dict[str, Tuple[Optional[float], float]] = {}
    for spec in specs:
        tenant, sep, policy = spec.partition("=")
        if not sep or not tenant:
            raise SpecificationError(
                f"quota spec {spec!r} is not TENANT=RATE[:BURST]"
            )
        rate_part, _, burst_part = policy.partition(":")
        try:
            rate = float(rate_part)
            burst = float(burst_part) if burst_part else max(1.0, rate)
        except ValueError:
            raise SpecificationError(
                f"quota spec {spec!r} has a non-numeric rate or burst"
            ) from None
        quotas[tenant] = (rate, burst)
    return quotas


class LatencyLedger:
    """Bounded per-key latency samples with percentile summaries.

    Keeps the most recent *window* observations per key (a ring buffer:
    a long-running server reports *current* latency, not its lifetime
    average) and computes percentiles by the nearest-rank method.  Each
    observation is also mirrored to the global obs registry as
    ``serve.latency.<key>.seconds`` so ``respdi-audit --metrics`` can
    render the same numbers.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise SpecificationError("latency window must be >= 1")
        self.window = int(window)
        self._lock = threading.Lock()
        self._samples: Dict[str, List[float]] = {}
        self._next: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    def observe(self, key: str, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            samples = self._samples.get(key)
            if samples is None:
                samples = self._samples[key] = []
                self._next[key] = 0
                self._counts[key] = 0
            if len(samples) < self.window:
                samples.append(seconds)
            else:
                samples[self._next[key]] = seconds
                self._next[key] = (self._next[key] + 1) % self.window
            self._counts[key] += 1
        obs.observe(f"serve.latency.{key}.seconds", seconds)

    def percentile(self, key: str, q: float) -> float:
        """Nearest-rank percentile of the key's current window (0 if empty)."""
        with self._lock:
            samples = sorted(self._samples.get(key, ()))
        if not samples:
            return 0.0
        rank = max(1, math.ceil((q / 100.0) * len(samples)))
        return samples[rank - 1]

    def summary(self, key: str) -> Dict[str, float]:
        with self._lock:
            samples = sorted(self._samples.get(key, ()))
            count = self._counts.get(key, 0)
        if not samples:
            return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0}

        def rank(q: float) -> float:
            return samples[max(1, math.ceil((q / 100.0) * len(samples))) - 1]

        return {
            "count": count,
            "p50": rank(50.0),
            "p99": rank(99.0),
            "max": samples[-1],
        }

    def stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            keys = sorted(self._samples)
        return {key: self.summary(key) for key in keys}
