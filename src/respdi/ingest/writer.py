"""The background refresh writer: one change-set in, committed state out.

A :class:`RefreshWriter` turns a
:class:`~respdi.ingest.watcher.ChangeSet` into catalog commits through
the store's own mutation surface — additions via
:meth:`~respdi.catalog.store.CatalogStore.add_tables` (one commit),
content changes via
:meth:`~respdi.catalog.store.CatalogStore.refresh_many` (one commit;
the fingerprint short-circuit makes re-delivered unchanged tables
free), removals via
:meth:`~respdi.catalog.store.CatalogStore.remove_table`.  The writer
adds no commit protocol of its own: every durability and crash
guarantee is inherited from the store, which is exactly why the ingest
crash matrix composes from the catalog one.

Shard-awareness is structural, not special-cased: both
:class:`~respdi.catalog.store.CatalogStore` and
:class:`~respdi.catalog.sharding.ShardedCatalogStore` expose the same
mutation surface, so the writer holds whichever
:func:`~respdi.catalog.sharding.open_catalog` returned and sharded
change-sets fan out per shard under per-shard locks automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from respdi import obs
from respdi.catalog.sharding import ShardedCatalogStore
from respdi.catalog.store import CatalogStore
from respdi.faults.plan import fault_point
from respdi.ingest.watcher import ChangeSet
from respdi.parallel import ExecutionContext

Store = Union[CatalogStore, ShardedCatalogStore]


def generation_of(store: Store) -> Union[int, Tuple[int, ...]]:
    """The store's committed generation: an int, or a per-shard vector."""
    if isinstance(store, ShardedCatalogStore):
        return store.generations
    return store.generation


def generation_scalar(store: Store) -> int:
    """A monotone scalar view of the generation (the obs gauge value).

    A plain store's generation is already a scalar; a sharded store's
    vector is summed — every shard commit advances exactly one
    component by one, so the sum advances by one per commit too.
    """
    generation = generation_of(store)
    if isinstance(generation, tuple):
        return sum(generation)
    return int(generation)


@dataclass(frozen=True)
class ApplyResult:
    """What one applied change-set did to the catalog."""

    added: int
    refreshed: int
    removed: int
    generation: Union[int, Tuple[int, ...]]


class RefreshWriter:
    """Apply change-sets to one catalog store, batched per cycle."""

    def __init__(
        self,
        store: Store,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.store = store
        self.context = context
        self.n_jobs = n_jobs

    def apply(self, changes: ChangeSet) -> ApplyResult:
        """Commit *changes*: additions, then refreshes, then removals.

        Each phase that has work lands as its own store commit (shard
        fan-outs commit per shard), so a crash mid-apply always leaves
        a committed catalog state — never a torn one — and the next
        cycle's scan re-derives whatever remains to be done from
        fingerprints alone (the apply is idempotent).
        """
        fault_point(
            "ingest.apply",
            added=len(changes.added),
            changed=len(changes.changed),
            removed=len(changes.removed),
        )
        refreshed = 0
        with obs.trace(
            "ingest.apply",
            added=len(changes.added),
            changed=len(changes.changed),
            removed=len(changes.removed),
        ):
            if changes.added:
                self.store.add_tables(
                    changes.added, context=self.context, n_jobs=self.n_jobs
                )
                obs.inc("ingest.tables_added", len(changes.added))
            if changes.changed:
                rebuilt = self.store.refresh_many(
                    changes.changed, context=self.context, n_jobs=self.n_jobs
                )
                refreshed = sum(1 for did in rebuilt.values() if did)
                obs.inc("ingest.tables_refreshed", refreshed)
            for name in changes.removed:
                self.store.remove_table(name)
            if changes.removed:
                obs.inc("ingest.tables_removed", len(changes.removed))
        obs.set_gauge("catalog.generation", generation_scalar(self.store))
        return ApplyResult(
            added=len(changes.added),
            refreshed=refreshed,
            removed=len(changes.removed),
            generation=generation_of(self.store),
        )
