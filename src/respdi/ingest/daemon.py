"""The ingestion daemon: watcher→writer cycles under live query load.

An :class:`IngestDaemon` binds one
:class:`~respdi.ingest.watcher.SourceWatcher` to one
:class:`~respdi.ingest.writer.RefreshWriter` and runs cycles — scan the
sources, apply the diff, publish — either on demand
(:meth:`IngestDaemon.run_cycle`), in a bounded foreground loop
(:meth:`IngestDaemon.run`), or on a background thread
(:meth:`IngestDaemon.start` / :meth:`IngestDaemon.stop`, also the
context-manager form).  ``respdi-catalog watch`` is the CLI wrapper.

Readers need no coordination with the daemon: every commit goes through
the catalog's atomic publish, so a
:class:`~respdi.service.QueryService` pinned to a snapshot keeps
answering against its generation and re-pins on its own manifest-token
check.  Attaching a service (``service=``) merely makes the re-pin
*eager* — the daemon calls :meth:`~respdi.service.QueryService.reload`
after each applying cycle so a long-lived server picks the new
generation up immediately instead of on its next query.

Each cycle crosses the ``ingest.cycle`` (loop), ``ingest.scan``
(watcher), and ``ingest.apply`` (writer) fault points, which is what
lets the crash matrix kill a daemon at every step it takes and assert
the surviving catalog is a complete committed state.

Metrics: ``ingest.cycles`` counts every cycle, ``ingest.lag_seconds``
gauges the detect→publish latency of the last cycle that applied
changes, and ``catalog.generation`` tracks the committed generation
scalar.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from respdi import obs
from respdi.catalog.sharding import open_catalog
from respdi.errors import SpecificationError
from respdi.faults.plan import fault_point
from respdi.ingest.watcher import SourceWatcher, committed_fingerprints
from respdi.ingest.writer import RefreshWriter, Store, generation_of
from respdi.parallel import ExecutionContext

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CycleResult:
    """One cycle's audit record (what ``respdi-catalog watch`` prints)."""

    cycle: int
    scanned: int
    added: int
    refreshed: int
    removed: int
    generation: Union[int, Tuple[int, ...]]
    lag_seconds: float

    @property
    def applied(self) -> bool:
        """True when this cycle committed anything."""
        return bool(self.added or self.refreshed or self.removed)

    def summary(self) -> str:
        suffix = f" lag={self.lag_seconds:.3f}s" if self.applied else ""
        return (
            f"cycle {self.cycle}: +{self.added} ~{self.refreshed} "
            f"-{self.removed} generation={self.generation}{suffix}"
        )


class IngestDaemon:
    """Watcher→writer cycles over one catalog, safe under live readers."""

    def __init__(
        self,
        store: Union[Store, PathLike],
        sources: Union[PathLike, Sequence[PathLike]],
        interval: float = 1.0,
        remove_missing: bool = True,
        service=None,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = open_catalog(store)
        self.store = store
        self.watcher = SourceWatcher(sources, remove_missing=remove_missing)
        self.writer = RefreshWriter(store, context=context, n_jobs=n_jobs)
        self.interval = float(interval)
        if self.interval < 0:
            raise SpecificationError("interval must be >= 0")
        #: Optional QueryService/ShardedQueryService to eagerly re-pin
        #: after each applying cycle (the auto-re-pin mode).
        self.service = service
        self.cycles = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def directory(self) -> Path:
        return self.store.directory

    # -- one cycle -----------------------------------------------------------

    def run_cycle(self) -> CycleResult:
        """Scan the sources and commit whatever changed (one cycle).

        The diff baseline is re-read from the committed manifests every
        cycle, so out-of-band writers (another process adding tables)
        are observed rather than clobbered, and a crash-interrupted
        previous cycle is simply finished: whatever it already committed
        fingerprints as current, whatever it lost is re-detected.
        """
        self.cycles += 1
        fault_point("ingest.cycle", cycle=self.cycles)
        start = time.perf_counter()
        with obs.trace("ingest.cycle", cycle=self.cycles):
            changes = self.watcher.scan(
                committed_fingerprints(self.store.directory)
            )
            if changes.empty:
                result = CycleResult(
                    cycle=self.cycles,
                    scanned=changes.scanned,
                    added=0,
                    refreshed=0,
                    removed=0,
                    generation=generation_of(self.store),
                    lag_seconds=0.0,
                )
            else:
                applied = self.writer.apply(changes)
                lag = time.perf_counter() - start
                obs.set_gauge("ingest.lag_seconds", lag)
                result = CycleResult(
                    cycle=self.cycles,
                    scanned=changes.scanned,
                    added=applied.added,
                    refreshed=applied.refreshed,
                    removed=applied.removed,
                    generation=applied.generation,
                    lag_seconds=lag,
                )
                if self.service is not None:
                    self.service.reload()
        obs.inc("ingest.cycles")
        return result

    # -- the loop ------------------------------------------------------------

    def run(
        self,
        max_cycles: Optional[int] = None,
        stop_event: Optional[threading.Event] = None,
        on_cycle=None,
    ) -> int:
        """Run cycles every :attr:`interval` seconds; return cycles run.

        Stops after *max_cycles* (None = until *stop_event* is set).
        *on_cycle*, when given, receives each :class:`CycleResult` —
        the CLI's progress printer, a test's recorder.  The inter-cycle
        sleep waits on the stop event, so :meth:`stop` interrupts an
        idle daemon immediately instead of after the interval.
        """
        stop = stop_event if stop_event is not None else self._stop
        ran = 0
        while max_cycles is None or ran < max_cycles:
            if stop.is_set():
                break
            result = self.run_cycle()
            ran += 1
            if on_cycle is not None:
                on_cycle(result)
            if max_cycles is not None and ran >= max_cycles:
                break
            if stop.wait(self.interval):
                break
        return ran

    # -- background operation ------------------------------------------------

    def start(self, max_cycles: Optional[int] = None) -> "IngestDaemon":
        """Run the loop on a daemon thread; returns self for chaining."""
        if self._thread is not None and self._thread.is_alive():
            raise SpecificationError("ingest daemon is already running")
        self._stop.clear()
        self._error = None

        def _loop() -> None:
            try:
                self.run(max_cycles=max_cycles, stop_event=self._stop)
            except BaseException as exc:  # noqa: BLE001 - surfaced by stop()
                self._error = exc

        self._thread = threading.Thread(
            target=_loop, name="respdi-ingest", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Signal the loop to exit and join the thread.

        An exception that killed the background loop is re-raised here
        — a daemon must never die silently.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def __enter__(self) -> "IngestDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception with a loop error.
        try:
            self.stop()
        except BaseException:  # noqa: BLE001
            if exc_type is None:
                raise
