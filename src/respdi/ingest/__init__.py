"""respdi.ingest — the continuous ingestion daemon (the write-path service).

The catalog made discovery state durable; the service layer made it
*servable*; this package makes it *current*.  A responsible catalog is
an ongoing obligation, not a one-shot build: sources drift, and
datasheets/sketches computed once go stale.  Three cooperating parts
keep a catalog tracking its source lake while readers keep answering:

* :class:`~respdi.ingest.watcher.SourceWatcher` — polls registered
  source directories/globs and detects new, changed, and deleted CSVs
  purely by **content fingerprint** (the same
  :func:`~respdi.catalog.store.table_fingerprint` the catalog stores —
  mtimes are never trusted), emitting a deterministic
  :class:`~respdi.ingest.watcher.ChangeSet`;
* :class:`~respdi.ingest.writer.RefreshWriter` — applies a change-set
  through the catalog's own commit protocol
  (:meth:`~respdi.catalog.store.CatalogStore.add_tables` /
  :meth:`~respdi.catalog.store.CatalogStore.refresh_many` /
  :meth:`~respdi.catalog.store.CatalogStore.remove_table`), batching the
  cycle's changes under the single-writer lock — shard-aware: a
  directory holding ``SHARDS.json`` routes through
  :class:`~respdi.catalog.sharding.ShardedCatalogStore`;
* :class:`~respdi.ingest.daemon.IngestDaemon` — runs watcher→writer
  cycles on an interval (or on demand), optionally re-pinning an
  attached :class:`~respdi.service.QueryService` so long-lived servers
  pick up new generations without restart.  ``respdi-catalog watch`` is
  the CLI face.

Because every mutation goes through the existing atomic commit
protocol, the PR 5 read-path guarantee carries over unchanged: readers
pinned to a snapshot observe complete committed generations only —
never a torn mix — while the daemon refreshes underneath them
(machine-checked by ``tests/test_ingest_stress.py`` and the
``tests/test_ingest_crash.py`` kill-at-every-step matrix over daemon
cycles).

Observability: ``ingest.cycles`` / ``ingest.scans`` /
``ingest.tables_added`` / ``ingest.tables_refreshed`` /
``ingest.tables_removed`` counters, plus the ``ingest.lag_seconds``
gauge (detect→publish latency of the last applying cycle) and the
``catalog.generation`` gauge — all visible through
``respdi-audit --metrics`` like every other subsystem.
"""

from respdi.ingest.daemon import CycleResult, IngestDaemon
from respdi.ingest.watcher import ChangeSet, SourceWatcher, committed_fingerprints
from respdi.ingest.writer import ApplyResult, RefreshWriter

__all__ = [
    "ApplyResult",
    "ChangeSet",
    "CycleResult",
    "IngestDaemon",
    "RefreshWriter",
    "SourceWatcher",
    "committed_fingerprints",
]
