"""Source watching: content-fingerprint change detection over CSV lakes.

A :class:`SourceWatcher` owns a set of *sources* — directories (every
``*.csv`` inside) or explicit glob patterns — and, per scan, diffs the
lake on disk against the catalog's committed entry fingerprints.  The
diff is computed from **content**, never mtimes: each candidate CSV is
parsed and fingerprinted with the very
:func:`~respdi.catalog.store.table_fingerprint` the catalog records at
registration, so a ``touch``'d file is correctly a no-op and an
in-place edit that preserves size and timestamp is correctly a change.

The result is a :class:`ChangeSet` — tables to add, tables to refresh,
names to remove — with every component ordered by name, so the same
lake state always yields the same change-set bytes regardless of
filesystem enumeration order (the determinism the crash matrix and the
differential stress tests lean on).
"""

from __future__ import annotations

import glob as globlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from respdi import obs
from respdi.catalog.sharding import is_sharded, read_shard_spec
from respdi.catalog.store import read_manifest, table_fingerprint
from respdi.errors import SpecificationError
from respdi.faults.plan import fault_point
from respdi.table import Table, read_csv

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ChangeSet:
    """One scan's deterministic diff of the lake against the catalog.

    ``added`` and ``changed`` map table names to freshly parsed tables
    (insertion order = sorted by name); ``removed`` lists cataloged
    names whose source file disappeared.  ``scanned`` counts every
    source file fingerprinted, so a no-change scan is still auditable.
    """

    added: Dict[str, Table] = field(default_factory=dict)
    changed: Dict[str, Table] = field(default_factory=dict)
    removed: Tuple[str, ...] = ()
    scanned: int = 0

    @property
    def empty(self) -> bool:
        return not (self.added or self.changed or self.removed)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} ~{len(self.changed)} -{len(self.removed)} "
            f"(scanned {self.scanned})"
        )


def committed_fingerprints(directory: PathLike) -> Dict[str, str]:
    """``{table name: content fingerprint}`` committed at *directory*.

    Reads manifests only — no store open, no checksum pass — so a scan's
    baseline is cheap to re-take every cycle.  Shard-transparent: a
    directory holding ``SHARDS.json`` merges every shard's manifest
    (names are unique across shards by routing).
    """
    directory = Path(directory)
    if is_sharded(directory):
        merged: Dict[str, str] = {}
        for dirname in read_shard_spec(directory)["shards"]:
            manifest = read_manifest(directory / dirname)
            for name, record in manifest.get("entries", {}).items():
                merged[name] = record["fingerprint"]
        return merged
    manifest = read_manifest(directory)
    return {
        name: record["fingerprint"]
        for name, record in manifest.get("entries", {}).items()
    }


class SourceWatcher:
    """Poll source directories/globs; emit change-sets by content diff.

    *sources* entries are either directories (watched for ``*.csv``) or
    glob patterns (``lake/part-*.csv``).  Table names are file stems;
    two source files mapping to one stem is ambiguous and rejected at
    scan time rather than silently last-one-wins.

    With *remove_missing* (the default), a cataloged table whose source
    file vanished is scheduled for removal — the watcher treats the
    sources as the complete authority over catalog membership.  Pass
    ``remove_missing=False`` for a catalog that also holds out-of-band
    tables the daemon must leave alone.
    """

    def __init__(
        self,
        sources: Union[PathLike, Sequence[PathLike]],
        remove_missing: bool = True,
    ) -> None:
        if isinstance(sources, (str, Path)):
            sources = [sources]
        self.sources: Tuple[str, ...] = tuple(str(source) for source in sources)
        if not self.sources:
            raise SpecificationError("SourceWatcher needs at least one source")
        self.remove_missing = bool(remove_missing)

    # -- enumeration ---------------------------------------------------------

    def discover(self) -> Dict[str, Path]:
        """``{table name: csv path}`` for every source file, sorted by name."""
        paths: List[Path] = []
        for source in self.sources:
            root = Path(source)
            if root.is_dir():
                paths.extend(root.glob("*.csv"))
            else:
                paths.extend(Path(match) for match in globlib.glob(source))
        found: Dict[str, Path] = {}
        for path in sorted(set(paths)):
            name = path.stem
            if name in found and found[name] != path:
                raise SpecificationError(
                    f"sources map two files to table {name!r}: "
                    f"{found[name]} and {path}"
                )
            found[name] = path
        return dict(sorted(found.items()))

    # -- the diff ------------------------------------------------------------

    def scan(
        self, fingerprints: Optional[Dict[str, str]] = None,
        directory: Optional[PathLike] = None,
    ) -> ChangeSet:
        """Diff the sources against *fingerprints* (or *directory*'s).

        Exactly one baseline must be given: the committed fingerprints
        themselves, or a catalog directory to read them from.  Every
        source CSV is parsed and fingerprinted; the resulting
        :class:`ChangeSet` orders every component by name.
        """
        if (fingerprints is None) == (directory is None):
            raise SpecificationError(
                "scan() needs exactly one of fingerprints= or directory="
            )
        if fingerprints is None:
            fingerprints = committed_fingerprints(directory)
        discovered = self.discover()
        fault_point("ingest.scan", files=len(discovered))
        obs.inc("ingest.scans")
        added: Dict[str, Table] = {}
        changed: Dict[str, Table] = {}
        for name, path in discovered.items():
            table = read_csv(path)
            if name not in fingerprints:
                added[name] = table
            elif table_fingerprint(table) != fingerprints[name]:
                changed[name] = table
        removed: Iterable[str] = ()
        if self.remove_missing:
            removed = sorted(set(fingerprints) - set(discovered))
        return ChangeSet(
            added=added,
            changed=changed,
            removed=tuple(removed),
            scanned=len(discovered),
        )
