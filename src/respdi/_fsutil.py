"""Crash-safe filesystem primitives shared across the library.

A half-written JSON label or catalog manifest is worse than none: a
reader cannot tell truncation from corruption.  Every durable artifact
respdi writes therefore goes through the same recipe — write to a
temporary file in the *same directory* (so the final rename never
crosses a filesystem), flush and fsync, then :func:`os.replace` onto the
destination, which POSIX guarantees is atomic.  Readers see either the
old complete file or the new complete file, never a mix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

from respdi.faults.plan import fault_point

PathLike = Union[str, Path]


def fsync_directory(directory: PathLike) -> None:
    """Best-effort fsync of *directory* so a rename survives power loss.

    Some filesystems (and all of Windows) do not support opening a
    directory for fsync; failures are swallowed because the rename itself
    is already atomic — directory durability is a hardening extra.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace *path* with *data* (tmp file + fsync + rename).

    Each step of the recipe is a named fault-injection point
    (:mod:`respdi.faults`): a crash at ``fsutil.tmp_created`` leaves an
    empty orphan tmp, at ``fsutil.tmp_written`` a complete (or, torn,
    partial) orphan tmp with the destination untouched, and at
    ``fsutil.renamed`` the new file already in place — the three states
    the crash-consistency matrix proves a reader survives.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        fault_point("fsutil.tmp_created", path=str(path), tmp=tmp_name)
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            fault_point("fsutil.fsync", path=str(path), tmp=tmp_name)
            os.fsync(handle.fileno())
        fault_point(
            "fsutil.tmp_written",
            path=str(path),
            tmp=tmp_name,
            tear_target=tmp_name,
        )
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fault_point("fsutil.renamed", path=str(path), tear_target=str(path))
    fsync_directory(path.parent)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace *path* with *text* (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
