"""Process-global observability switch.

Instrumentation sites read :data:`enabled` directly (a module attribute
load) so that disabled instrumentation costs one boolean check — the
near-zero-overhead contract the hot paths rely on.  Keep this module
free of imports from the rest of :mod:`respdi.obs` so every other obs
module can depend on it without cycles.
"""

from __future__ import annotations

enabled: bool = False


def enable() -> None:
    """Turn instrumentation on process-wide."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn instrumentation off process-wide."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled
