"""Hierarchical spans with pluggable exporters.

``with trace("discovery.minhash.signature", n_values=128):`` opens a
:class:`Span` that records wall-clock start time, duration, structured
attributes, and its position in the per-thread span stack (parent name
and depth).  Finished spans go to the installed :class:`SpanExporter`
(an in-memory ring buffer by default; :class:`JsonLinesExporter` writes
one JSON object per span) and their durations feed the global metrics
registry as ``<name>.seconds`` histograms.

When observability is disabled (the default), :func:`trace` returns a
shared no-op span: no allocation, no clock reads, no lock.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from respdi.obs import _state
from respdi.obs.metrics import global_registry


class Span:
    """One timed, attributed region of execution."""

    __slots__ = (
        "name",
        "attributes",
        "parent_name",
        "depth",
        "started_at",
        "duration",
        "error",
        "_start",
    )

    def __init__(self, name: str, attributes: Dict) -> None:
        self.name = name
        self.attributes = attributes
        self.parent_name: Optional[str] = None
        self.depth = 0
        self.started_at = 0.0
        self.duration = 0.0
        self.error: Optional[str] = None

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        stack = _span_stack()
        self.depth = len(stack)
        self.parent_name = stack[-1].name if stack else None
        stack.append(self)
        self.started_at = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        _finish(self)
        return False

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "parent": self.parent_name,
            "depth": self.depth,
            "started_at": self.started_at,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "error": self.error,
        }


class _NoopSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass


_NOOP_SPAN = _NoopSpan()
_LOCAL = threading.local()


def _span_stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    stack = _span_stack()
    return stack[-1] if stack else None


class SpanExporter:
    """Receives each finished span; subclass and override :meth:`export`."""

    def export(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemoryExporter(SpanExporter):
    """Ring buffer of the most recent finished spans (as dicts)."""

    def __init__(self, capacity: int = 2048) -> None:
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span.to_dict())

    @property
    def spans(self) -> List[Dict]:
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()


class JsonLinesExporter(SpanExporter):
    """Appends one JSON object per finished span to a file."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a")

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_EXPORTER: SpanExporter = InMemoryExporter()


def set_exporter(exporter: SpanExporter) -> SpanExporter:
    """Install *exporter* for finished spans; returns the previous one."""
    global _EXPORTER
    previous = _EXPORTER
    _EXPORTER = exporter
    return previous


def get_exporter() -> SpanExporter:
    return _EXPORTER


def _finish(span: Span) -> None:
    global_registry().observe(span.name + ".seconds", span.duration)
    _EXPORTER.export(span)


def trace(name: str, **attributes):
    """Open a span named *name* (no-op unless observability is enabled)."""
    if not _state.enabled:
        return _NOOP_SPAN
    return Span(name, attributes)
