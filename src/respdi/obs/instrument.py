"""Zero-boilerplate instrumentation decorators.

``@timed("discovery.minhash.signature")`` records a call counter
(``<name>.calls``) and a duration histogram (``<name>.seconds``) around
every call; ``@counted("discovery.lshensemble.index")`` records only the
counter.  Both check the global enable flag first, so a decorated
function costs one boolean test and one extra frame while observability
is off — cheap enough for per-row hot paths.  The undecorated function
stays reachable as ``wrapper.__wrapped__`` (used by the overhead
benchmark as its baseline).
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from respdi.obs import _state
from respdi.obs.metrics import global_registry

F = TypeVar("F", bound=Callable)


def timed(name: str) -> Callable[[F], F]:
    """Count calls and time them into ``<name>.calls`` / ``<name>.seconds``."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            registry = global_registry()
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                registry.observe(name + ".seconds", time.perf_counter() - start)
                registry.inc(name + ".calls")

        return wrapper  # type: ignore[return-value]

    return decorate


def counted(name: str, amount: float = 1.0) -> Callable[[F], F]:
    """Increment the ``<name>`` counter once per call."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _state.enabled:
                global_registry().inc(name, amount)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
