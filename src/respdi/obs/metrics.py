"""Counters, gauges, and histogram timers behind one registry.

Metric names are dotted strings whose first component identifies the
subsystem (``pipeline.runs``, ``discovery.minhash.signature.seconds``,
``tailoring.draws``).  A :class:`MetricsRegistry` is lock-safe: every
mutation takes the registry lock, so concurrent increments from worker
threads never lose updates.  The process-global registry returned by
:func:`global_registry` is what the instrumentation helpers and the CLI
``--metrics`` flag talk to; tests can build private registries.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, Optional

from respdi.obs import _state


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0


class Histogram:
    """Streaming summary of observed values (count/total/min/max/mean/p50/p99).

    Percentiles come from a bounded ring of the most recent
    ``WINDOW_SIZE`` observations (nearest-rank): exact for short-lived
    processes, recency-weighted for long-lived servers — which is the
    view an operator watching ``serve.latency.*`` wants anyway.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_window", "_next")

    #: Samples retained for percentile estimation, per histogram.
    WINDOW_SIZE = 1024

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window: list = []
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._window) < self.WINDOW_SIZE:
            self._window.append(value)
        else:
            self._window[self._next] = value
            self._next = (self._next + 1) % self.WINDOW_SIZE

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained window (0 if empty)."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil without math
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }


class _Timer:
    """Context manager recording elapsed seconds into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutation ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.value = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(float(value))

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("x.seconds"): ...`` records elapsed time."""
        return _Timer(self, name)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- read side -----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter else 0.0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge else 0.0

    def histogram_summary(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.summary() if histogram else None

    def metric_names(self) -> Iterator[str]:
        with self._lock:
            names = set(self._counters) | set(self._gauges) | set(self._histograms)
        return iter(sorted(names))

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as plain data, grouped by kind."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry the instrumentation helpers write to."""
    return _GLOBAL_REGISTRY


# -- guarded helpers for instrumentation sites --------------------------------
#
# Library code calls these instead of touching the registry directly, so a
# disabled observability layer costs one attribute check per call site.


def inc(name: str, amount: float = 1.0) -> None:
    if _state.enabled:
        _GLOBAL_REGISTRY.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    if _state.enabled:
        _GLOBAL_REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    if _state.enabled:
        _GLOBAL_REGISTRY.observe(name, value)
