"""respdi.obs — dependency-free observability for the integration stack.

Three pieces, stdlib-only:

* :mod:`respdi.obs.metrics` — a lock-safe :class:`MetricsRegistry` of
  counters, gauges, and histogram timers with a process-global instance;
* :mod:`respdi.obs.tracing` — hierarchical :func:`trace` spans with
  pluggable exporters (in-memory ring buffer, JSON-lines file);
* :mod:`respdi.obs.instrument` — ``@timed`` / ``@counted`` decorators
  for zero-boilerplate adoption.

Instrumentation is **off by default**: every site guards on a single
module-level boolean, so an un-enabled program pays one attribute check
per instrumented call.  Turn it on with::

    from respdi import obs

    obs.enable()
    obs.set_exporter(obs.JsonLinesExporter("spans.jsonl"))  # optional
    ... run pipeline ...
    print(obs.global_registry().to_json())

``respdi-audit --metrics`` does the same from the command line.
"""

from __future__ import annotations

from respdi.obs._state import disable, enable, is_enabled
from respdi.obs.instrument import counted, timed
from respdi.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    inc,
    observe,
    set_gauge,
)
from respdi.obs.tracing import (
    InMemoryExporter,
    JsonLinesExporter,
    Span,
    SpanExporter,
    current_span,
    get_exporter,
    set_exporter,
    trace,
)


def reset() -> None:
    """Clear the global registry and the in-memory exporter (if installed)."""
    global_registry().reset()
    exporter = get_exporter()
    if isinstance(exporter, InMemoryExporter):
        exporter.clear()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "Span",
    "SpanExporter",
    "counted",
    "current_span",
    "disable",
    "enable",
    "get_exporter",
    "global_registry",
    "inc",
    "is_enabled",
    "observe",
    "reset",
    "set_exporter",
    "set_gauge",
    "timed",
    "trace",
]
