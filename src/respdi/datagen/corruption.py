"""Error injection for correctness and matching experiments.

Tutorial §2.4 argues an incorrect value in a small group moves that
group's aggregates far more than the same error in a large group.  To
measure that, we corrupt a complete table while keeping the clean values,
so repair quality and per-group aggregate damage are exactly computable.

The second half of the module is the **name-variant noise model** that
feeds the matcher-strength evaluation (:mod:`respdi.linkage.views`):
deterministic, rate-configurable corruptions sorted by which matcher
strength recovers them —

* *formatting* noise (case, punctuation, whitespace, token swaps,
  diacritics) — invisible to Exact, recovered by Normalized
  (canonicalization strips all of it);
* *content* noise (character typos, nickname substitution) — invisible
  to Normalized, recoverable only by the Fuzzy view's similarity
  threshold.

Every draw goes through one :class:`numpy.random.Generator` in a fixed
order, so a seeded model produces byte-identical corrupted lakes across
processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.table import Table


def inject_numeric_errors(
    table: Table,
    column: str,
    rate: float,
    magnitude: float = 5.0,
    rng: RngLike = None,
) -> Tuple[Table, np.ndarray, np.ndarray]:
    """Corrupt a fraction *rate* of the values in a numeric column.

    Each corrupted cell gets an additive shift of ``±magnitude`` standard
    deviations (sign chosen at random) — the canonical "fat-finger /
    unit-mismatch" outlier.

    Returns ``(corrupted_table, error_mask, clean_values)`` where
    *clean_values* is the original column (for measuring repair quality).
    """
    if not 0.0 <= rate < 1.0:
        raise SpecificationError(f"error rate {rate} must be in [0, 1)")
    if magnitude <= 0:
        raise SpecificationError("magnitude must be positive")
    if not table.schema[column].is_numeric:
        raise SpecificationError("numeric error injection requires a numeric column")
    generator = ensure_rng(rng)
    clean = np.asarray(table.column(column), dtype=float).copy()
    present = ~np.isnan(clean)
    mask = (generator.random(len(clean)) < rate) & present
    observed = clean[present]
    std = observed.std() or 1.0
    corrupted = clean.copy()
    signs = generator.choice([-1.0, 1.0], size=int(mask.sum()))
    corrupted[mask] = clean[mask] + signs * magnitude * std
    out = table.with_column(column, "numeric", corrupted)
    return out, mask, clean


# -- name-variant noise --------------------------------------------------------

#: Diacritic substitutions: plain ASCII letter -> accented variant.  The
#: canonicalizer's NFKD pass strips these, so diacritic noise is exactly
#: the "Normalized recovers it" class.
DIACRITICS: Dict[str, str] = {
    "a": "á", "e": "é", "i": "í", "o": "ó", "u": "ü", "n": "ñ",
    "c": "ç", "y": "ý", "s": "š", "z": "ž",
}

#: Nickname map: formal first name -> common short form.  Covers the
#: synthetic registry's name pools (:mod:`respdi.datagen.duplicates`)
#: plus classics, so nickname noise actually fires there.  Nickname
#: substitution survives canonicalization (the tokens really differ) —
#: only a fuzzy comparator can bridge it, and only partially.
NICKNAMES: Dict[str, str] = {
    "alexandria": "alex",
    "christopher": "chris",
    "sebastienne": "seb",
    "maximiliane": "maxi",
    "theodorique": "theo",
    "annabellina": "anna",
    "konstantine": "kosta",
    "wilhelmenia": "mina",
    "robert": "bob",
    "william": "bill",
    "elizabeth": "liz",
    "katherine": "kate",
    "margaret": "meg",
}


def typo_edit(value: str, rng: np.random.Generator) -> str:
    """One random character edit (delete / duplicate / swap-adjacent)."""
    if len(value) < 2:
        return value + "x"
    kind = int(rng.integers(3))
    position = int(rng.integers(len(value) - 1))
    if kind == 0:  # delete
        return value[:position] + value[position + 1 :]
    if kind == 1:  # duplicate
        return value[: position + 1] + value[position] + value[position + 1 :]
    chars = list(value)
    chars[position], chars[position + 1] = chars[position + 1], chars[position]
    return "".join(chars)


@dataclass(frozen=True)
class NameNoiseModel:
    """Deterministic name-variant generator with per-kind rates.

    Each corruption kind fires independently with its configured
    probability, in a **fixed order** (typo, diacritic, nickname, token
    swap, case, punctuation) so the rng consumption — and hence the
    output — is a pure function of (name, generator state).  ``scaled``
    derives a per-group intensity variant, modeling transcription
    quality that differs across communities.
    """

    typo_rate: float = 0.25
    diacritic_rate: float = 0.2
    nickname_rate: float = 0.2
    token_swap_rate: float = 0.25
    case_rate: float = 0.3
    punct_rate: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "typo_rate", "diacritic_rate", "nickname_rate",
            "token_swap_rate", "case_rate", "punct_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SpecificationError(f"{name} {rate} not in [0, 1]")

    def scaled(self, intensity: float) -> "NameNoiseModel":
        """This model with every rate multiplied by *intensity* (capped at 1)."""
        if intensity < 0:
            raise SpecificationError("intensity must be >= 0")
        return NameNoiseModel(
            typo_rate=min(1.0, self.typo_rate * intensity),
            diacritic_rate=min(1.0, self.diacritic_rate * intensity),
            nickname_rate=min(1.0, self.nickname_rate * intensity),
            token_swap_rate=min(1.0, self.token_swap_rate * intensity),
            case_rate=min(1.0, self.case_rate * intensity),
            punct_rate=min(1.0, self.punct_rate * intensity),
        )

    # -- the individual corruptions (always drawn, applied per rate) ---------

    def corrupt(self, name: str, rng: np.random.Generator) -> str:
        """One corrupted variant of *name* under this model's rates.

        Each kind's gate draw happens unconditionally and in a fixed
        order, so the output is a deterministic function of the
        generator state — no hidden dependence on dict order or
        ``hash()``.
        """
        generator = ensure_rng(rng)
        dirty = name
        if generator.random() < self.typo_rate:
            dirty = typo_edit(dirty, generator)
        if generator.random() < self.diacritic_rate:
            dirty = self._add_diacritic(dirty, generator)
        if generator.random() < self.nickname_rate:
            dirty = self._nickname(dirty)
        if generator.random() < self.token_swap_rate:
            dirty = self._token_swap(dirty, generator)
        if generator.random() < self.case_rate:
            dirty = self._case_noise(dirty, generator)
        if generator.random() < self.punct_rate:
            dirty = self._punct_noise(dirty, generator)
        return dirty

    @staticmethod
    def _add_diacritic(value: str, rng: np.random.Generator) -> str:
        positions = [i for i, ch in enumerate(value) if ch in DIACRITICS]
        if not positions:
            return value
        position = positions[int(rng.integers(len(positions)))]
        return (
            value[:position] + DIACRITICS[value[position]] + value[position + 1 :]
        )

    @staticmethod
    def _nickname(value: str) -> str:
        tokens = value.split()
        return " ".join(NICKNAMES.get(token, token) for token in tokens)

    @staticmethod
    def _token_swap(value: str, rng: np.random.Generator) -> str:
        tokens = value.split()
        if len(tokens) < 2:
            return value
        if int(rng.integers(2)) == 0:
            # "first last" -> "last, first" (registry style)
            return f"{tokens[-1]}, {' '.join(tokens[:-1])}"
        return " ".join(reversed(tokens))

    @staticmethod
    def _case_noise(value: str, rng: np.random.Generator) -> str:
        kind = int(rng.integers(3))
        if kind == 0:
            return value.upper()
        if kind == 1:
            return value.title()
        return value.capitalize()

    @staticmethod
    def _punct_noise(value: str, rng: np.random.Generator) -> str:
        kind = int(rng.integers(3))
        if kind == 0:
            return f" {value} "
        if kind == 1:
            return value.replace(" ", "  ", 1)
        return value.replace(" ", " . ", 1)
