"""Error injection for correctness experiments.

Tutorial §2.4 argues an incorrect value in a small group moves that
group's aggregates far more than the same error in a large group.  To
measure that, we corrupt a complete table while keeping the clean values,
so repair quality and per-group aggregate damage are exactly computable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.table import Table


def inject_numeric_errors(
    table: Table,
    column: str,
    rate: float,
    magnitude: float = 5.0,
    rng: RngLike = None,
) -> Tuple[Table, np.ndarray, np.ndarray]:
    """Corrupt a fraction *rate* of the values in a numeric column.

    Each corrupted cell gets an additive shift of ``±magnitude`` standard
    deviations (sign chosen at random) — the canonical "fat-finger /
    unit-mismatch" outlier.

    Returns ``(corrupted_table, error_mask, clean_values)`` where
    *clean_values* is the original column (for measuring repair quality).
    """
    if not 0.0 <= rate < 1.0:
        raise SpecificationError(f"error rate {rate} must be in [0, 1)")
    if magnitude <= 0:
        raise SpecificationError("magnitude must be positive")
    if not table.schema[column].is_numeric:
        raise SpecificationError("numeric error injection requires a numeric column")
    generator = ensure_rng(rng)
    clean = np.asarray(table.column(column), dtype=float).copy()
    present = ~np.isnan(clean)
    mask = (generator.random(len(clean)) < rate) & present
    observed = clean[present]
    std = observed.std() or 1.0
    corrupted = clean.copy()
    signs = generator.choice([-1.0, 1.0], size=int(mask.sum()))
    corrupted[mask] = clean[mask] + signs * magnitude * std
    out = table.with_column(column, "numeric", corrupted)
    return out, mask, clean
