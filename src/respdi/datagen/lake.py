"""Synthetic data lakes with controlled ground truth.

Dataset-discovery algorithms (tutorial §3.1) are evaluated against a lake
where we *know* which tables are unionable, which columns are joinable,
and what the join-correlation between planted feature columns and the
query's target column is.  This module generates such lakes:

* a global vocabulary of categorical values;
* distractor tables with random value domains;
* planted **unionable partners** whose columns overlap a query column at
  a chosen containment level;
* planted **joinable feature tables**: share a key domain with the query
  table and carry a numeric column correlated with the query's target at
  a chosen Pearson level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.table import ColumnType, Schema, Table


@dataclass(frozen=True)
class LakeSpec:
    """Parameters for :func:`generate_lake`."""

    n_distractors: int = 50
    vocab_size: int = 5000
    domain_size: int = 200
    columns_per_table: int = 3
    planted_containments: Tuple[float, ...] = (0.9, 0.7, 0.5, 0.3, 0.1)
    planted_correlations: Tuple[float, ...] = (0.9, 0.6, 0.3, 0.0)
    key_domain_size: int = 300
    rows_per_join_table: int = 300

    def __post_init__(self) -> None:
        if self.domain_size > self.vocab_size:
            raise SpecificationError("domain_size cannot exceed vocab_size")
        for c in self.planted_containments:
            if not 0.0 <= c <= 1.0:
                raise SpecificationError(f"containment {c} out of [0, 1]")
        for r in self.planted_correlations:
            if not -1.0 <= r <= 1.0:
                raise SpecificationError(f"correlation {r} out of [-1, 1]")


@dataclass
class SyntheticLake:
    """A generated lake plus its ground truth.

    Attributes
    ----------
    tables:
        All tables in the lake, keyed by name.
    query_table:
        Name of the designated query table.
    query_column:
        Name of the query table's set-search column.
    unionable_truth:
        ``{table_name: containment}`` for planted unionable partners
        (containment of the query column's domain in the partner column).
    join_truth:
        ``{table_name: correlation}`` for planted joinable feature tables
        (Pearson correlation, after joining on ``key``, between the
        partner's ``feat`` column and the query table's ``target``).
    """

    tables: Dict[str, Table]
    query_table: str
    query_column: str
    unionable_truth: Dict[str, float] = field(default_factory=dict)
    join_truth: Dict[str, float] = field(default_factory=dict)

    def column_values(self, table_name: str, column: str) -> set:
        """Distinct present values of a column, as a set."""
        return set(self.tables[table_name].unique(column))


def _vocab_value(i: int) -> str:
    return f"v{i:06d}"


def _random_domain(
    generator: np.random.Generator, vocab_size: int, size: int
) -> List[str]:
    idx = generator.choice(vocab_size, size=size, replace=False)
    return [_vocab_value(i) for i in idx]


def _domain_with_containment(
    generator: np.random.Generator,
    base: Sequence[str],
    containment: float,
    vocab_size: int,
    size: int,
) -> List[str]:
    """A domain of *size* values containing ``round(containment * len(base))``
    values of *base* (containment of base in the result)."""
    n_shared = int(round(containment * len(base)))
    n_shared = min(n_shared, size, len(base))
    shared_idx = generator.choice(len(base), size=n_shared, replace=False)
    shared = [base[i] for i in shared_idx]
    base_set = set(base)
    fresh: List[str] = []
    # Rejection-sample vocabulary values outside base for the remainder.
    while len(fresh) < size - n_shared:
        candidates = generator.choice(vocab_size, size=2 * (size - n_shared) + 8)
        for c in candidates:
            value = _vocab_value(int(c))
            if value not in base_set and value not in fresh:
                fresh.append(value)
                if len(fresh) == size - n_shared:
                    break
    return shared + fresh


def _table_from_domains(
    name_prefix: str, domains: Sequence[Sequence[str]]
) -> Table:
    """A table whose categorical columns enumerate the given domains.

    Columns may have different domain sizes; shorter columns are padded by
    cycling (set semantics are what discovery cares about)."""
    height = max(len(d) for d in domains)
    columns = {}
    specs = []
    for j, domain in enumerate(domains):
        col_name = f"{name_prefix}c{j}"
        specs.append((col_name, ColumnType.CATEGORICAL))
        values = [domain[i % len(domain)] for i in range(height)]
        columns[col_name] = values
    return Table(Schema(specs), columns)


def _correlated_feature(
    generator: np.random.Generator, target_by_key: Dict[str, float], rho: float
) -> Dict[str, float]:
    """Per-key feature values with Pearson correlation ~rho to the target."""
    keys = sorted(target_by_key)
    target = np.array([target_by_key[k] for k in keys])
    standardized = (target - target.mean()) / (target.std() or 1.0)
    noise = generator.normal(size=len(keys))
    feature = rho * standardized + np.sqrt(max(1.0 - rho**2, 0.0)) * noise
    return dict(zip(keys, feature))


def generate_lake(spec: LakeSpec = LakeSpec(), rng: RngLike = None) -> SyntheticLake:
    """Generate a :class:`SyntheticLake` per *spec*."""
    generator = ensure_rng(rng)
    tables: Dict[str, Table] = {}

    # Query table for set search: one designated column.
    query_domain = _random_domain(generator, spec.vocab_size, spec.domain_size)
    query_set_table = _table_from_domains("q_", [query_domain])
    query_column = "q_c0"

    # Planted unionable partners at the requested containment levels.
    unionable_truth: Dict[str, float] = {}
    for i, containment in enumerate(spec.planted_containments):
        domain = _domain_with_containment(
            generator, query_domain, containment, spec.vocab_size, spec.domain_size
        )
        extra = [
            _random_domain(generator, spec.vocab_size, spec.domain_size)
            for _ in range(spec.columns_per_table - 1)
        ]
        name = f"union_{i}"
        tables[name] = _table_from_domains(f"u{i}_", [domain] + extra)
        unionable_truth[name] = containment

    # Distractors.
    for i in range(spec.n_distractors):
        domains = [
            _random_domain(generator, spec.vocab_size, spec.domain_size)
            for _ in range(spec.columns_per_table)
        ]
        tables[f"distractor_{i}"] = _table_from_domains(f"d{i}_", domains)

    # Join-correlation side: query table gains a key and a numeric target.
    key_domain = [f"k{i:05d}" for i in range(spec.key_domain_size)]
    target_by_key = {
        key: float(value)
        for key, value in zip(key_domain, generator.normal(size=len(key_domain)))
    }
    n_rows = spec.rows_per_join_table
    key_rows = [key_domain[i % len(key_domain)] for i in range(n_rows)]
    query_full = query_set_table
    height = max(n_rows, len(query_full))

    def pad(vals):
        return [vals[i % len(vals)] for i in range(height)]

    query_full = Table(
        Schema(
            [
                (query_column, ColumnType.CATEGORICAL),
                ("key", ColumnType.CATEGORICAL),
                ("target", ColumnType.NUMERIC),
            ]
        ),
        {
            query_column: pad(list(query_set_table.column(query_column))),
            "key": pad(key_rows),
            "target": [target_by_key[k] for k in pad(key_rows)],
        },
    )
    tables["query"] = query_full

    join_truth: Dict[str, float] = {}
    for i, rho in enumerate(spec.planted_correlations):
        feature_by_key = _correlated_feature(generator, target_by_key, rho)
        rows = [
            (key, feature_by_key[key])
            for key in (
                key_domain[int(j) % len(key_domain)]
                for j in generator.permutation(spec.rows_per_join_table)
            )
        ]
        name = f"joinable_{i}"
        tables[name] = Table.from_rows(
            Schema(
                [("key", ColumnType.CATEGORICAL), ("feat", ColumnType.NUMERIC)]
            ),
            rows,
        )
        join_truth[name] = rho

    return SyntheticLake(
        tables=tables,
        query_table="query",
        query_column=query_column,
        unionable_truth=unionable_truth,
        join_truth=join_truth,
    )
