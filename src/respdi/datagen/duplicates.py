"""Dirty-duplicate generation with group-dependent corruption.

Substitute for real person registries (which we cannot ship): synthetic
person records with ground-truth entity ids, where duplicates carry
typos, digit errors, jitter and dropped fields.  The **corruption
intensity is configurable per group**, modeling the documented reality
that name transcription quality differs across communities — the setting
in which fairness-aware ER evaluation (per-group recall) becomes
informative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.datagen.corruption import NameNoiseModel
from respdi.errors import SpecificationError
from respdi.table import ColumnType, Schema, Table

Pair = Tuple[int, int]

# Small synthetic name pools; group "blue" names are deliberately longer
# and more variable than group "green" ones so equal *rates* of typos do
# not imply equal similarity degradation.
_FIRST_NAMES: Dict[str, List[str]] = {
    "blue": [
        "alexandria", "christopher", "sebastienne", "maximiliane",
        "theodorique", "annabellina", "konstantine", "wilhelmenia",
    ],
    "green": [
        "ann", "bob", "cal", "dee", "eli", "fay", "gus", "ida",
    ],
}
_SURNAMES = [
    "smith", "jones", "garcia", "okafor", "nguyen", "patel",
    "kowalski", "sato", "haddad", "marino",
]


def _typo(value: str, rng: np.random.Generator) -> str:
    """One random character edit (delete / duplicate / swap-adjacent)."""
    if len(value) < 2:
        return value + "x"
    kind = int(rng.integers(3))
    position = int(rng.integers(len(value) - 1))
    if kind == 0:  # delete
        return value[:position] + value[position + 1 :]
    if kind == 1:  # duplicate
        return value[: position + 1] + value[position] + value[position + 1 :]
    # swap adjacent
    chars = list(value)
    chars[position], chars[position + 1] = chars[position + 1], chars[position]
    return "".join(chars)


def generate_person_registry(
    n_entities: int,
    duplicates_per_entity: int = 1,
    group_shares: Optional[Mapping[str, float]] = None,
    corruption_rates: Optional[Mapping[str, float]] = None,
    rng: RngLike = None,
) -> Table:
    """A registry of person records with ground-truth entity ids.

    Columns: ``_entity`` (truth id), ``group``, ``name``, ``zip``,
    ``age``.  Each entity appears once clean plus *duplicates_per_entity*
    corrupted copies; a duplicate of a group-``g`` entity receives each
    corruption (name typo, zip digit error, age jitter, dropped zip)
    independently with probability ``corruption_rates[g]``.

    Defaults: two groups ``blue``/``green`` at 50/50, corruption 0.3
    each.  Raising one group's rate models transcription-quality
    disparity.
    """
    if n_entities < 1:
        raise SpecificationError("need at least one entity")
    if duplicates_per_entity < 0:
        raise SpecificationError("duplicates_per_entity must be >= 0")
    group_shares = dict(group_shares or {"blue": 0.5, "green": 0.5})
    unknown = set(group_shares) - set(_FIRST_NAMES)
    if unknown:
        raise SpecificationError(
            f"unknown groups {sorted(unknown)}; available: "
            f"{sorted(_FIRST_NAMES)}"
        )
    corruption_rates = dict(corruption_rates or {g: 0.3 for g in group_shares})
    for group, rate in corruption_rates.items():
        if not 0.0 <= rate <= 1.0:
            raise SpecificationError(f"corruption rate for {group!r} not in [0,1]")
    generator = ensure_rng(rng)

    groups = sorted(group_shares)
    shares = np.array([group_shares[g] for g in groups], dtype=float)
    shares = shares / shares.sum()

    rows: List[Tuple] = []
    for entity in range(n_entities):
        group = groups[int(generator.choice(len(groups), p=shares))]
        first = _FIRST_NAMES[group][int(generator.integers(len(_FIRST_NAMES[group])))]
        last = _SURNAMES[int(generator.integers(len(_SURNAMES)))]
        name = f"{first} {last}"
        zip_code = f"{int(generator.integers(10000, 99999))}"
        age = float(generator.integers(18, 90))
        entity_id = f"e{entity:06d}"
        rows.append((entity_id, group, name, zip_code, age))
        rate = corruption_rates.get(group, 0.3)
        for _ in range(duplicates_per_entity):
            dirty_name = name
            dirty_zip: Optional[str] = zip_code
            dirty_age = age
            if generator.random() < rate:
                dirty_name = _typo(dirty_name, generator)
            if generator.random() < rate:
                dirty_name = _typo(dirty_name, generator)
            if generator.random() < rate:
                digits = list(dirty_zip)
                digits[int(generator.integers(len(digits)))] = str(
                    int(generator.integers(10))
                )
                dirty_zip = "".join(digits)
            if generator.random() < rate:
                dirty_age = age + float(generator.integers(-2, 3))
            if generator.random() < rate * 0.5:
                dirty_zip = None
            rows.append((entity_id, group, dirty_name, dirty_zip, dirty_age))

    schema = Schema(
        [
            ("_entity", ColumnType.CATEGORICAL),
            ("group", ColumnType.CATEGORICAL),
            ("name", ColumnType.CATEGORICAL),
            ("zip", ColumnType.CATEGORICAL),
            ("age", ColumnType.NUMERIC),
        ]
    )
    table = Table.from_rows(schema, rows)
    return table.shuffle(generator)


# -- gold-set emission ---------------------------------------------------------


def gold_pairs(table: Table, entity_column: str = "_entity") -> Set[Pair]:
    """Every true duplicate pair ``(i, j)``, ``i < j``, from entity ids.

    The *gold-pair emission* the matcher-strength harness evaluates
    against: records sharing a non-missing entity id are duplicates.
    """
    table.schema.require([entity_column])
    values = table.column(entity_column)
    by_entity: Dict[object, List[int]] = {}
    for i in range(len(table)):
        if values[i] is not None:
            by_entity.setdefault(values[i], []).append(i)
    pairs: Set[Pair] = set()
    for members in by_entity.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs.add((members[a], members[b]))
    return pairs


@dataclass(frozen=True)
class GoldRegistry:
    """A corrupted registry plus its emitted gold set.

    ``table`` carries ``_entity`` (truth id), ``group``, ``name``,
    ``zip``, ``age``; ``pairs`` is the full duplicate pair set over the
    (shuffled) row order — exactly what
    :func:`respdi.linkage.strength_eval.evaluate_strengths` consumes.
    """

    table: Table
    pairs: frozenset
    entity_column: str = "_entity"

    @property
    def n_records(self) -> int:
        return len(self.table)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)


def generate_gold_registry(
    n_entities: int,
    duplicates_per_entity: int = 1,
    group_shares: Optional[Mapping[str, float]] = None,
    noise: Optional[NameNoiseModel] = None,
    group_intensity: Optional[Mapping[str, float]] = None,
    zip_error_rate: float = 0.2,
    missing_zip_rate: float = 0.1,
    rng: RngLike = None,
) -> GoldRegistry:
    """A person registry corrupted by the name-variant noise model.

    Like :func:`generate_person_registry`, but duplicates are corrupted
    through a :class:`~respdi.datagen.corruption.NameNoiseModel` — so
    the damage spans the full recovery ladder (case/punctuation/token
    swaps/diacritics for the Normalized view, typos/nicknames for the
    Fuzzy view) — and the ground-truth pair set is emitted alongside
    the shuffled table.

    *group_intensity* scales the model's rates per group (default 1.0
    everywhere): raising one group's intensity models transcription
    quality that differs across communities, which is what makes
    per-group FuzzyGain informative.

    Determinism: every draw flows through the seeded generator in a
    fixed iteration order (groups sorted by name), so one seed yields a
    byte-identical registry and gold set in any process.
    """
    if n_entities < 1:
        raise SpecificationError("need at least one entity")
    if duplicates_per_entity < 0:
        raise SpecificationError("duplicates_per_entity must be >= 0")
    if not 0.0 <= zip_error_rate <= 1.0:
        raise SpecificationError("zip_error_rate not in [0, 1]")
    if not 0.0 <= missing_zip_rate <= 1.0:
        raise SpecificationError("missing_zip_rate not in [0, 1]")
    group_shares = dict(group_shares or {"blue": 0.5, "green": 0.5})
    unknown = set(group_shares) - set(_FIRST_NAMES)
    if unknown:
        raise SpecificationError(
            f"unknown groups {sorted(unknown)}; available: "
            f"{sorted(_FIRST_NAMES)}"
        )
    noise = noise if noise is not None else NameNoiseModel()
    intensities = dict(group_intensity or {})
    unknown = set(intensities) - set(group_shares)
    if unknown:
        raise SpecificationError(
            f"group_intensity given for unknown groups {sorted(unknown)}"
        )
    models = {
        group: noise.scaled(intensities.get(group, 1.0))
        for group in sorted(group_shares)
    }
    generator = ensure_rng(rng)

    groups = sorted(group_shares)
    shares = np.array([group_shares[g] for g in groups], dtype=float)
    shares = shares / shares.sum()

    rows: List[Tuple] = []
    for entity in range(n_entities):
        group = groups[int(generator.choice(len(groups), p=shares))]
        first = _FIRST_NAMES[group][int(generator.integers(len(_FIRST_NAMES[group])))]
        last = _SURNAMES[int(generator.integers(len(_SURNAMES)))]
        name = f"{first} {last}"
        zip_code = f"{int(generator.integers(10000, 99999))}"
        age = float(generator.integers(18, 90))
        entity_id = f"e{entity:06d}"
        rows.append((entity_id, group, name, zip_code, age))
        model = models[group]
        for _ in range(duplicates_per_entity):
            dirty_name = model.corrupt(name, generator)
            dirty_zip: Optional[str] = zip_code
            if generator.random() < zip_error_rate:
                digits = list(zip_code)
                digits[int(generator.integers(len(digits)))] = str(
                    int(generator.integers(10))
                )
                dirty_zip = "".join(digits)
            if generator.random() < missing_zip_rate:
                dirty_zip = None
            dirty_age = age + float(generator.integers(-2, 3))
            rows.append((entity_id, group, dirty_name, dirty_zip, dirty_age))

    schema = Schema(
        [
            ("_entity", ColumnType.CATEGORICAL),
            ("group", ColumnType.CATEGORICAL),
            ("name", ColumnType.CATEGORICAL),
            ("zip", ColumnType.CATEGORICAL),
            ("age", ColumnType.NUMERIC),
        ]
    )
    table = Table.from_rows(schema, rows).shuffle(generator)
    return GoldRegistry(
        table=table, pairs=frozenset(gold_pairs(table, "_entity"))
    )
