"""Skewed per-source views of a population.

Data distribution tailoring (tutorial §4.2) integrates from sources whose
local group distributions differ from the global one.  These helpers
manufacture such source ensembles with controllable skew, including
"specialized" sources that over-represent chosen groups — the situation
that makes cost-aware source selection interesting.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.datagen.population import Group, PopulationModel
from respdi.errors import SpecificationError
from respdi.stats.divergence import normalize_distribution
from respdi.table import Table


def skewed_group_distributions(
    base: Mapping[Group, float],
    n_sources: int,
    concentration: float = 5.0,
    specialized: Optional[Mapping[int, Group]] = None,
    specialization_mass: float = 0.6,
    rng: RngLike = None,
) -> List[Dict[Group, float]]:
    """Per-source group distributions perturbed around *base*.

    Each source's distribution is a Dirichlet draw with parameters
    ``concentration * base`` — small *concentration* means wildly skewed
    sources, large means sources close to the population.

    *specialized* optionally maps source index → group; that source gets
    *specialization_mass* of its probability on the named group (the rest
    of the mass keeps the Dirichlet draw's relative shape).  This models
    e.g. a clinic that predominantly serves one community.
    """
    base = normalize_distribution(dict(base))
    if n_sources < 1:
        raise SpecificationError("need at least one source")
    if not 0.0 < specialization_mass <= 1.0:
        raise SpecificationError("specialization_mass must be in (0, 1]")
    generator = ensure_rng(rng)
    groups = sorted(base, key=repr)
    alpha = np.array([max(base[g], 1e-6) for g in groups]) * concentration
    specialized = dict(specialized or {})
    for index, group in specialized.items():
        if not 0 <= index < n_sources:
            raise SpecificationError(f"specialized index {index} out of range")
        if group not in base:
            raise SpecificationError(f"specialized group {group!r} not in base")

    distributions: List[Dict[Group, float]] = []
    for i in range(n_sources):
        draw = generator.dirichlet(alpha)
        dist = {g: float(p) for g, p in zip(groups, draw)}
        if i in specialized:
            target = specialized[i]
            rest = {g: p for g, p in dist.items() if g != target}
            rest_total = sum(rest.values())
            scale = (1.0 - specialization_mass) / rest_total if rest_total > 0 else 0.0
            dist = {g: p * scale for g, p in rest.items()}
            dist[target] = specialization_mass
        distributions.append(normalize_distribution(dist))
    return distributions


def make_source_tables(
    population: PopulationModel,
    distributions: Sequence[Mapping[Group, float]],
    rows_per_source: int,
    rng: RngLike = None,
) -> List[Table]:
    """Materialize one table per source distribution.

    Rows are drawn with :meth:`PopulationModel.sample_biased`, so each
    source is a faithful conditional sample of the population with a
    skewed group mix — the tutorial's "each source has its own skew".
    """
    if rows_per_source < 1:
        raise SpecificationError("rows_per_source must be positive")
    generator = ensure_rng(rng)
    return [
        population.sample_biased(rows_per_source, dist, generator)
        for dist in distributions
    ]


def overlapping_source_tables(
    population: PopulationModel,
    distributions: Sequence[Mapping[Group, float]],
    rows_per_source: int,
    overlap: float,
    rng: RngLike = None,
) -> Tuple[List[Table], Table]:
    """Source tables that share a fraction of rows drawn from a common pool.

    Returns ``(sources, shared_pool)``.  A fraction *overlap* of each
    source's rows is sampled (without replacement, per source) from the
    shared pool; the remainder is source-specific.  Supports the §5
    "overlap-aware tailoring" extension, where integrating the same tuple
    twice yields no new information.

    An ``_id`` categorical column tags every row so overlap is observable:
    pool rows keep one global id across sources.
    """
    if not 0.0 <= overlap < 1.0:
        raise SpecificationError("overlap must be in [0, 1)")
    generator = ensure_rng(rng)
    n_shared_per_source = int(round(rows_per_source * overlap))
    pool_size = max(2 * n_shared_per_source * max(len(distributions), 1), 1)
    pool = population.sample(pool_size, generator)
    pool = pool.with_column(
        "_id", "categorical", [f"pool{i}" for i in range(len(pool))]
    )
    sources: List[Table] = []
    counter = 0
    for dist in distributions:
        own = population.sample_biased(
            rows_per_source - n_shared_per_source, dist, generator
        )
        own = own.with_column(
            "_id",
            "categorical",
            [f"own{counter + i}" for i in range(len(own))],
        )
        counter += len(own)
        if n_shared_per_source > 0:
            shared = pool.sample(n_shared_per_source, generator, replace=False)
            source = own.concat(shared).shuffle(generator)
        else:
            source = own.shuffle(generator)
        sources.append(source)
    return sources, pool
