"""Missing-value injection under the three classical mechanisms.

Imputation-fairness experiments (tutorial §3.3, §5; Zhang & Long 2021)
need ground-truth missingness: we inject holes into a complete table and
keep the original values, so imputation accuracy — overall and per group —
is exactly measurable.

Mechanisms
----------
MCAR  missing completely at random: every cell equally likely.
MAR   missing at random: missingness probability depends on *another*,
      fully observed column (here: a categorical conditioning column).
MNAR  missing not at random: missingness probability depends on the
      value being removed itself (larger values more likely missing).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.table import Table


def _apply_mask(table: Table, column: str, mask: np.ndarray) -> Table:
    spec = table.schema[column]
    values = list(table.column(column))
    for i in np.flatnonzero(mask):
        values[i] = None
    return table.with_column(column, spec.ctype, values)


def inject_mcar(
    table: Table, column: str, rate: float, rng: RngLike = None
) -> Tuple[Table, np.ndarray]:
    """Remove each value of *column* independently with probability *rate*.

    Returns ``(table_with_holes, injected_mask)``.
    """
    if not 0.0 <= rate < 1.0:
        raise SpecificationError(f"missingness rate {rate} must be in [0, 1)")
    generator = ensure_rng(rng)
    present = ~table.missing_mask(column)
    mask = (generator.random(len(table)) < rate) & present
    return _apply_mask(table, column, mask), mask


def inject_mar(
    table: Table,
    column: str,
    conditioning_column: str,
    rates: Mapping[Hashable, float],
    rng: RngLike = None,
) -> Tuple[Table, np.ndarray]:
    """Remove values of *column* with a probability depending on the value
    of *conditioning_column* in the same row.

    ``rates`` maps conditioning values to missingness probabilities;
    values not listed get rate 0.  This is the mechanism that hurts
    minority groups when the conditioning column is a sensitive attribute
    (tutorial §2.4).
    """
    for value, rate in rates.items():
        if not 0.0 <= rate < 1.0:
            raise SpecificationError(
                f"rate {rate} for conditioning value {value!r} must be in [0, 1)"
            )
    generator = ensure_rng(rng)
    conditioning = table.column(conditioning_column)
    present = ~table.missing_mask(column)
    probs = np.array([rates.get(value, 0.0) for value in conditioning])
    mask = (generator.random(len(table)) < probs) & present
    return _apply_mask(table, column, mask), mask


def inject_mnar(
    table: Table,
    column: str,
    base_rate: float,
    slope: float = 1.0,
    rng: RngLike = None,
) -> Tuple[Table, np.ndarray]:
    """Remove values of a numeric *column* with probability increasing in
    the value itself (logistic in the z-score, scaled by *slope*).

    ``base_rate`` is the marginal missingness at the column mean.
    """
    if not 0.0 < base_rate < 1.0:
        raise SpecificationError("base_rate must be in (0, 1)")
    if not table.schema[column].is_numeric:
        raise SpecificationError("MNAR injection requires a numeric column")
    generator = ensure_rng(rng)
    values = np.asarray(table.column(column), dtype=float)
    present = ~np.isnan(values)
    observed = values[present]
    mean = observed.mean() if observed.size else 0.0
    std = observed.std() or 1.0
    z = np.zeros(len(values))
    z[present] = (values[present] - mean) / std
    base_logit = np.log(base_rate / (1.0 - base_rate))
    probs = 1.0 / (1.0 + np.exp(-(base_logit + slope * z)))
    mask = (generator.random(len(values)) < probs) & present
    return _apply_mask(table, column, mask), mask
