"""Synthetic data generation.

The tutorial's running example (Example 1: Chicago breast-cancer records
scattered across sources with historically induced skew) relies on data we
cannot ship.  This package builds the closest synthetic equivalents with
*known ground truth*, which is what lets the benchmark harness measure the
algorithms exactly:

* :mod:`respdi.datagen.population` — a population model with sensitive
  attributes, group-conditioned features, and a biased label process;
* :mod:`respdi.datagen.sources` — skewed per-source views of a population
  (each source has its own group distribution and sampling cost);
* :mod:`respdi.datagen.lake` — a synthetic data lake with controlled
  column-domain overlap and planted joinable/correlated tables;
* :mod:`respdi.datagen.missingness` — MCAR/MAR/MNAR missing-value
  injection with ground-truth masks;
* :mod:`respdi.datagen.corruption` — numeric error injection with
  ground-truth error positions.
"""

from respdi.datagen.corruption import (
    NameNoiseModel,
    inject_numeric_errors,
    typo_edit,
)
from respdi.datagen.duplicates import (
    GoldRegistry,
    generate_gold_registry,
    generate_person_registry,
    gold_pairs,
)
from respdi.datagen.lake import LakeSpec, SyntheticLake, generate_lake
from respdi.datagen.missingness import inject_mar, inject_mcar, inject_mnar
from respdi.datagen.population import PopulationModel, SensitiveAttribute
from respdi.datagen.sources import make_source_tables, skewed_group_distributions

__all__ = [
    "SensitiveAttribute",
    "PopulationModel",
    "skewed_group_distributions",
    "make_source_tables",
    "LakeSpec",
    "SyntheticLake",
    "generate_lake",
    "inject_mcar",
    "inject_mar",
    "inject_mnar",
    "inject_numeric_errors",
    "NameNoiseModel",
    "typo_edit",
    "generate_person_registry",
    "GoldRegistry",
    "generate_gold_registry",
    "gold_pairs",
]
