"""The end-to-end responsible data integration pipeline.

:class:`ResponsibleIntegrationPipeline` composes the library the way the
tutorial's narrative does: **discover** candidate sources in a lake,
**tailor** a collection from them against group-count requirements,
**clean** the result, **audit** it against the §2 requirements, and
**document** it with a nutritional label and datasheet.  Every step
appends to a provenance log, which feeds the §5 transparency goal of
annotated, reusable pipelines.
"""

from respdi.pipeline.pipeline import PipelineResult, ResponsibleIntegrationPipeline

__all__ = [
    "PipelineResult",
    "ResponsibleIntegrationPipeline",
]
