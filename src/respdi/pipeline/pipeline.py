"""Discover → tailor → clean → audit → document, with provenance."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from respdi import obs
from respdi._rng import RngLike, ensure_rng
from respdi.cleaning.imputers import Imputer
from respdi.discovery.lake_index import DataLakeIndex
from respdi.errors import EmptyInputError, SpecificationError
from respdi.faults.plan import fault_point
from respdi.parallel import ExecutionContext
from respdi.profiling.datasheets import Datasheet, build_datasheet
from respdi.profiling.labels import NutritionalLabel, build_nutritional_label
from respdi.requirements.base import AuditReport, RequirementCheck
from respdi.requirements.checks import audit_requirements
from respdi.table import Schema, Table
from respdi.tailoring.engine import TailoringResult, tailor
from respdi.tailoring.policies import Policy, RatioCollPolicy
from respdi.tailoring.sources import TableSource
from respdi.tailoring.specs import TailoringSpec


@contextmanager
def _stage(name: str, timings: List[Tuple[str, float]]):
    """Time one pipeline stage: always into *timings* (so provenance can
    report wall-times), and as a ``pipeline.stage.<name>`` span when
    observability is enabled.  Each stage boundary is also a
    ``pipeline.stage.<name>`` fault-injection point, so tests can fail
    or stall any stage and assert the failure surfaces instead of
    yielding a half-documented result."""
    start = time.perf_counter()
    fault_point(f"pipeline.stage.{name}")
    with obs.trace(f"pipeline.stage.{name}"):
        yield
    timings.append((name, time.perf_counter() - start))


@dataclass
class PipelineResult:
    """Everything a downstream consumer needs from one pipeline run."""

    table: Table
    tailoring: Optional[TailoringResult]
    audit: Optional[AuditReport]
    label: Optional[NutritionalLabel]
    datasheet: Optional[Datasheet]
    sources_used: List[str]
    provenance: List[str]
    stage_timings: List[Tuple[str, float]] = field(default_factory=list)
    """Per-stage wall times, ``(stage_name, seconds)``, in execution order."""

    @property
    def fit_for_use(self) -> bool:
        """True when the audit ran and every requirement passed."""
        return self.audit is not None and self.audit.passed

    def render_provenance(self) -> str:
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self.provenance))

    def export(self, directory) -> Dict[str, str]:
        """Write the full artifact bundle to *directory*.

        Produces ``data.csv`` (the integrated table, type-headered),
        ``label.json``, ``datasheet.md``, ``provenance.txt``, and —
        when an audit ran — ``audit.json``.  Returns ``{artifact: path}``.
        The bundle is what §2.5 asks to ship *with* the data.
        """
        import os

        from respdi.profiling.export import dump_json
        from respdi.table import write_csv

        os.makedirs(directory, exist_ok=True)
        paths: Dict[str, str] = {}

        data_path = os.path.join(directory, "data.csv")
        write_csv(self.table, data_path)
        paths["data"] = data_path

        if self.label is not None:
            label_path = os.path.join(directory, "label.json")
            dump_json(self.label, label_path)
            paths["label"] = label_path
        if self.datasheet is not None:
            sheet_path = os.path.join(directory, "datasheet.md")
            with open(sheet_path, "w") as handle:
                handle.write(self.datasheet.render())
            paths["datasheet"] = sheet_path
        if self.audit is not None:
            audit_path = os.path.join(directory, "audit.json")
            dump_json(self.audit, audit_path)
            paths["audit"] = audit_path
        provenance_path = os.path.join(directory, "provenance.txt")
        with open(provenance_path, "w") as handle:
            handle.write(self.render_provenance() + "\n")
        paths["provenance"] = provenance_path
        return paths


class ResponsibleIntegrationPipeline:
    """Configurable pipeline over a data lake or explicit source tables.

    Typical use::

        pipeline = ResponsibleIntegrationPipeline(
            sensitive_columns=("gender", "race"), target_column="y",
        )
        result = pipeline.run(
            source_tables={"clinicA": a, "clinicB": b},
            spec=CountSpec(("gender", "race"), {...}),
            source_costs={"clinicA": 1.0, "clinicB": 3.0},
            requirements=[...],
            rng=0,
        )
    """

    def __init__(
        self,
        sensitive_columns: Sequence[str],
        target_column: Optional[str] = None,
        policy: Optional[Policy] = None,
        imputers: Sequence[Imputer] = (),
        coverage_threshold: int = 10,
        match_strength: Optional[str] = None,
        match_keys: Sequence[str] = (),
        match_threshold: float = 0.85,
        execution_context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if not sensitive_columns:
            raise SpecificationError("pipeline needs sensitive columns")
        self.sensitive_columns = tuple(sensitive_columns)
        self.target_column = target_column
        self.policy = policy if policy is not None else RatioCollPolicy()
        self.imputers = list(imputers)
        self.coverage_threshold = coverage_threshold
        #: Matcher strength for the optional duplicate-resolution stage
        #: (``exact`` / ``normalized`` / ``fuzzy`` over *match_keys*).
        #: The strength a tenant picks decides who gets linked — and so
        #: who the audit/label stages count — which is why it is a
        #: pipeline-level knob rather than a hard-coded policy.  The
        #: view is built eagerly so a bad strength name fails at
        #: construction, not mid-run.
        self.match_view = None
        if match_strength is not None:
            if not match_keys:
                raise SpecificationError(
                    "match_strength needs match_keys to link on"
                )
            from respdi.linkage.views import build_view

            self.match_view = build_view(
                match_strength, match_keys, threshold=match_threshold
            )
        #: Context for fan-out work the pipeline triggers (e.g. sketching
        #: a raw table mapping in :meth:`discover_sources`).  Resolved
        #: once at construction: explicit ``execution_context`` wins,
        #: then ``n_jobs`` (threads), then ``RESPDI_DEFAULT_JOBS``.
        self.execution_context = ExecutionContext.resolve(
            execution_context, n_jobs
        )

    # -- step: discovery ------------------------------------------------------

    def discover_sources(
        self,
        lake: Optional[DataLakeIndex] = None,
        query: Optional[Table] = None,
        k: int = 5,
        min_score: float = 0.1,
        service=None,
    ) -> Dict[str, Table]:
        """Unionable tables in *lake* for the query's schema, as candidate
        sources.  Only candidates exposing every sensitive column (after
        alignment) qualify — a source that cannot identify groups cannot
        participate in tailoring.

        *lake* may also be a :class:`~respdi.catalog.CatalogStore` (any
        object exposing ``index()``) — the pipeline then warm-starts from
        the persisted catalog, loading candidate tables lazily — or a
        plain ``{name: Table}`` mapping, which is sketched into a
        transient index under the pipeline's execution context (a fixed
        hasher seed keeps this convenience path deterministic).

        Alternatively pass ``service=`` (a
        :class:`~respdi.service.QueryService`) instead of *lake*:
        discovery then runs against the service's pinned snapshot — one
        committed catalog generation, consistent even while a writer
        refreshes — and reuses the service's warm in-memory index
        instead of re-opening the store."""
        if query is None:
            raise SpecificationError("discover_sources needs a query table")
        if service is not None:
            if lake is not None:
                raise SpecificationError(
                    "pass either lake or service=, not both"
                )
            lake = service.snapshot().index
        elif lake is None:
            raise SpecificationError(
                "discover_sources needs a lake (index, catalog, or mapping) "
                "or service="
            )
        if not isinstance(lake, DataLakeIndex) and hasattr(lake, "index"):
            lake = lake.index()
        elif not isinstance(lake, DataLakeIndex) and hasattr(lake, "items"):
            index = DataLakeIndex(rng=0)
            index.register_tables(dict(lake), context=self.execution_context)
            lake = index
        candidates = lake.unionable_tables(query, k=k)
        out: Dict[str, Table] = {}
        for candidate in candidates:
            if candidate.score < min_score:
                continue
            aligned = dict(candidate.alignment)
            if not all(col in aligned for col in self.sensitive_columns):
                continue
            source_table = lake.tables[candidate.table_name]
            rename = {src: dst for dst, src in aligned.items()}
            out[candidate.table_name] = source_table.rename(rename)
        return out

    # -- the full run -----------------------------------------------------------

    def run(
        self,
        source_tables: Dict[str, Table],
        spec: TailoringSpec,
        requirements: Sequence[RequirementCheck] = (),
        source_costs: Optional[Dict[str, float]] = None,
        budget: float = float("inf"),
        max_steps: int = 1_000_000,
        datasheet_motivation: str = "integrated via respdi pipeline",
        rng: RngLike = None,
    ) -> PipelineResult:
        """Tailor from *source_tables*, clean, audit, and document."""
        if not source_tables:
            raise EmptyInputError("no source tables supplied")
        generator = ensure_rng(rng)
        provenance: List[str] = []
        timings: List[Tuple[str, float]] = []
        costs = source_costs or {}
        sources = []
        for name in sorted(source_tables):
            table = source_tables[name]
            table.schema.require(list(self.sensitive_columns))
            sources.append(TableSource(name, table, cost=costs.get(name, 1.0)))
        provenance.append(
            f"tailoring from {len(sources)} source(s) "
            f"{[s.name for s in sources]} with policy "
            f"{type(self.policy).__name__}"
        )

        with obs.trace("pipeline.run", sources=len(sources)):
            obs.inc("pipeline.runs")

            with _stage("tailor", timings):
                tailoring_result = tailor(
                    sources, spec, self.policy, budget=budget,
                    max_steps=max_steps, rng=generator,
                )
            provenance.append(
                f"collected {len(tailoring_result.rows)} row(s) at cost "
                f"{tailoring_result.total_cost:.1f}; satisfied="
                f"{tailoring_result.satisfied}"
            )

            reference_schema: Schema = source_tables[sorted(source_tables)[0]].schema
            table = tailoring_result.collected_table(reference_schema)

            with _stage("clean", timings):
                for imputer in self.imputers:
                    before = int(table.missing_mask(imputer.column).sum())
                    table = imputer.fit_transform(table)
                    provenance.append(
                        f"imputed column {imputer.column!r} with "
                        f"{type(imputer).__name__} ({before} missing cell(s))"
                    )
            obs.inc("pipeline.rows_cleaned", len(table))

            if self.match_view is not None:
                with _stage("resolve", timings):
                    from respdi.linkage.matching import deduplicate

                    links = self.match_view.link(
                        table, context=self.execution_context
                    )
                    before_rows = len(table)
                    table = deduplicate(table, set(links.pairs))
                    provenance.append(
                        f"resolved duplicates with the "
                        f"{self.match_view.strength!r} matcher view over "
                        f"keys {list(self.match_view.key_columns)}: "
                        f"{before_rows} row(s) -> {len(table)} "
                        f"({links.num_links} link(s), "
                        f"{links.num_clusters} cluster(s))"
                    )
                obs.inc("pipeline.rows_resolved", len(table))

            audit: Optional[AuditReport] = None
            with _stage("audit", timings):
                if requirements:
                    audit = audit_requirements(table, list(requirements))
                    provenance.append(
                        f"audited {len(requirements)} requirement(s): "
                        f"{'PASS' if audit.passed else 'FAIL'}"
                    )
            if audit is not None:
                obs.inc(
                    "pipeline.audits.passed" if audit.passed
                    else "pipeline.audits.failed"
                )

            with _stage("document", timings):
                label = build_nutritional_label(
                    table,
                    self.sensitive_columns,
                    self.target_column,
                    coverage_threshold=self.coverage_threshold,
                )
                provenance.append("built nutritional label")

                limitations = []
                if tailoring_result and not tailoring_result.satisfied:
                    limitations.append(
                        f"tailoring stopped before satisfying the spec; deficits: "
                        f"{tailoring_result.deficits}"
                    )
                if label.uncovered_patterns:
                    limitations.append(
                        f"under-represented groups remain: "
                        f"{label.uncovered_patterns}"
                    )
                datasheet = build_datasheet(
                    title="respdi integrated dataset",
                    table=table,
                    motivation=datasheet_motivation,
                    collection_process=(
                        "distribution tailoring over "
                        f"{len(sources)} source(s) with policy "
                        f"{type(self.policy).__name__}"
                    ),
                    preprocessing=(
                        "; ".join(
                            type(imputer).__name__ for imputer in self.imputers
                        )
                        or "none"
                    ),
                    recommended_uses=["model training with group-aware evaluation"],
                    discouraged_uses=[
                        "inference about groups absent from the coverage report"
                    ],
                    known_limitations=(
                        limitations or ["none identified by automated audit"]
                    ),
                )
                provenance.append("built datasheet")

        provenance.append(
            "stage timings (s): "
            + " ".join(f"{name}={seconds:.4f}" for name, seconds in timings)
        )

        return PipelineResult(
            table=table,
            tailoring=tailoring_result,
            audit=audit,
            label=label,
            datasheet=datasheet,
            sources_used=[s.name for s in sources],
            provenance=provenance,
            stage_timings=timings,
        )
