"""Uniform i.i.d. sampling over multiple heterogeneous sources (§5).

The tutorial's §5 "Uniform Sampling over Data Lakes": obtain i.i.d.
samples from data scattered across sources *without centralizing it*.
Two regimes:

* **disjoint sources** — pick a source with probability proportional to
  its size, then a uniform row from it: exactly uniform over the union;
* **overlapping sources** — a record held by ``m`` sources is ``m`` times
  as likely to be drawn; with a record identity column the sampler
  applies the standard multiplicity correction (accept a drawn record
  with probability ``1/m``), restoring uniformity over the *distinct*
  union.  Multiplicities come from membership over the provided tables
  (in a real lake, from a key-to-source index).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling.acceptreject import SamplerStats
from respdi.table import Table


class UnionSampler:
    """Uniform sampler over the union of several union-compatible tables.

    With ``identity_column=None`` the union is treated as a bag
    (duplicates across sources are distinct records).  With an identity
    column, draws are corrected for multiplicity so each *distinct*
    identity is equally likely.
    """

    def __init__(
        self,
        tables: Sequence[Table],
        identity_column: Optional[str] = None,
        rng: RngLike = None,
    ) -> None:
        if not tables:
            raise SpecificationError("need at least one source table")
        schema = tables[0].schema
        for table in tables[1:]:
            if not schema.union_compatible(table.schema):
                raise SpecificationError(
                    "sources must be union-compatible; "
                    f"{schema!r} vs {table.schema!r}"
                )
        if all(len(table) == 0 for table in tables):
            raise EmptyInputError("all sources are empty")
        self.tables = list(tables)
        self.identity_column = identity_column
        self._rng = ensure_rng(rng)
        self.stats = SamplerStats()
        sizes = np.array([len(table) for table in tables], dtype=float)
        self._source_probs = sizes / sizes.sum()

        self._multiplicity: Optional[Dict[Hashable, int]] = None
        if identity_column is not None:
            schema.require([identity_column])
            multiplicity: Counter = Counter()
            for table in tables:
                for value in set(table.unique(identity_column)):
                    multiplicity[value] += 1
            if not multiplicity:
                raise EmptyInputError("identity column has no present values")
            self._multiplicity = dict(multiplicity)

    @property
    def union_size(self) -> int:
        """Number of records in the (bag or distinct) union."""
        if self._multiplicity is None:
            return sum(len(table) for table in self.tables)
        return len(self._multiplicity)

    def sample_one(self) -> Optional[Tuple[int, int]]:
        """One attempt; ``(source_index, row_index)`` or ``None`` on a
        multiplicity rejection."""
        self.stats.attempts += 1
        source = int(self._rng.choice(len(self.tables), p=self._source_probs))
        table = self.tables[source]
        if len(table) == 0:
            return None
        row = int(self._rng.integers(len(table)))
        if self._multiplicity is not None:
            identity = table.column(self.identity_column)[row]
            if identity is None:
                return None
            m = self._multiplicity.get(identity, 1)
            if m > 1 and self._rng.random() >= 1.0 / m:
                return None
        self.stats.accepted += 1
        return source, row

    def sample(self, n: int, max_attempts: Optional[int] = None) -> Table:
        """*n* uniform draws (with replacement) from the union."""
        if n < 1:
            raise SpecificationError("n must be >= 1")
        cap = max_attempts if max_attempts is not None else 100_000 + 100 * n
        picks: List[Tuple[int, int]] = []
        while len(picks) < n:
            if self.stats.attempts >= cap:
                raise EmptyInputError(
                    f"{self.stats.attempts} attempts yielded only "
                    f"{len(picks)}/{n} samples"
                )
            pick = self.sample_one()
            if pick is not None:
                picks.append(pick)
        by_source: Dict[int, List[int]] = {}
        for source, row in picks:
            by_source.setdefault(source, []).append(row)
        parts = [
            self.tables[source].take(rows) for source, rows in by_source.items()
        ]
        result = parts[0]
        for part in parts[1:]:
            result = result.concat(part)
        return result
