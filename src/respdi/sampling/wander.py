"""Wander join (Li, Wu, Yi, Zhao — SIGMOD 2016).

Wander join performs independent random walks along a join path: pick a
uniformly random tuple of the first table, then a uniformly random
*matching* tuple of the next, and so on.  Walks are **independent but
non-uniform** — a path's sampling probability is
``1/n_1 * Π 1/deg_i`` — so aggregates use the Horvitz-Thompson
correction: each successful walk contributes ``f(path) / p(path)``, each
failed walk contributes 0, and the average over walks is an unbiased
estimator of ``SUM f`` over the join.  COUNT uses ``f = 1``; AVG is the
ratio of the two estimators.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from respdi import obs
from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling.chain import ChainJoinSpec

PathExpression = Callable[[Sequence[dict]], float]


@dataclass(frozen=True)
class WanderEstimate:
    """Estimates after a number of walks."""

    walks: int
    successes: int
    count_estimate: float
    sum_estimate: float

    @property
    def avg_estimate(self) -> float:
        return self.sum_estimate / self.count_estimate if self.count_estimate else 0.0

    @property
    def success_rate(self) -> float:
        return self.successes / self.walks if self.walks else 0.0


class WanderJoin:
    """Online aggregation over a chain join via HT-corrected random walks."""

    def __init__(
        self,
        spec: ChainJoinSpec,
        expression: Optional[PathExpression] = None,
        rng: RngLike = None,
    ) -> None:
        self.spec = spec
        self.expression = expression if expression is not None else (lambda rows: 1.0)
        self._rng = ensure_rng(rng)
        self._indexes: List[Dict[Hashable, List[int]]] = []
        for i, (_, right_column) in enumerate(spec.keys):
            right = spec.tables[i + 1]
            index: Dict[Hashable, List[int]] = defaultdict(list)
            keys = right.column(right_column)
            missing = right.missing_mask(right_column)
            for j in range(len(right)):
                if not missing[j]:
                    index[keys[j]].append(j)
            self._indexes.append(dict(index))
        self._rows = [table.to_dicts() for table in spec.tables]
        if any(len(rows) == 0 for rows in self._rows):
            raise EmptyInputError("wander join needs non-empty tables")
        self._walks = 0
        self._successes = 0
        self._sum_ht = 0.0
        self._count_ht = 0.0

    def walk(self) -> Optional[Tuple[Tuple[int, ...], float]]:
        """One random walk.  Returns ``(path, inverse_probability)`` on
        success, ``None`` on a dead end; updates the running estimators
        either way."""
        self._walks += 1
        first_table_size = len(self._rows[0])
        path = [int(self._rng.integers(first_table_size))]
        inverse_probability = float(first_table_size)
        for i, (left_column, _) in enumerate(self.spec.keys):
            row = self._rows[i][path[-1]]
            key = row[left_column]
            matches = self._indexes[i].get(key, []) if key is not None else []
            if not matches:
                return None
            inverse_probability *= len(matches)
            path.append(int(matches[int(self._rng.integers(len(matches)))]))
        self._successes += 1
        rows = [self._rows[i][index] for i, index in enumerate(path)]
        value = float(self.expression(rows))
        self._sum_ht += value * inverse_probability
        self._count_ht += inverse_probability
        return tuple(path), inverse_probability

    def estimate(self) -> WanderEstimate:
        """Current Horvitz-Thompson estimates."""
        if self._walks == 0:
            return WanderEstimate(0, 0, 0.0, 0.0)
        return WanderEstimate(
            walks=self._walks,
            successes=self._successes,
            count_estimate=self._count_ht / self._walks,
            sum_estimate=self._sum_ht / self._walks,
        )

    def run(self, walks: int, record_every: int = 1) -> List[WanderEstimate]:
        """Perform *walks* walks, recording estimates every *record_every*."""
        if walks < 1:
            raise SpecificationError("walks must be >= 1")
        if record_every < 1:
            raise SpecificationError("record_every must be >= 1")
        walks_before = self._walks
        successes_before = self._successes
        trajectory: List[WanderEstimate] = []
        with obs.trace("sampling.wander.run", walks=walks):
            for index in range(walks):
                self.walk()
                if (index + 1) % record_every == 0:
                    trajectory.append(self.estimate())
        obs.inc("sampling.wander.walks", self._walks - walks_before)
        obs.inc("sampling.wander.successes", self._successes - successes_before)
        if not trajectory or trajectory[-1].walks != self._walks:
            trajectory.append(self.estimate())
        return trajectory
