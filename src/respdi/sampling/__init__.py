"""Uniform and independent sampling over joins (tutorial §3.4).

The tutorial's §3.4 narrative, implemented end to end:

* :mod:`respdi.sampling.baselines` — join-then-sample (the gold standard
  that is too expensive at scale) and sample-then-join (the strawman
  whose output is uniform over the *sampled* join but correlated and
  key-biased — the observation that started this literature);
* :mod:`respdi.sampling.acceptreject` — Chaudhuri/Motwani/Narasayya
  accept-reject sampling for two-table joins, with exact-frequency and
  upper-bound-frequency variants;
* :mod:`respdi.sampling.chain` — the generic weighted-sampling framework
  of Zhao et al. (SIGMOD 2018) for multi-way chain joins: exact join-count
  weights (no rejection) or degree upper bounds (rejection), unifying the
  Chaudhuri scheme as its two-table instantiation;
* :mod:`respdi.sampling.ripple` — ripple join online aggregation
  (Luo et al. 2002 square ripple);
* :mod:`respdi.sampling.wander` — wander join (Li et al., SIGMOD 2016):
  independent but non-uniform path samples, Horvitz-Thompson corrected.
"""

from respdi.sampling.acceptreject import AcceptRejectJoinSampler
from respdi.sampling.baselines import full_join, join_then_sample, sample_then_join
from respdi.sampling.chain import ChainJoinSampler, ChainJoinSpec
from respdi.sampling.ripple import OnlineEstimate, RippleJoin
from respdi.sampling.union_sampling import UnionSampler
from respdi.sampling.wander import WanderJoin

__all__ = [
    "full_join",
    "join_then_sample",
    "sample_then_join",
    "AcceptRejectJoinSampler",
    "ChainJoinSpec",
    "ChainJoinSampler",
    "RippleJoin",
    "OnlineEstimate",
    "WanderJoin",
    "UnionSampler",
]
