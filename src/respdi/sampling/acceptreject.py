"""Accept-reject sampling over a two-table join (Chaudhuri et al., 1999).

To draw one uniform, independent tuple of ``R ⋈ S``:

1. draw ``r`` uniformly from R;
2. accept ``r`` with probability ``m_S(r.key) / M`` where ``m_S(k)`` is
   the number of S-tuples with key ``k`` and ``M = max_k m_S(k)``;
3. on acceptance, draw uniformly among the S-tuples matching ``r``.

Each accepted draw is then uniform over the join (every join tuple has
probability ``1/(|R| * M)`` of being produced per attempt) and draws are
mutually independent.

Two statistics regimes are supported, mirroring the paper's discussion:

* ``"exact"`` — full frequency table of S is known (step 2 uses the true
  ``m_S``);
* ``"upper_bound"`` — only an upper bound ``M̂ >= M`` is known; the
  acceptance test ``m_S(r.key) / M̂`` still yields uniform samples, just
  with a lower acceptance rate (the latency/throughput trade-off the
  tutorial attributes to the Zhao et al. framework).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from respdi import obs
from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


@dataclass
class SamplerStats:
    """Bookkeeping for acceptance-rate experiments."""

    attempts: int = 0
    accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.attempts if self.attempts else 0.0


class AcceptRejectJoinSampler:
    """Uniform independent sampler over ``left ⋈ right`` on one key column."""

    def __init__(
        self,
        left: Table,
        right: Table,
        on: str,
        statistics: str = "exact",
        frequency_upper_bound: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        if statistics not in ("exact", "upper_bound"):
            raise SpecificationError(
                f"unknown statistics regime {statistics!r}; "
                "expected 'exact' or 'upper_bound'"
            )
        left.schema.require([on])
        right.schema.require([on])
        self.left = left
        self.right = right
        self.on = on
        self.statistics = statistics
        self._rng = ensure_rng(rng)
        self.stats = SamplerStats()

        self._right_index: Dict[Hashable, List[int]] = defaultdict(list)
        right_keys = right.column(on)
        right_missing = right.missing_mask(on)
        for j in range(len(right)):
            if not right_missing[j]:
                self._right_index[right_keys[j]].append(j)
        if not self._right_index:
            raise EmptyInputError("right table has no present join keys")
        true_max = max(len(v) for v in self._right_index.values())
        if statistics == "exact":
            self._max_frequency = true_max
        else:
            if frequency_upper_bound is None:
                raise SpecificationError(
                    "upper_bound statistics require frequency_upper_bound"
                )
            if frequency_upper_bound < true_max:
                raise SpecificationError(
                    f"frequency_upper_bound={frequency_upper_bound} is below the "
                    f"true maximum fanout {true_max}; samples would be non-uniform"
                )
            self._max_frequency = frequency_upper_bound

        self._left_present = np.flatnonzero(~left.missing_mask(on))
        if len(self._left_present) == 0:
            raise EmptyInputError("left table has no present join keys")

    def sample_one(self) -> Optional[Tuple[int, int]]:
        """One attempt; returns ``(left_index, right_index)`` or ``None``
        on rejection."""
        self.stats.attempts += 1
        i = int(self._rng.choice(self._left_present))
        key = self.left.column(self.on)[i]
        matches = self._right_index.get(key, [])
        if not matches:
            return None
        if self._rng.random() >= len(matches) / self._max_frequency:
            return None
        j = int(matches[int(self._rng.integers(len(matches)))])
        self.stats.accepted += 1
        return i, j

    def sample(self, n: int, max_attempts: Optional[int] = None) -> Table:
        """*n* uniform independent join tuples as a table.

        ``max_attempts`` (default ``500 * n / expected_rate``-free cap of
        ``200_000 + 1000 * n``) guards against degenerate inputs where
        acceptance is near zero.
        """
        if n < 1:
            raise SpecificationError("n must be >= 1")
        cap = max_attempts if max_attempts is not None else 200_000 + 1000 * n
        pairs: List[Tuple[int, int]] = []
        attempts = 0
        try:
            with obs.trace("sampling.acceptreject.sample", n=n):
                while len(pairs) < n:
                    if attempts >= cap:
                        raise EmptyInputError(
                            f"accept-reject made {attempts} attempts for only "
                            f"{len(pairs)}/{n} samples; join may be empty or "
                            "the upper bound far too loose"
                        )
                    attempts += 1
                    pair = self.sample_one()
                    if pair is not None:
                        pairs.append(pair)
        finally:
            obs.inc("sampling.acceptreject.attempts", attempts)
            obs.inc("sampling.acceptreject.accepted", len(pairs))
        return self._materialize(pairs)

    def _materialize(self, pairs: Sequence[Tuple[int, int]]) -> Table:
        left_part = self.left.take([i for i, _ in pairs])
        right_part = self.right.take([j for _, j in pairs]).drop([self.on])
        rename = {
            name: name + "_r"
            for name in right_part.column_names
            if name in left_part.schema
        }
        if rename:
            right_part = right_part.rename(rename)
        columns = {name: left_part.column(name) for name in left_part.column_names}
        specs = list(left_part.schema) + list(right_part.schema)
        for name in right_part.column_names:
            columns[name] = right_part.column(name)
        from respdi.table.schema import Schema

        return Table(Schema(specs), columns)
