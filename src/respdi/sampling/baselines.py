"""Baseline strategies for sampling from a join.

``join_then_sample`` is the correctness oracle: materialize the full
join, then sample uniformly.  ``sample_then_join`` is the classical
strawman — ``sample(R) ⋈ sample(S) ≠ sample(R ⋈ S)`` — kept here so the
benchmark can *show* the bias the tutorial describes: high-fanout keys
are under-represented relative to their share of the join, and the
surviving tuples are correlated.
"""

from __future__ import annotations

from typing import Sequence

from respdi._rng import RngLike, ensure_rng
from respdi.errors import SpecificationError
from respdi.table import Table


def full_join(left: Table, right: Table, on: Sequence[str]) -> Table:
    """The materialized inner equi-join (oracle; quadratic in fanout)."""
    return left.join(right, on=on, how="inner")


def join_then_sample(
    left: Table, right: Table, on: Sequence[str], n: int, rng: RngLike = None
) -> Table:
    """Uniform sample of the full join result (with replacement).

    This is exactly what the cheap samplers try to emulate without paying
    for the full join.
    """
    generator = ensure_rng(rng)
    joined = full_join(left, right, on)
    if len(joined) == 0:
        raise SpecificationError("join result is empty; nothing to sample")
    return joined.sample(n, generator, replace=True)


def sample_then_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    left_fraction: float,
    right_fraction: float,
    rng: RngLike = None,
) -> Table:
    """Sample each input independently, then join the samples (biased).

    A key with fanout ``(a, b)`` contributes ``a*b`` join tuples but
    survives two-sided sampling with probability proportional to the
    *product of sample inclusion*, so its expected share in the output is
    not its share of the join — the strawman's bias.
    """
    for fraction in (left_fraction, right_fraction):
        if not 0.0 < fraction <= 1.0:
            raise SpecificationError(f"sample fraction {fraction} not in (0, 1]")
    generator = ensure_rng(rng)
    left_sample = left.sample(
        max(1, int(round(left_fraction * len(left)))), generator, replace=False
    )
    right_sample = right.sample(
        max(1, int(round(right_fraction * len(right)))), generator, replace=False
    )
    return full_join(left_sample, right_sample, on)
