"""Generic weighted sampling over multi-way chain joins (Zhao et al. 2018).

A chain join ``T1 ⋈ T2 ⋈ ... ⋈ Tk`` (adjacent tables joined on one key
pair each) admits uniform independent sampling in two regimes:

* ``"exact"`` — a dynamic program computes, for every tuple, the exact
  number of join results it participates in downstream
  (``c_i(t) = Σ c_{i+1}(match)``, ``c_k = 1``).  Sampling then walks the
  chain choosing each next tuple with probability proportional to its
  count: every join result is produced with identical probability and
  **no attempt is ever rejected**.
* ``"upper_bound"`` — only per-step maximum fanouts are known.  The walk
  picks the next tuple uniformly among matches but accepts each step
  with probability ``deg / max_deg``; a failed acceptance rejects the
  whole walk.  Each surviving walk is uniform over the join.  Acceptance
  decreases with the product of fanout skews — the latency/throughput
  trade-off the framework exposes.

The two-table ``"exact"`` instantiation is exactly the Chaudhuri et al.
scheme; this module is the multi-way generalization the tutorial credits
to Zhao et al.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling.acceptreject import SamplerStats
from respdi.table import Table
from respdi.table.schema import Schema


@dataclass(frozen=True)
class ChainJoinSpec:
    """A chain join: ``tables[i]`` joins ``tables[i+1]`` on
    ``keys[i] = (left_column, right_column)``."""

    tables: Tuple[Table, ...]
    keys: Tuple[Tuple[str, str], ...]

    def __init__(self, tables: Sequence[Table], keys: Sequence[Tuple[str, str]]):
        if len(tables) < 2:
            raise SpecificationError("a chain join needs at least two tables")
        if len(keys) != len(tables) - 1:
            raise SpecificationError(
                f"{len(tables)} tables need {len(tables) - 1} key pairs; "
                f"got {len(keys)}"
            )
        for i, (left_column, right_column) in enumerate(keys):
            tables[i].schema.require([left_column])
            tables[i + 1].schema.require([right_column])
        object.__setattr__(self, "tables", tuple(tables))
        object.__setattr__(self, "keys", tuple((a, b) for a, b in keys))

    def __len__(self) -> int:
        return len(self.tables)


class ChainJoinSampler:
    """Uniform independent sampler over a chain join."""

    def __init__(
        self,
        spec: ChainJoinSpec,
        statistics: str = "exact",
        rng: RngLike = None,
    ) -> None:
        if statistics not in ("exact", "upper_bound"):
            raise SpecificationError(
                f"unknown statistics regime {statistics!r}"
            )
        self.spec = spec
        self.statistics = statistics
        self._rng = ensure_rng(rng)
        self.stats = SamplerStats()

        # Match indexes: for each hop i, map right-table key value -> rows.
        self._indexes: List[Dict[Hashable, List[int]]] = []
        for i, (_, right_column) in enumerate(spec.keys):
            right = spec.tables[i + 1]
            index: Dict[Hashable, List[int]] = defaultdict(list)
            keys = right.column(right_column)
            missing = right.missing_mask(right_column)
            for j in range(len(right)):
                if not missing[j]:
                    index[keys[j]].append(j)
            self._indexes.append(dict(index))

        if statistics == "exact":
            self._counts = self._exact_counts()
            self._first_weights = self._counts[0].astype(float)
            total = self._first_weights.sum()
            if total <= 0:
                raise EmptyInputError("join result is empty; nothing to sample")
            self._first_probs = self._first_weights / total
            self.join_size = float(total)
        else:
            self._max_deg = [
                max((len(rows) for rows in index.values()), default=0)
                for index in self._indexes
            ]
            if any(m == 0 for m in self._max_deg):
                raise EmptyInputError("some hop has no matching keys at all")
            self.join_size = None

    def _exact_counts(self) -> List[np.ndarray]:
        """Backward DP: counts[i][row] = join completions from that row."""
        spec = self.spec
        counts: List[np.ndarray] = [None] * len(spec)  # type: ignore[list-item]
        counts[-1] = np.ones(len(spec.tables[-1]), dtype=np.int64)
        for i in range(len(spec) - 2, -1, -1):
            left_column, _ = spec.keys[i]
            index = self._indexes[i]
            next_counts = counts[i + 1]
            key_sums: Dict[Hashable, int] = {
                key: int(next_counts[rows].sum()) for key, rows in index.items()
            }
            left = spec.tables[i]
            left_keys = left.column(left_column)
            missing = left.missing_mask(left_column)
            out = np.zeros(len(left), dtype=np.int64)
            for r in range(len(left)):
                if not missing[r]:
                    out[r] = key_sums.get(left_keys[r], 0)
            counts[i] = out
        return counts

    # -- sampling -------------------------------------------------------------

    def sample_one(self) -> Optional[Tuple[int, ...]]:
        """One attempt; a tuple of per-table row indices, or ``None`` on
        rejection (``"upper_bound"`` regime only — exact never rejects)."""
        self.stats.attempts += 1
        if self.statistics == "exact":
            path = self._sample_exact()
        else:
            path = self._sample_bounded()
        if path is not None:
            self.stats.accepted += 1
        return path

    def _sample_exact(self) -> Tuple[int, ...]:
        spec = self.spec
        first = int(self._rng.choice(len(self._first_probs), p=self._first_probs))
        path = [first]
        for i, (left_column, _) in enumerate(spec.keys):
            current_table = spec.tables[i]
            key = current_table.column(left_column)[path[-1]]
            rows = self._indexes[i][key]
            weights = self._counts[i + 1][rows].astype(float)
            probs = weights / weights.sum()
            path.append(int(rows[int(self._rng.choice(len(rows), p=probs))]))
        return tuple(path)

    def _sample_bounded(self) -> Optional[Tuple[int, ...]]:
        spec = self.spec
        first_table = spec.tables[0]
        path = [int(self._rng.integers(len(first_table)))]
        for i, (left_column, _) in enumerate(spec.keys):
            current_table = spec.tables[i]
            key = current_table.column(left_column)[path[-1]]
            if key is None:
                return None
            rows = self._indexes[i].get(key, [])
            degree = len(rows)
            if degree == 0:
                return None
            if self._rng.random() >= degree / self._max_deg[i]:
                return None
            path.append(int(rows[int(self._rng.integers(degree))]))
        return tuple(path)

    def sample(self, n: int, max_attempts: Optional[int] = None) -> List[Tuple[int, ...]]:
        """*n* uniform independent join paths (per-table row indices)."""
        if n < 1:
            raise SpecificationError("n must be >= 1")
        cap = max_attempts if max_attempts is not None else 200_000 + 1000 * n
        paths: List[Tuple[int, ...]] = []
        while len(paths) < n:
            if self.stats.attempts >= cap:
                raise EmptyInputError(
                    f"{self.stats.attempts} attempts yielded only "
                    f"{len(paths)}/{n} samples"
                )
            path = self.sample_one()
            if path is not None:
                paths.append(path)
        return paths

    def materialize(self, paths: Sequence[Tuple[int, ...]]) -> Table:
        """Join paths as a flat table; clashing column names get ``_t{i}``."""
        spec = self.spec
        parts = [
            spec.tables[i].take([path[i] for path in paths])
            for i in range(len(spec))
        ]
        specs = []
        columns = {}
        used = set()
        for i, part in enumerate(parts):
            for column_spec in part.schema:
                name = column_spec.name
                if name in used:
                    name = f"{name}_t{i}"
                used.add(name)
                specs.append(type(column_spec)(name, column_spec.ctype))
                columns[name] = part.column(column_spec.name)
        return Table(Schema(specs), columns)
