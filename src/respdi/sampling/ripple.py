"""Ripple join online aggregation (Haas & Hellerstein; Luo et al. 2002).

The ripple join draws tuples from both inputs in random order and joins
each newcomer against everything seen from the other side, so after
``(k_left, k_right)`` draws the seen-block join is a uniform (though not
independent) sample of the full join.  Aggregates over the seen block,
scaled by ``(n_left * n_right) / (k_left * k_right)``, give anytime
estimates that converge to the exact answer when both inputs are
exhausted — the "online aggregation" usage the tutorial describes.

Supported aggregates: COUNT, SUM and AVG of a caller-supplied expression
over joined row pairs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table

Expression = Callable[[dict, dict], float]


@dataclass(frozen=True)
class OnlineEstimate:
    """One point of an online-aggregation trajectory."""

    tuples_consumed: int
    count_estimate: float
    sum_estimate: float

    @property
    def avg_estimate(self) -> float:
        return self.sum_estimate / self.count_estimate if self.count_estimate else 0.0


class RippleJoin:
    """Square ripple join over ``left ⋈ right`` on one key column.

    ``expression(left_row, right_row)`` supplies the SUM/AVG operand;
    the default counts (expression ``1``), so SUM == COUNT.
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        on: str,
        expression: Optional[Expression] = None,
        rng: RngLike = None,
    ) -> None:
        left.schema.require([on])
        right.schema.require([on])
        if len(left) == 0 or len(right) == 0:
            raise EmptyInputError("ripple join needs non-empty inputs")
        self.left = left
        self.right = right
        self.on = on
        self.expression = expression if expression is not None else (lambda a, b: 1.0)
        generator = ensure_rng(rng)
        self._left_order = list(generator.permutation(len(left)))
        self._right_order = list(generator.permutation(len(right)))
        self._seen_left: Dict[Hashable, List[int]] = defaultdict(list)
        self._seen_right: Dict[Hashable, List[int]] = defaultdict(list)
        self._k_left = 0
        self._k_right = 0
        self._running_sum = 0.0
        self._running_count = 0
        self._left_rows = left.to_dicts()
        self._right_rows = right.to_dicts()

    @property
    def exhausted(self) -> bool:
        return self._k_left == len(self.left) and self._k_right == len(self.right)

    def _absorb_left(self) -> None:
        i = self._left_order[self._k_left]
        self._k_left += 1
        row = self._left_rows[i]
        key = row[self.on]
        if key is None:
            return
        self._seen_left[key].append(i)
        for j in self._seen_right.get(key, ()):
            self._running_count += 1
            self._running_sum += float(self.expression(row, self._right_rows[j]))

    def _absorb_right(self) -> None:
        j = self._right_order[self._k_right]
        self._k_right += 1
        row = self._right_rows[j]
        key = row[self.on]
        if key is None:
            return
        self._seen_right[key].append(j)
        for i in self._seen_left.get(key, ()):
            self._running_count += 1
            self._running_sum += float(self.expression(self._left_rows[i], row))

    def step(self) -> OnlineEstimate:
        """Consume one tuple (alternating sides; square ripple) and return
        the updated estimate."""
        if self.exhausted:
            raise EmptyInputError("both inputs are exhausted")
        take_left = self._k_left <= self._k_right and self._k_left < len(self.left)
        if take_left:
            self._absorb_left()
        elif self._k_right < len(self.right):
            self._absorb_right()
        else:
            self._absorb_left()
        return self.estimate()

    def estimate(self) -> OnlineEstimate:
        """Current scaled estimate of COUNT and SUM over the full join."""
        if self._k_left == 0 or self._k_right == 0:
            scale = 0.0
        else:
            scale = (len(self.left) * len(self.right)) / (
                self._k_left * self._k_right
            )
        return OnlineEstimate(
            tuples_consumed=self._k_left + self._k_right,
            count_estimate=self._running_count * scale,
            sum_estimate=self._running_sum * scale,
        )

    def run(self, steps: Optional[int] = None, record_every: int = 1) -> List[OnlineEstimate]:
        """Run *steps* steps (default: to exhaustion), recording estimates
        every *record_every* steps (the final estimate is always recorded)."""
        if record_every < 1:
            raise SpecificationError("record_every must be >= 1")
        budget = steps if steps is not None else (
            len(self.left) + len(self.right) - self._k_left - self._k_right
        )
        trajectory: List[OnlineEstimate] = []
        for step_index in range(budget):
            if self.exhausted:
                break
            estimate = self.step()
            if (step_index + 1) % record_every == 0:
                trajectory.append(estimate)
        if not trajectory or trajectory[-1].tuples_consumed != (
            self._k_left + self._k_right
        ):
            trajectory.append(self.estimate())
        return trajectory
