"""respdi — Responsible Data Integration.

A library reproduction of the SIGMOD 2022 tutorial *"Responsible Data
Integration: Next-generation Challenges"* (Nargesian, Asudeh, Jagadish).
It implements the tutorial's requirement framework (§2), the integration
tasks it revisits (§3), the distribution/fairness-aware integration
techniques it surveys (§4), and the concretely specifiable extensions it
lists as opportunities (§5).

Entry points:

* :mod:`respdi.table` — relational substrate (schemas, predicates, joins).
* :mod:`respdi.datagen` — synthetic populations, skewed sources, data lakes.
* :mod:`respdi.requirements` — the five responsible-AI data requirements
  as auditable checks.
* :mod:`respdi.discovery` — dataset search (sketches, LSH Ensemble, union
  search, join-correlation queries).
* :mod:`respdi.catalog` — persistent, checksummed catalog of discovery
  state with warm-start index rehydration.
* :mod:`respdi.profiling` — profiles, nutritional labels, datasheets.
* :mod:`respdi.coverage` — maximal uncovered patterns, coverage enhancement.
* :mod:`respdi.cleaning` — imputation, error repair, imputation fairness.
* :mod:`respdi.sampling` — uniform & independent sampling over joins,
  online aggregation.
* :mod:`respdi.tailoring` — data distribution tailoring and extensions.
* :mod:`respdi.entitycollection` — distribution-aware crowd collection.
* :mod:`respdi.acquisition` — data-market / slice-based acquisition.
* :mod:`respdi.fairqueries` — fairness-aware range queries and
  coverage-based rewriting.
* :mod:`respdi.ml` — minimal models, fairness metrics, interventions.
* :mod:`respdi.pipeline` — the end-to-end responsible integration pipeline.
* :mod:`respdi.parallel` — the deterministic fan-out engine
  (serial/threads/processes backends with byte-identical outputs).
* :mod:`respdi.obs` — metrics, tracing spans, and instrumentation
  decorators (off by default; ``obs.enable()`` turns them on).
* :mod:`respdi.service` — the concurrent read path: pinned snapshots,
  a generation-keyed result cache, and the ``respdi-catalog serve``
  query front-end.
* :mod:`respdi.ingest` — the continuous ingestion daemon: a
  content-fingerprint source watcher and background refresh writer
  keeping the catalog current while readers keep answering
  (``respdi-catalog watch``).
"""

from respdi.catalog import CatalogStore, load_catalog_index
from respdi.parallel import ExecutionContext
from respdi.pipeline import PipelineResult, ResponsibleIntegrationPipeline
from respdi.service import QueryService
from respdi.table import (
    MISSING,
    ColumnSpec,
    ColumnType,
    Schema,
    Table,
)

__version__ = "1.0.0"

__all__ = [
    "ColumnSpec",
    "ColumnType",
    "Schema",
    "Table",
    "MISSING",
    "CatalogStore",
    "ExecutionContext",
    "QueryService",
    "load_catalog_index",
    "PipelineResult",
    "ResponsibleIntegrationPipeline",
    "__version__",
]
