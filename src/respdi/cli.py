"""Command-line auditing: a nutritional label for any CSV.

Usage::

    python -m respdi.cli data.csv --sensitive race,gender [--target y]
        [--coverage-threshold 20] [--json label.json] [--audit]

Reads a CSV (written by :func:`respdi.table.write_csv`, or any CSV given
``--types``), prints the MithraLabel-style nutritional label, optionally
runs the §2 requirement audit, and optionally writes the label as JSON.
The exit code is 0 when no audit was requested or the audit passed, and
2 when the audit failed — so the tool drops into CI pipelines directly.

``--metrics`` enables the :mod:`respdi.obs` instrumentation layer and
appends a JSON snapshot of the process-global metrics registry to the
output.  Because the registry is process-global, a program that runs the
integration pipeline and then invokes :func:`main` in-process gets one
combined snapshot covering discovery, tailoring, and pipeline metrics
(see ``examples/observability.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from respdi import obs
from respdi.errors import RespdiError
from respdi.profiling import build_nutritional_label, dump_json
from respdi.requirements import (
    CompletenessCorrectnessRequirement,
    GroupRepresentationRequirement,
    audit_requirements,
)
from respdi.table import ColumnType, Schema, read_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="respdi-audit",
        description="Audit a CSV for responsible-AI data requirements.",
    )
    parser.add_argument("csv", help="input CSV path")
    parser.add_argument(
        "--sensitive",
        required=True,
        help="comma-separated sensitive column names",
    )
    parser.add_argument(
        "--target", default=None, help="target/label column (numeric 0/1)"
    )
    parser.add_argument(
        "--types",
        default=None,
        help=(
            "comma-separated column types (categorical|numeric) for CSVs "
            "without an embedded #types: header; must match the header order"
        ),
    )
    parser.add_argument(
        "--coverage-threshold",
        type=int,
        default=20,
        help="minimum rows per group for coverage (default 20)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the requirement audit (exit 2 on failure)",
    )
    parser.add_argument(
        "--max-missing-rate",
        type=float,
        default=0.05,
        help="completeness bound for --audit (default 0.05)",
    )
    parser.add_argument(
        "--json", default=None, help="also write the label as JSON here"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable instrumentation and print a JSON metrics snapshot",
    )
    match = parser.add_argument_group(
        "matching strengths",
        "compare Exact/Normalized/Fuzzy matcher views against a gold "
        "entity column (see respdi.linkage.strength_eval)",
    )
    match.add_argument(
        "--match-eval",
        action="store_true",
        help="evaluate matcher strength views against --entity-column",
    )
    match.add_argument(
        "--entity-column",
        default="_entity",
        help="gold entity-id column for --match-eval (default _entity)",
    )
    match.add_argument(
        "--match-keys",
        default=None,
        help="comma-separated key columns the matcher views block/compare on",
    )
    match.add_argument(
        "--match-strengths",
        default="exact,normalized,fuzzy",
        help="comma-separated subsequence of exact,normalized,fuzzy",
    )
    match.add_argument(
        "--match-threshold",
        type=float,
        default=0.85,
        help="fuzzy-view similarity threshold (default 0.85)",
    )
    match.add_argument(
        "--match-coverage-threshold",
        type=int,
        default=5,
        help="min entities per group for match coverage MUPs (default 5)",
    )
    match.add_argument(
        "--match-json",
        default=None,
        help="also write the strength-eval report payload as JSON here",
    )
    return parser


def _load_table(path: str, types: Optional[str]):
    if types is None:
        return read_csv(path)
    declared = [t.strip() for t in types.split(",")]
    with open(path) as handle:
        header = handle.readline().rstrip("\n").split(",")
    if len(declared) != len(header):
        raise RespdiError(
            f"--types lists {len(declared)} types for {len(header)} columns"
        )
    schema = Schema([(name, ColumnType(t)) for name, t in zip(header, declared)])
    return read_csv(path, schema=schema)


def _print_metrics() -> None:
    print("\n=== metrics ===")
    print(obs.global_registry().to_json(indent=2))
    _print_ingest_health()
    _print_serve_health()


def _print_ingest_health() -> None:
    """Summarize ingestion-daemon metrics when any were recorded.

    The snapshot above already contains every ``ingest.*`` metric; this
    block pulls the daemon-health vitals out into one glanceable block
    so an operator auditing a lake that is ingested in-process (see
    ``respdi.ingest``) does not have to grep the raw JSON.
    """
    snapshot = obs.global_registry().snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    names = [
        name
        for name in list(counters) + list(gauges)
        if name.startswith("ingest.")
    ]
    if not names:
        return
    print("\n=== ingest daemon health ===")
    for counter in (
        "ingest.cycles",
        "ingest.scans",
        "ingest.tables_added",
        "ingest.tables_refreshed",
        "ingest.tables_removed",
    ):
        if counter in counters:
            print(f"{counter}: {counters[counter]:g}")
    if "ingest.lag_seconds" in gauges:
        print(f"ingest.lag_seconds: {gauges['ingest.lag_seconds']:.3f}")
    if "catalog.generation" in gauges:
        print(f"catalog.generation: {gauges['catalog.generation']:g}")


def _print_serve_health() -> None:
    """Summarize serve-path metrics when any were recorded.

    A process that ran the socket server (or the stdin serve loop)
    in-process leaves ``serve.*`` counters and per-kind / per-tenant
    ``serve.latency.*`` histograms in the registry; this block renders
    the admission ledger and p50/p99 latencies as one glanceable table
    instead of raw JSON.
    """
    snapshot = obs.global_registry().snapshot()
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    latency = {
        name: summary
        for name, summary in histograms.items()
        if name.startswith("serve.latency.")
    }
    serve_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith("serve.") or name.startswith("service.cache.")
        or name.startswith("service.pcache.")
    }
    if not latency and not serve_counters:
        return
    print("\n=== serve health ===")
    for name in (
        "serve.requests",
        "serve.admitted",
        "serve.rejected.quota",
        "serve.rejected.inflight",
        "service.cache.hit",
        "service.cache.miss",
        "service.pcache.hit",
        "service.pcache.miss",
        "service.pcache.corrupt",
    ):
        if name in serve_counters:
            print(f"{name}: {serve_counters[name]:g}")
    for name in sorted(latency):
        summary = latency[name]
        print(
            f"{name}: n={summary['count']:g} "
            f"p50={summary['p50'] * 1000:.2f}ms "
            f"p99={summary['p99'] * 1000:.2f}ms "
            f"max={summary['max'] * 1000:.2f}ms"
        )


def _run_match_eval(table, sensitive: List[str], args) -> None:
    """Run the matcher-strength harness and print/dump its report."""
    import json as _json

    from respdi.linkage.strength_eval import evaluate_strengths

    if not args.match_keys:
        raise RespdiError("--match-eval requires --match-keys")
    keys = [k.strip() for k in args.match_keys.split(",") if k.strip()]
    strengths = [
        s.strip() for s in args.match_strengths.split(",") if s.strip()
    ]
    group_columns = [
        name for name in sensitive if name in set(table.column_names)
    ]
    with obs.trace("cli.match_eval", strengths=",".join(strengths)):
        report = evaluate_strengths(
            table,
            entity_column=args.entity_column,
            key_columns=keys,
            group_columns=group_columns,
            strengths=strengths,
            threshold=args.match_threshold,
            coverage_threshold=args.match_coverage_threshold,
        )
    print()
    print(report.render())
    if args.match_json:
        with open(args.match_json, "w") as handle:
            _json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nstrength report written to {args.match_json}")


def catalog_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``respdi-catalog`` (delegates to respdi.catalog.cli)."""
    from respdi.catalog.cli import main as _catalog_main

    return _catalog_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.metrics:
        obs.enable()
        obs.inc("cli.runs")
    sensitive: List[str] = [s.strip() for s in args.sensitive.split(",") if s.strip()]
    try:
        with obs.trace("cli.load_and_label", csv=args.csv):
            table = _load_table(args.csv, args.types)
            label = build_nutritional_label(
                table,
                sensitive,
                target_column=args.target,
                coverage_threshold=args.coverage_threshold,
            )
    except (RespdiError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(label.render())
    if args.json:
        dump_json(label, args.json)
        print(f"\nlabel written to {args.json}")

    if args.match_eval:
        try:
            _run_match_eval(table, sensitive, args)
        except (RespdiError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if not args.audit:
        if args.metrics:
            _print_metrics()
        return 0
    checks = [
        GroupRepresentationRequirement(
            tuple(sensitive), threshold=args.coverage_threshold
        ),
        CompletenessCorrectnessRequirement(
            list(table.column_names),
            tuple(sensitive),
            max_missing_rate=args.max_missing_rate,
            max_group_missing_rate=2 * args.max_missing_rate,
        ),
    ]
    with obs.trace("cli.audit"):
        audit = audit_requirements(table, checks)
    print()
    print(audit.render())
    if args.metrics:
        _print_metrics()
    return 0 if audit.passed else 2


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
