"""The in-memory, column-oriented :class:`Table`.

Storage model
-------------
* categorical columns: ``numpy`` object arrays; missing value is ``None``;
* numeric columns: ``float64`` arrays; missing value is ``NaN``.

Tables are immutable by convention: every operation returns a new table
(columns may share buffers when safe — callers must not mutate arrays
returned by :meth:`Table.column`).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SchemaError, SpecificationError
from respdi.table.hashing import object_payload_nbytes
from respdi.table.predicates import Predicate
from respdi.table.schema import ColumnSpec, ColumnType, Schema

#: Canonical missing-value marker accepted in row-based constructors for
#: both column types (stored as ``None`` / ``NaN`` internally).
MISSING = None


def _readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writable view of *array* (the parent stays writable).

    Zero-copy slicing hands out shared buffers; the read-only flag is
    the copy-on-write guard — any mutation attempt through the view
    raises instead of silently corrupting every table sharing it.
    """
    view = array[:]
    view.flags.writeable = False
    return view


def _coerce_column(spec: ColumnSpec, values: Sequence) -> np.ndarray:
    """Build the storage array for one column, normalizing missing values."""
    if spec.is_numeric:
        out = np.empty(len(values), dtype=float)
        for i, value in enumerate(values):
            if value is None:
                out[i] = np.nan
            else:
                try:
                    out[i] = float(value)
                except (TypeError, ValueError):
                    raise SchemaError(
                        f"column {spec.name!r} is numeric but got "
                        f"non-numeric value {value!r}"
                    ) from None
        return out
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            out[i] = None
        else:
            out[i] = value
    return out


class Table:
    """An immutable, schema-typed, column-oriented relation."""

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence]) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        extra = set(columns) - set(schema.names)
        missing = set(schema.names) - set(columns)
        if extra or missing:
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"unexpected={sorted(extra)})"
            )
        lengths = {name: len(columns[name]) for name in schema.names}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"column lengths disagree: {lengths}")
        self._schema = schema
        self._columns: Dict[str, np.ndarray] = {}
        for spec in schema:
            values = columns[spec.name]
            if isinstance(values, np.ndarray) and (
                (spec.is_numeric and values.dtype == float)
                or (spec.is_categorical and values.dtype == object)
            ):
                self._columns[spec.name] = values
            else:
                self._columns[spec.name] = _coerce_column(spec, list(values))

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        return cls(schema, {name: [] for name in schema.names})

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from row tuples ordered like the schema."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        materialized = [tuple(row) for row in rows]
        width = len(schema)
        for i, row in enumerate(materialized):
            if len(row) != width:
                raise SchemaError(
                    f"row {i} has {len(row)} values; schema has {width} columns"
                )
        columns = {
            name: [row[j] for row in materialized]
            for j, name in enumerate(schema.names)
        }
        return cls(schema, columns)

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[Mapping]) -> "Table":
        """Build a table from dict records (missing keys become MISSING)."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = (
            tuple(record.get(name, MISSING) for name in schema.names)
            for record in records
        )
        return cls.from_rows(schema, rows)

    # -- basic accessors --------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        if not self._schema.names:
            return 0
        return len(self._columns[self._schema.names[0]])

    @property
    def num_rows(self) -> int:
        return len(self)

    def column(self, name: str) -> np.ndarray:
        """The storage array for *name* (do not mutate)."""
        self._schema.require([name])
        return self._columns[name]

    def missing_mask(self, name: str) -> np.ndarray:
        """Boolean mask of rows whose value in *name* is missing."""
        spec = self._schema[name]
        values = self._columns[name]
        if spec.is_numeric:
            return np.isnan(values)
        return np.array([value is None for value in values], dtype=bool)

    def row(self, index: int) -> Tuple:
        """Row *index* as a tuple ordered like the schema."""
        n = len(self)
        if not -n <= index < n:
            raise IndexError(f"row index {index} out of range for {n} rows")
        return tuple(self._columns[name][index] for name in self._schema.names)

    def iter_rows(self) -> Iterator[Tuple]:
        names = self._schema.names
        if not names or len(self) == 0:
            return
        # list(array) unpacks each column once (the elements are the very
        # same objects/np-scalars per-index access yields) instead of
        # paying numpy indexing per cell.
        columns = [list(self._columns[name]) for name in names]
        yield from zip(*columns)

    def to_dicts(self) -> List[Dict[str, object]]:
        names = self._schema.names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def memory_usage(self, deep: bool = False) -> Dict[str, int]:
        """Per-column storage bytes (buffer extent each column views).

        With ``deep=True``, categorical columns also count the payload of
        the python objects they reference (``sys.getsizeof`` once per
        distinct object); numeric columns carry their cells inline, so
        deep adds nothing for them.
        """
        usage: Dict[str, int] = {}
        for spec in self._schema:
            array = self._columns[spec.name]
            nbytes = int(array.nbytes)
            if deep and spec.is_categorical:
                nbytes += object_payload_nbytes(array)
            usage[spec.name] = nbytes
        return usage

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={len(self)})"

    def equals(self, other: "Table") -> bool:
        """Exact equality of schema and cell values (NaN == NaN)."""
        if not isinstance(other, Table) or self._schema != other._schema:
            return False
        if len(self) != len(other):
            return False
        for spec in self._schema:
            a = self._columns[spec.name]
            b = other._columns[spec.name]
            if spec.is_numeric:
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    # -- row-set operations ------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at *indices*, in order (duplicates allowed).

        A contiguous ascending run (``head``, window scans) returns
        zero-copy read-only slice views; anything else falls back to
        fancy-indexed copies.
        """
        idx = np.asarray(indices, dtype=int)
        if (
            idx.size > 0
            and idx[0] >= 0
            and idx[-1] < len(self)
            and idx[-1] - idx[0] == idx.size - 1
            and (idx.size == 1 or bool((np.diff(idx) == 1).all()))
        ):
            start, stop = int(idx[0]), int(idx[0]) + idx.size
            columns = {
                name: _readonly_view(self._columns[name][start:stop])
                for name in self._schema.names
            }
            return Table(self._schema, columns)
        columns = {name: self._columns[name][idx] for name in self._schema.names}
        return Table(self._schema, columns)

    def filter_mask(self, mask: np.ndarray) -> "Table":
        """Rows where boolean *mask* is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise SpecificationError(
                f"mask length {len(mask)} != table length {len(self)}"
            )
        columns = {name: self._columns[name][mask] for name in self._schema.names}
        return Table(self._schema, columns)

    def filter(self, predicate: Predicate) -> "Table":
        """Rows satisfying *predicate*."""
        return self.filter_mask(predicate.mask(self))

    def head(self, n: int) -> "Table":
        return self.take(range(min(n, len(self))))

    def shuffle(self, rng: RngLike = None) -> "Table":
        generator = ensure_rng(rng)
        return self.take(generator.permutation(len(self)))

    def sample(self, n: int, rng: RngLike = None, replace: bool = False) -> "Table":
        """Uniform random sample of *n* rows."""
        if n < 0:
            raise SpecificationError(f"cannot sample {n} rows")
        if not replace and n > len(self):
            raise EmptyInputError(
                f"cannot sample {n} rows without replacement from {len(self)}"
            )
        generator = ensure_rng(rng)
        idx = generator.choice(len(self), size=n, replace=replace)
        return self.take(idx)

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        """Rows sorted by column *name* (missing values last)."""
        spec = self._schema[name]
        values = self._columns[name]
        present = ~self.missing_mask(name)
        present_idx = np.flatnonzero(present)
        absent_idx = np.flatnonzero(~present)
        if spec.is_numeric:
            order = present_idx[np.argsort(values[present_idx], kind="mergesort")]
        else:
            keys = [repr(values[i]) for i in present_idx]
            order = present_idx[np.argsort(np.array(keys, dtype=object), kind="mergesort")]
        if descending:
            order = order[::-1]
        return self.take(np.concatenate([order, absent_idx]))

    def concat(self, other: "Table") -> "Table":
        """Union-all of two union-compatible tables."""
        if not self._schema.union_compatible(other._schema):
            raise SchemaError(
                f"schemas not union-compatible: {self._schema!r} vs {other._schema!r}"
            )
        columns = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self._schema.names
        }
        return Table(self._schema, columns)

    def distinct(self, columns: Optional[Sequence[str]] = None) -> "Table":
        """First occurrence of each distinct key over *columns* (default all)."""
        key_columns = list(columns) if columns is not None else list(self.column_names)
        self._schema.require(key_columns)
        seen = set()
        keep: List[int] = []
        arrays = [self._columns[name] for name in key_columns]

        def normalize(value):
            # Missing numeric cells are NaN, and NaN != NaN; fold them to
            # None so that two missing values compare equal for dedup.
            if isinstance(value, float) and value != value:
                return None
            return value

        for i in range(len(self)):
            key = tuple(normalize(array[i]) for array in arrays)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(keep)

    # -- column operations --------------------------------------------------

    def project(self, names: Sequence[str]) -> "Table":
        """Zero-copy column subset: the new table shares this table's
        buffers through read-only views."""
        schema = self._schema.project(names)
        return Table(
            schema,
            {name: _readonly_view(self._columns[name]) for name in names},
        )

    def drop(self, names: Sequence[str]) -> "Table":
        self._schema.require(names)
        keep = [name for name in self.column_names if name not in set(names)]
        return self.project(keep)

    def rename(self, mapping: Dict[str, str]) -> "Table":
        schema = self._schema.rename(mapping)
        columns = {
            mapping.get(name, name): _readonly_view(self._columns[name])
            for name in self.column_names
        }
        return Table(schema, columns)

    def with_column(self, name: str, ctype: ColumnType, values: Sequence) -> "Table":
        """A copy with column *name* added (or replaced, keeping position)."""
        if isinstance(ctype, str):
            ctype = ColumnType(ctype)
        new_spec = ColumnSpec(name, ctype)
        if name in self._schema:
            specs = [new_spec if s.name == name else s for s in self._schema]
        else:
            specs = list(self._schema) + [new_spec]
        columns = {s.name: self._columns[s.name] for s in self._schema}
        columns[name] = _coerce_column(new_spec, list(values))
        if len(columns[name]) != len(self) and len(self._schema) > 0:
            raise SchemaError(
                f"new column {name!r} has {len(columns[name])} values; "
                f"table has {len(self)} rows"
            )
        return Table(Schema(specs), columns)

    # -- grouping and aggregation --------------------------------------------

    def group_indices(self, columns: Sequence[str]) -> Dict[Tuple, np.ndarray]:
        """Map each distinct key over *columns* to its row indices."""
        self._schema.require(columns)
        arrays = [self._columns[name] for name in columns]
        groups: Dict[Tuple, List[int]] = defaultdict(list)
        for i in range(len(self)):
            groups[tuple(array[i] for array in arrays)].append(i)
        return {key: np.asarray(idx, dtype=int) for key, idx in groups.items()}

    def group_counts(self, columns: Sequence[str]) -> Dict[Tuple, int]:
        """Map each distinct key over *columns* to its row count."""
        self._schema.require(columns)
        arrays = [self._columns[name] for name in columns]
        counts: Counter = Counter(
            tuple(array[i] for array in arrays) for i in range(len(self))
        )
        return dict(counts)

    def value_counts(self, name: str) -> Dict[Hashable, int]:
        """Counts of present (non-missing) values in column *name*."""
        present = ~self.missing_mask(name)
        return dict(Counter(self._columns[name][present]))

    def unique(self, name: str) -> List:
        """Sorted distinct present values of column *name*."""
        return sorted(self.value_counts(name), key=repr)

    def aggregate(self, name: str, func: str) -> float:
        """Aggregate a numeric column, ignoring missing values.

        *func* is one of ``count``, ``sum``, ``mean``, ``min``, ``max``,
        ``var``, ``std``, ``median``.  ``count`` counts present values.
        """
        spec = self._schema[name]
        if not spec.is_numeric and func != "count":
            raise SpecificationError(
                f"aggregate {func!r} requires a numeric column; "
                f"{name!r} is categorical"
            )
        present = ~self.missing_mask(name)
        if func == "count":
            return float(present.sum())
        values = np.asarray(self._columns[name], dtype=float)[present]
        if values.size == 0:
            raise EmptyInputError(f"aggregate {func!r} over no present values")
        dispatch: Dict[str, Callable[[np.ndarray], float]] = {
            "sum": np.sum,
            "mean": np.mean,
            "min": np.min,
            "max": np.max,
            "var": np.var,
            "std": np.std,
            "median": np.median,
        }
        if func not in dispatch:
            raise SpecificationError(
                f"unknown aggregate {func!r}; "
                f"expected one of {sorted(dispatch) + ['count']}"
            )
        return float(dispatch[func](values))

    def group_aggregate(
        self, group_columns: Sequence[str], value_column: str, func: str
    ) -> Dict[Tuple, float]:
        """Per-group aggregate of *value_column*."""
        out: Dict[Tuple, float] = {}
        for key, idx in self.group_indices(group_columns).items():
            out[key] = self.take(idx).aggregate(value_column, func)
        return out

    # -- joins ----------------------------------------------------------------

    def join(
        self,
        other: "Table",
        on: Sequence[str],
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Table":
        """Equi-join on columns *on* (hash join).

        ``how`` is ``"inner"`` or ``"left"``.  Rows with a missing join key
        never match (SQL semantics).  Non-key columns of *other* whose names
        clash with this table's get *suffix* appended.
        """
        if how not in ("inner", "left"):
            raise SpecificationError(f"unsupported join type {how!r}")
        on = list(on)
        if not on:
            raise SpecificationError("join requires at least one key column")
        self._schema.require(on)
        other._schema.require(on)
        for name in on:
            if self._schema.ctype(name) != other._schema.ctype(name):
                raise SchemaError(
                    f"join key {name!r} has different types in the two tables"
                )

        other_extra = [name for name in other.column_names if name not in on]
        rename_map = {
            name: (name + suffix if name in self._schema else name)
            for name in other_extra
        }
        out_specs = list(self._schema) + [
            ColumnSpec(rename_map[name], other._schema.ctype(name))
            for name in other_extra
        ]
        out_schema = Schema(out_specs)

        # Build hash index over the smaller conceptual side: other.
        index: Dict[Tuple, List[int]] = defaultdict(list)
        other_keys = [other._columns[name] for name in on]
        other_missing = np.zeros(len(other), dtype=bool)
        for name in on:
            other_missing |= other.missing_mask(name)
        for j in range(len(other)):
            if not other_missing[j]:
                index[tuple(array[j] for array in other_keys)].append(j)

        left_keys = [self._columns[name] for name in on]
        left_missing = np.zeros(len(self), dtype=bool)
        for name in on:
            left_missing |= self.missing_mask(name)

        left_idx: List[int] = []
        right_idx: List[int] = []  # -1 encodes "no match" for left joins
        for i in range(len(self)):
            matches: List[int] = []
            if not left_missing[i]:
                matches = index.get(tuple(array[i] for array in left_keys), [])
            if matches:
                for j in matches:
                    left_idx.append(i)
                    right_idx.append(j)
            elif how == "left":
                left_idx.append(i)
                right_idx.append(-1)

        columns: Dict[str, Sequence] = {}
        left_take = np.asarray(left_idx, dtype=int)
        for name in self.column_names:
            columns[name] = self._columns[name][left_take]
        right_take = np.asarray(right_idx, dtype=int)
        matched = right_take >= 0
        for name in other_extra:
            source = other._columns[name]
            spec = other._schema[name]
            if spec.is_numeric:
                values = np.full(len(right_take), np.nan, dtype=float)
                if matched.any():
                    values[matched] = source[right_take[matched]]
            else:
                values = np.full(len(right_take), None, dtype=object)
                if matched.any():
                    values[matched] = source[right_take[matched]]
            columns[rename_map[name]] = values
        return Table(out_schema, columns)
