"""CSV round-tripping for :class:`~respdi.table.table.Table`.

Kept intentionally small: schemas are explicit (passed by the caller or
written to / read from a one-line type header), and missing values are
encoded as empty fields.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

from respdi.errors import SchemaError
from respdi.table.schema import ColumnType, Schema
from respdi.table.table import MISSING, Table

PathLike = Union[str, Path]

#: Marker prefix for the optional embedded type header line.
_TYPE_HEADER_PREFIX = "#types:"


def write_csv(table: Table, path: PathLike, include_types: bool = True) -> None:
    """Write *table* to CSV.

    When *include_types* is set (the default), a comment line
    ``#types:categorical,numeric,...`` is written before the header so
    :func:`read_csv` can reconstruct the schema without guessing.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        if include_types:
            types = ",".join(spec.ctype.value for spec in table.schema)
            handle.write(f"{_TYPE_HEADER_PREFIX}{types}\n")
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(["" if _is_missing(value) else value for value in row])


def _is_missing(value) -> bool:
    if value is None:
        return True
    return isinstance(value, float) and value != value  # NaN


def read_csv(path: PathLike, schema: Optional[Schema] = None) -> Table:
    """Read a CSV written by :func:`write_csv` (or any CSV plus a schema).

    If *schema* is None the file must start with the ``#types:`` header
    produced by :func:`write_csv`; otherwise the given schema is applied
    to the header columns.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        first = handle.readline().rstrip("\n")
        declared_types = None
        if first.startswith(_TYPE_HEADER_PREFIX):
            declared_types = first[len(_TYPE_HEADER_PREFIX):].split(",")
            header_line = handle.readline().rstrip("\n")
        else:
            header_line = first
        names = next(csv.reader([header_line]))
        if schema is None:
            if declared_types is None:
                raise SchemaError(
                    f"{path}: no #types: header and no schema given; "
                    "cannot infer column types"
                )
            if len(declared_types) != len(names):
                raise SchemaError(
                    f"{path}: {len(declared_types)} types declared for "
                    f"{len(names)} columns"
                )
            schema = Schema(
                [(name, ColumnType(t)) for name, t in zip(names, declared_types)]
            )
        else:
            if tuple(names) != schema.names:
                raise SchemaError(
                    f"{path}: header {names} does not match schema "
                    f"{list(schema.names)}"
                )
        rows = []
        for record in csv.reader(handle):
            if not record:
                continue
            row = []
            for spec, field in zip(schema, record):
                if field == "":
                    row.append(MISSING)
                elif spec.is_numeric:
                    row.append(float(field))
                else:
                    row.append(field)
            rows.append(tuple(row))
    return Table.from_rows(schema, rows)
