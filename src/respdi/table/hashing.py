"""Vectorized hashing / bytes core for the table layer.

Every sketch and fingerprint in the system reduces values to bytes the
same way: ``repr(value).encode("utf-8")`` fed to blake2b.  The seed
implementations did this one value at a time inside each consumer
(:mod:`respdi.discovery.minhash`, :func:`respdi.catalog.store.table_fingerprint`,
:mod:`respdi.discovery.correlation_sketches`).  This module centralizes
those kernels and batches them — **byte-identical to the scalar seed
paths**, so persisted catalogs, signatures, and pcache sidecars stay
valid with zero migration.

Where the speed comes from
--------------------------
* **Digest memoization.**  blake2b itself dominates the per-value cost
  (~65% of the scalar loop).  Data lakes re-hash the same values
  constantly — shared key domains across tables, refresh cycles over
  unchanged columns — so digests are memoized in type-partitioned
  caches.  A value-keyed dict is only sound for classes where equality
  implies identical ``repr`` (``str``, ``int``, ``bool``, ``NoneType``
  — note ``0.0 == -0.0`` but their reprs differ, so ``float`` and every
  other class key the shared cache by the repr string itself).  Caches
  are bounded: they are cleared wholesale when they exceed
  ``_MEMO_LIMIT`` entries.
* **Chunked in-place MinHash transforms.** :func:`minhash_mins` computes
  the ``(a*h + b) mod (2^31 - 1)`` minima in fixed-width chunks with
  preallocated buffers and in-place ufuncs, replacing the seed's
  ``(k, n)`` temporary allocations.  Arithmetic is elementwise uint64 —
  identical wrap/mod behaviour, bit-identical minima.
* **Streaming fingerprints.** :func:`digest_categorical` feeds a digest
  the exact bytes of ``repr(list(values)).encode("utf-8")`` without ever
  materializing the giant intermediate string.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Dict, Hashable, Iterable, List, Sequence

import numpy as np

__all__ = [
    "stable_hash32",
    "stable_hash32_list",
    "stable_hash32_array",
    "salted_hash64",
    "salted_hash64_list",
    "minhash_mins",
    "digest_categorical",
    "object_payload_nbytes",
    "hash_cache_info",
    "clear_hash_caches",
]

_MERSENNE_PRIME = np.uint64((1 << 31) - 1)

#: Per-cache entry bound; a cache exceeding it is cleared wholesale.
_MEMO_LIMIT = 1 << 18

#: Classes for which ``a == b`` implies ``repr(a) == repr(b)``, so a
#: value-keyed memo is sound.  ``float`` is deliberately absent
#: (``0.0 == -0.0``, reprs differ) and exact-class dispatch keeps
#: subclasses (``np.str_``, ``IntEnum``, ...) on the repr-keyed path
#: where their own reprs are honoured.
_VALUE_KEYED_CLASSES = (str, int, bool, type(None))


class _MemoizedDigests:
    """Batched ``value -> int`` hashing with bounded memoization.

    ``digest_int`` maps the UTF-8 bytes of ``repr(value)`` to the final
    integer; everything else (repr, encode, cache bookkeeping) is shared
    between the 32-bit sketch hash and the 64-bit salted key hash.
    """

    __slots__ = ("digest_int", "by_class", "by_repr")

    def __init__(self, digest_int) -> None:
        self.digest_int = digest_int
        self.by_class: Dict[type, dict] = {
            klass: {} for klass in _VALUE_KEYED_CLASSES
        }
        self.by_repr: Dict[str, int] = {}

    def hash_many(self, values: Iterable[Hashable]) -> List[int]:
        digest_int = self.digest_int
        by_class = self.by_class
        by_repr = self.by_repr
        out: List[int] = []
        append = out.append
        for value in values:
            memo = by_class.get(value.__class__)
            if memo is not None:
                h = memo.get(value)
                if h is None:
                    h = digest_int(repr(value).encode("utf-8"))
                    memo[value] = h
            else:
                r = repr(value)
                h = by_repr.get(r)
                if h is None:
                    h = digest_int(r.encode("utf-8"))
                    by_repr[r] = h
            append(h)
        if len(by_repr) > _MEMO_LIMIT:
            by_repr.clear()
        for memo in by_class.values():
            if len(memo) > _MEMO_LIMIT:
                memo.clear()
        return out

    def entries(self) -> int:
        return len(self.by_repr) + sum(len(m) for m in self.by_class.values())

    def clear(self) -> None:
        self.by_repr.clear()
        for memo in self.by_class.values():
            memo.clear()


def _digest32(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=4).digest(), "big"
    )


def stable_hash32(value: Hashable) -> int:
    """Deterministic 32-bit hash of a value (stable across processes).

    The scalar reference: first four bytes of ``blake2b(repr(value))``,
    big-endian — exactly the seed ``_stable_hash32``.  Kept un-memoized
    so differential tests always exercise a from-scratch computation.
    """
    return _digest32(repr(value).encode("utf-8"))


_hash32_memo = _MemoizedDigests(_digest32)

#: Salted 64-bit memos, one per seed (correlation sketches share one
#: seed per lake, so this stays a tiny dict).
_salted_memos: Dict[int, _MemoizedDigests] = {}


def _salted_digest64(seed: int):
    salt = seed.to_bytes(8, "big")

    def digest_int(data: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8, salt=salt).digest(), "big"
        )

    return digest_int


def salted_hash64(value: Hashable, seed: int) -> int:
    """Scalar reference for the correlation-sketch key hash (seed
    ``_key_hash``): 8-byte blake2b of ``repr(value)`` salted by *seed*."""
    return _salted_digest64(seed)(repr(value).encode("utf-8"))


def stable_hash32_list(values: Iterable[Hashable]) -> List[int]:
    """Batched :func:`stable_hash32` with memoization (python ints)."""
    return _hash32_memo.hash_many(values)


def stable_hash32_array(values: Iterable[Hashable]) -> np.ndarray:
    """Batched :func:`stable_hash32` as a ``uint64`` array."""
    hashes = _hash32_memo.hash_many(values)
    return np.array(hashes, dtype=np.uint64)


def salted_hash64_list(values: Iterable[Hashable], seed: int) -> List[int]:
    """Batched :func:`salted_hash64` with per-seed memoization."""
    memo = _salted_memos.get(seed)
    if memo is None:
        if len(_salted_memos) > 64:  # unbounded seed churn: drop them all
            _salted_memos.clear()
        memo = _salted_memos[seed] = _MemoizedDigests(_salted_digest64(seed))
    return memo.hash_many(values)


def hash_cache_info() -> Dict[str, int]:
    """Entry counts of the digest memo caches (for tests/telemetry)."""
    return {
        "hash32": _hash32_memo.entries(),
        "salted64": sum(m.entries() for m in _salted_memos.values()),
        "salted_seeds": len(_salted_memos),
    }


def clear_hash_caches() -> None:
    """Drop every digest memo (tests; memory pressure)."""
    _hash32_memo.clear()
    for memo in _salted_memos.values():
        memo.clear()
    _salted_memos.clear()


def minhash_mins(
    a: np.ndarray,
    b: np.ndarray,
    hashes: np.ndarray,
    chunk: int = 512,
) -> np.ndarray:
    """Per-function minima of ``(a_i * h_j + b_i) mod (2^31 - 1)``.

    Bit-identical to the seed's one-shot broadcast
    ``((a[:, None] * hashes[None, :] + b[:, None]) % P).min(axis=1)``:
    the uint64 elementwise arithmetic is unchanged, only the evaluation
    order is chunked (min is order-free), with preallocated in-place
    buffers so peak memory is ``O(k * chunk)`` instead of ``O(k * n)``.
    """
    if hashes.size == 0:
        raise ValueError("minhash_mins requires at least one value hash")
    k = a.shape[0]
    chunk = min(chunk, hashes.size)
    mins = np.full(k, _MERSENNE_PRIME, dtype=np.uint64)
    buf = np.empty((k, chunk), dtype=np.uint64)
    a_col = a[:, None]
    b_col = b[:, None]
    for start in range(0, hashes.size, chunk):
        h = hashes[start : start + chunk]
        view = buf[:, : h.size]
        np.multiply(a_col, h[None, :], out=view)
        view += b_col
        view %= _MERSENNE_PRIME
        np.minimum(mins, view.min(axis=1), out=mins)
    return mins


def digest_categorical(digest, values: Sequence, chunk: int = 4096) -> None:
    """Feed *digest* the bytes of ``repr(list(values)).encode("utf-8")``.

    Byte-identical to the seed fingerprint's categorical path, but
    streamed in chunks: peak transient memory is bounded by *chunk*
    reprs instead of one string holding every cell of the column.
    """
    n = len(values)
    if n == 0:
        digest.update(b"[]")
        return
    digest.update(b"[")
    for start in range(0, n, chunk):
        block = values[start : start + chunk]
        prefix = "" if start == 0 else ", "
        digest.update(
            (prefix + ", ".join(map(repr, block))).encode("utf-8")
        )
    digest.update(b"]")


def object_payload_nbytes(values: Iterable) -> int:
    """Estimated payload bytes of the objects referenced by *values*.

    Sums ``sys.getsizeof`` once per distinct object (by identity), so
    interned strings and shared values are not double-counted; ``None``
    costs nothing (the singleton is not column payload).
    """
    seen = set()
    seen_add = seen.add
    getsizeof = sys.getsizeof
    total = 0
    for value in values:
        if value is None:
            continue
        ident = id(value)
        if ident in seen:
            continue
        seen_add(ident)
        total += getsizeof(value)
    return total
