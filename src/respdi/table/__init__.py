"""Column-oriented tabular substrate for respdi.

Every integration task in the tutorial (discovery, profiling, cleaning,
sampling, tailoring, fair querying) operates over relations.  This package
provides a small, explicit, in-memory relational layer: typed schemas,
predicates, and a :class:`Table` with the relational operations the rest
of the library needs (selection, projection, joins, group-by, aggregation,
sampling, union).
"""

from respdi.table.schema import ColumnType, ColumnSpec, Schema
from respdi.table.predicates import (
    Predicate,
    Eq,
    Ne,
    In,
    Range,
    IsMissing,
    NotMissing,
    And,
    Or,
    Not,
    TruePredicate,
)
from respdi.table.table import Table, MISSING
from respdi.table.io import read_csv, write_csv

__all__ = [
    "ColumnType",
    "ColumnSpec",
    "Schema",
    "Predicate",
    "Eq",
    "Ne",
    "In",
    "Range",
    "IsMissing",
    "NotMissing",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "Table",
    "MISSING",
    "read_csv",
    "write_csv",
]
