"""Column-oriented tabular substrate for respdi.

Every integration task in the tutorial (discovery, profiling, cleaning,
sampling, tailoring, fair querying) operates over relations.  This package
provides a small, explicit, in-memory relational layer: typed schemas,
predicates, and a :class:`Table` with the relational operations the rest
of the library needs (selection, projection, joins, group-by, aggregation,
sampling, union).
"""

from respdi.table.hashing import (
    minhash_mins,
    salted_hash64,
    salted_hash64_list,
    stable_hash32,
    stable_hash32_array,
    stable_hash32_list,
)
from respdi.table.io import read_csv, write_csv
from respdi.table.predicates import (
    And,
    Eq,
    In,
    IsMissing,
    Ne,
    Not,
    NotMissing,
    Or,
    Predicate,
    Range,
    TruePredicate,
)
from respdi.table.schema import ColumnSpec, ColumnType, Schema
from respdi.table.table import MISSING, Table

__all__ = [
    "ColumnType",
    "ColumnSpec",
    "Schema",
    "Predicate",
    "Eq",
    "Ne",
    "In",
    "Range",
    "IsMissing",
    "NotMissing",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "Table",
    "MISSING",
    "read_csv",
    "write_csv",
    "stable_hash32",
    "stable_hash32_list",
    "stable_hash32_array",
    "salted_hash64",
    "salted_hash64_list",
    "minhash_mins",
]
