"""Schemas: ordered, typed column declarations.

respdi follows "explicit is better than implicit": a :class:`Table` always
carries a :class:`Schema` declaring each column's name and
:class:`ColumnType`.  Types are deliberately coarse — the distinction the
integration algorithms care about is *categorical* (group-forming,
joinable-by-equality) versus *numeric* (orderable, aggregable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from respdi.errors import SchemaError


class ColumnType(enum.Enum):
    """Coarse column type."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"

    def __repr__(self) -> str:  # keep reprs short in error messages
        return f"ColumnType.{self.name}"


@dataclass(frozen=True)
class ColumnSpec:
    """Declaration of a single column: its name and type."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be a non-empty string")
        if not isinstance(self.ctype, ColumnType):
            raise SchemaError(
                f"column {self.name!r}: ctype must be a ColumnType, "
                f"got {type(self.ctype).__name__}"
            )

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.ctype is ColumnType.CATEGORICAL


class Schema:
    """An ordered collection of :class:`ColumnSpec` with unique names.

    Construction accepts specs, ``(name, ctype)`` tuples, or
    ``(name, "categorical"|"numeric")`` string shorthands::

        Schema([("race", "categorical"), ("age", "numeric")])
    """

    def __init__(self, columns: Iterable) -> None:
        specs: List[ColumnSpec] = []
        for item in columns:
            specs.append(self._coerce(item))
        names = [spec.name for spec in specs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._specs: Tuple[ColumnSpec, ...] = tuple(specs)
        self._by_name: Dict[str, ColumnSpec] = {s.name: s for s in specs}

    @staticmethod
    def _coerce(item) -> ColumnSpec:
        if isinstance(item, ColumnSpec):
            return item
        if isinstance(item, tuple) and len(item) == 2:
            name, ctype = item
            if isinstance(ctype, str):
                try:
                    ctype = ColumnType(ctype)
                except ValueError:
                    raise SchemaError(
                        f"unknown column type {item[1]!r} for column {name!r}; "
                        "expected 'categorical' or 'numeric'"
                    ) from None
            return ColumnSpec(name, ctype)
        raise SchemaError(
            f"cannot build a ColumnSpec from {item!r}; "
            "expected ColumnSpec or (name, type) tuple"
        )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; table has {list(self.names)}"
            ) from None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        cols = ", ".join(f"{s.name}:{s.ctype.value[:3]}" for s in self._specs)
        return f"Schema({cols})"

    # -- accessors ----------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    @property
    def categorical_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs if s.is_categorical)

    @property
    def numeric_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self._specs if s.is_numeric)

    def ctype(self, name: str) -> ColumnType:
        return self[name].ctype

    def require(self, names: Sequence[str]) -> None:
        """Raise :class:`SchemaError` unless every name in *names* exists."""
        missing = [name for name in names if name not in self._by_name]
        if missing:
            raise SchemaError(
                f"unknown column(s) {missing}; table has {list(self.names)}"
            )

    # -- derivations --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to *names*, in the given order."""
        self.require(names)
        return Schema([self._by_name[name] for name in names])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Schema with columns renamed per *mapping* (missing keys kept)."""
        self.require(list(mapping))
        return Schema(
            [ColumnSpec(mapping.get(s.name, s.name), s.ctype) for s in self._specs]
        )

    def union_compatible(self, other: "Schema") -> bool:
        """True when two schemas have identical names and types in order."""
        return self == other
