"""Predicates over tables.

A :class:`Predicate` evaluates to a boolean row mask over a
:class:`~respdi.table.table.Table`.  The algebra (``&``, ``|``, ``~``) lets
query code compose filters; fairness-aware range refinement
(:mod:`respdi.fairqueries`) rewrites :class:`Range` predicates directly.

Missing values (``None`` in categorical columns, ``NaN`` in numeric ones)
never satisfy a value predicate — only :class:`IsMissing` matches them —
mirroring SQL's treatment of NULL in comparisons.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Optional

import numpy as np

from respdi.errors import SpecificationError


class Predicate:
    """Base class; subclasses implement :meth:`mask` and :meth:`columns`."""

    def mask(self, table) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Names of the columns this predicate reads."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class TruePredicate(Predicate):
    """Matches every row."""

    def mask(self, table) -> np.ndarray:
        return np.ones(len(table), dtype=bool)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


class _ColumnPredicate(Predicate):
    def __init__(self, column: str) -> None:
        if not column:
            raise SpecificationError("predicate column name must be non-empty")
        self.column = column

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def _present(self, table) -> np.ndarray:
        """Mask of rows where the column value is not missing."""
        return ~table.missing_mask(self.column)


class Eq(_ColumnPredicate):
    """``column == value`` (missing never matches)."""

    def __init__(self, column: str, value: Hashable) -> None:
        super().__init__(column)
        self.value = value

    def mask(self, table) -> np.ndarray:
        values = table.column(self.column)
        present = self._present(table)
        out = np.zeros(len(table), dtype=bool)
        out[present] = values[present] == self.value
        return out

    def __repr__(self) -> str:
        return f"{self.column} == {self.value!r}"


class Ne(_ColumnPredicate):
    """``column != value`` (missing never matches)."""

    def __init__(self, column: str, value: Hashable) -> None:
        super().__init__(column)
        self.value = value

    def mask(self, table) -> np.ndarray:
        values = table.column(self.column)
        present = self._present(table)
        out = np.zeros(len(table), dtype=bool)
        out[present] = values[present] != self.value
        return out

    def __repr__(self) -> str:
        return f"{self.column} != {self.value!r}"


class In(_ColumnPredicate):
    """``column in values`` (missing never matches)."""

    def __init__(self, column: str, values: Iterable[Hashable]) -> None:
        super().__init__(column)
        self.values = frozenset(values)

    def mask(self, table) -> np.ndarray:
        column = table.column(self.column)
        present = self._present(table)
        out = np.zeros(len(table), dtype=bool)
        allowed = self.values
        out[present] = [value in allowed for value in column[present]]
        return out

    def __repr__(self) -> str:
        return f"{self.column} in {sorted(self.values, key=repr)}"


class Range(_ColumnPredicate):
    """Interval predicate ``lo <= column <= hi`` on a numeric column.

    Either bound may be ``None`` (unbounded); bounds are inclusive by
    default, with ``inclusive_lo`` / ``inclusive_hi`` to open either end.
    Missing (NaN) values never match.
    """

    def __init__(
        self,
        column: str,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        inclusive_lo: bool = True,
        inclusive_hi: bool = True,
    ) -> None:
        super().__init__(column)
        if lo is None and hi is None:
            raise SpecificationError("Range needs at least one bound")
        if lo is not None and hi is not None and lo > hi:
            raise SpecificationError(f"empty range: lo={lo} > hi={hi}")
        self.lo = lo
        self.hi = hi
        self.inclusive_lo = inclusive_lo
        self.inclusive_hi = inclusive_hi

    def mask(self, table) -> np.ndarray:
        values = np.asarray(table.column(self.column), dtype=float)
        out = ~np.isnan(values)
        if self.lo is not None:
            out &= values >= self.lo if self.inclusive_lo else values > self.lo
        if self.hi is not None:
            out &= values <= self.hi if self.inclusive_hi else values < self.hi
        return out

    def __repr__(self) -> str:
        lo_bracket = "[" if self.inclusive_lo else "("
        hi_bracket = "]" if self.inclusive_hi else ")"
        return f"{self.column} in {lo_bracket}{self.lo}, {self.hi}{hi_bracket}"


class IsMissing(_ColumnPredicate):
    """Matches rows where the column value is missing."""

    def mask(self, table) -> np.ndarray:
        return table.missing_mask(self.column)

    def __repr__(self) -> str:
        return f"{self.column} IS MISSING"


class NotMissing(_ColumnPredicate):
    """Matches rows where the column value is present."""

    def mask(self, table) -> np.ndarray:
        return ~table.missing_mask(self.column)

    def __repr__(self) -> str:
        return f"{self.column} IS NOT MISSING"


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise SpecificationError("And() needs at least one predicate")
        self.parts = parts

    def mask(self, table) -> np.ndarray:
        out = self.parts[0].mask(table)
        for part in self.parts[1:]:
            out = out & part.mask(table)
        return out

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(p.columns() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise SpecificationError("Or() needs at least one predicate")
        self.parts = parts

    def mask(self, table) -> np.ndarray:
        out = self.parts[0].mask(table)
        for part in self.parts[1:]:
            out = out | part.mask(table)
        return out

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(p.columns() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation of a predicate (row-mask complement)."""

    def __init__(self, part: Predicate) -> None:
        self.part = part

    def mask(self, table) -> np.ndarray:
        return ~self.part.mask(table)

    def columns(self) -> FrozenSet[str]:
        return self.part.columns()

    def __repr__(self) -> str:
        return f"NOT ({self.part!r})"
