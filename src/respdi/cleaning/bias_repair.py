"""Disparate-impact repair of a numeric feature (Feldman et al., KDD 2015).

The tutorial's §5 frames bias removal as "a special case of data
cleaning where the goal is to repair problematic tuples or values that
cause bias".  The canonical such repair maps each group's values of a
feature onto a common (median) quantile function:

* full repair (``repair_level=1``): each value is replaced by the median
  group's value at the same within-group quantile, so the feature's
  distribution becomes identical across groups — no classifier can use
  it as a group proxy — while the *rank order within each group* (the
  feature's legitimate signal) is preserved exactly;
* partial repair interpolates between the original and repaired values,
  trading residual bias against fidelity.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


def disparate_impact_repair(
    table: Table,
    column: str,
    group_columns: Sequence[str],
    repair_level: float = 1.0,
) -> Table:
    """Return *table* with *column* repaired toward group-independence.

    ``repair_level`` in [0, 1]: 0 is the identity, 1 the full repair.
    Missing values stay missing; groups with a single member map onto the
    median distribution via their sole quantile.
    """
    if not 0.0 <= repair_level <= 1.0:
        raise SpecificationError("repair_level must be in [0, 1]")
    if not table.schema[column].is_numeric:
        raise SpecificationError("disparate-impact repair needs a numeric column")
    group_columns = list(group_columns)
    if not group_columns:
        raise SpecificationError("need at least one group column")
    values = np.asarray(table.column(column), dtype=float).copy()
    indices = table.group_indices(group_columns)

    # Per-group sorted present values and per-row within-group quantiles.
    group_sorted: Dict[Hashable, np.ndarray] = {}
    row_quantile = np.full(len(values), np.nan)
    for key, idx in indices.items():
        group_values = values[idx]
        present_positions = idx[~np.isnan(group_values)]
        if len(present_positions) == 0:
            continue
        ordered = np.sort(values[present_positions])
        group_sorted[key] = ordered
        # Mid-rank quantiles keep the map strictly monotone within ties.
        ranks = np.argsort(np.argsort(values[present_positions], kind="mergesort"))
        row_quantile[present_positions] = (ranks + 0.5) / len(present_positions)

    if not group_sorted:
        raise EmptyInputError("no present values to repair")

    # The "median distribution": at each quantile, the median across the
    # groups' quantile functions.
    def median_value_at(quantile: float) -> float:
        per_group = [
            float(np.quantile(ordered, quantile)) for ordered in group_sorted.values()
        ]
        return float(np.median(per_group))

    repaired = values.copy()
    present = ~np.isnan(values)
    for i in np.flatnonzero(present):
        target = median_value_at(row_quantile[i])
        repaired[i] = (1.0 - repair_level) * values[i] + repair_level * target
    return table.with_column(column, "numeric", repaired)


def repair_all_features(
    table: Table,
    columns: Sequence[str],
    group_columns: Sequence[str],
    repair_level: float = 1.0,
) -> Table:
    """Apply :func:`disparate_impact_repair` to every listed column."""
    out = table
    for column in columns:
        out = disparate_impact_repair(out, column, group_columns, repair_level)
    return out
