"""Error detection, repair, and per-group damage accounting (§2.4).

The tutorial's correctness argument is quantitative: an erroneous value
shifts a small group's AVG far more than a large group's.
:func:`group_aggregate_damage` measures exactly that, and the detectors
show a second-order effect — *global* z-score detection calibrated on the
majority misses (or over-flags) minority values when groups have
different scales, while group-conditional detection does not.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Tuple

import numpy as np

from respdi.errors import SpecificationError
from respdi.table import Table

GroupKey = Tuple[Hashable, ...]


_MAD_TO_SIGMA = 1.4826  # MAD of a normal distribution is sigma / 1.4826.


def _center_and_scale(observed: np.ndarray, robust: bool) -> tuple:
    if robust:
        center = float(np.median(observed))
        mad = float(np.median(np.abs(observed - center)))
        scale = _MAD_TO_SIGMA * mad
        if scale == 0.0:
            scale = float(observed.std()) or 1.0
        return center, scale
    center = float(observed.mean())
    scale = float(observed.std()) or 1.0
    return center, scale


def zscore_outliers(
    table: Table, column: str, threshold: float = 3.0, robust: bool = True
) -> np.ndarray:
    """Mask of values more than *threshold* scale units from the center
    (missing values are never flagged).

    ``robust=True`` (the default) uses median/MAD instead of mean/std:
    the classical moments are themselves inflated by the very errors
    being hunted ("masking"), which can hide gross errors entirely at
    moderate corruption rates.
    """
    if threshold <= 0:
        raise SpecificationError("threshold must be positive")
    values = np.asarray(table.column(column), dtype=float)
    present = ~np.isnan(values)
    observed = values[present]
    if observed.size == 0:
        return np.zeros(len(values), dtype=bool)
    center, scale = _center_and_scale(observed, robust)
    mask = np.zeros(len(values), dtype=bool)
    mask[present] = np.abs(values[present] - center) > threshold * scale
    return mask


def group_zscore_outliers(
    table: Table,
    column: str,
    group_columns: Sequence[str],
    threshold: float = 3.0,
    robust: bool = True,
) -> np.ndarray:
    """Mask of values more than *threshold* scale units from their *own
    group's* center (median/MAD by default; see :func:`zscore_outliers`)."""
    if threshold <= 0:
        raise SpecificationError("threshold must be positive")
    values = np.asarray(table.column(column), dtype=float)
    mask = np.zeros(len(values), dtype=bool)
    for _, idx in table.group_indices(list(group_columns)).items():
        group_values = values[idx]
        present = ~np.isnan(group_values)
        observed = group_values[present]
        if observed.size == 0:
            continue
        center, scale = _center_and_scale(observed, robust)
        local = np.zeros(len(group_values), dtype=bool)
        local[present] = np.abs(group_values[present] - center) > threshold * scale
        mask[idx] = local
    return mask


def repair_with_group_statistic(
    table: Table,
    column: str,
    error_mask: np.ndarray,
    group_columns: Sequence[str],
    statistic: str = "median",
) -> Table:
    """Replace flagged cells with their group's *statistic* computed over
    the unflagged cells (falls back to the global statistic when a group
    has no clean cells)."""
    if statistic not in ("mean", "median"):
        raise SpecificationError("statistic must be 'mean' or 'median'")
    error_mask = np.asarray(error_mask, dtype=bool)
    if len(error_mask) != len(table):
        raise SpecificationError("error mask length mismatch")
    values = np.asarray(table.column(column), dtype=float).copy()
    clean_global = values[~error_mask & ~np.isnan(values)]
    if clean_global.size == 0:
        raise SpecificationError("every value is flagged; nothing to repair from")
    global_stat = float(
        np.median(clean_global) if statistic == "median" else clean_global.mean()
    )
    for _, idx in table.group_indices(list(group_columns)).items():
        flagged = idx[error_mask[idx]]
        if flagged.size == 0:
            continue
        clean = values[idx[~error_mask[idx]]]
        clean = clean[~np.isnan(clean)]
        if clean.size == 0:
            replacement = global_stat
        else:
            replacement = float(
                np.median(clean) if statistic == "median" else clean.mean()
            )
        values[flagged] = replacement
    return table.with_column(column, "numeric", values)


def group_aggregate_damage(
    clean: Table,
    dirty: Table,
    column: str,
    group_columns: Sequence[str],
    aggregate: str = "mean",
) -> Dict[GroupKey, float]:
    """Absolute per-group shift of an aggregate caused by corruption.

    ``|agg(dirty group) - agg(clean group)|`` for each group — §2.4's
    "the same error rate hurts minorities more" made measurable.
    """
    if len(clean) != len(dirty):
        raise SpecificationError("clean and dirty tables must align row-wise")
    damage: Dict[GroupKey, float] = {}
    clean_groups = clean.group_indices(list(group_columns))
    for key, idx in clean_groups.items():
        clean_value = clean.take(idx).aggregate(column, aggregate)
        dirty_value = dirty.take(idx).aggregate(column, aggregate)
        damage[key] = abs(dirty_value - clean_value)
    return damage
