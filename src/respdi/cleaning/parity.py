"""Imputation accuracy parity (Zhang & Long, NeurIPS 2021).

Given ground-truth values, the injected missingness mask, and the imputed
table, measure how well imputation served each sensitive group.  The
**imputation accuracy parity difference** is the spread (max - min) of the
per-group accuracy; large spread means the imputer systematically fails
one group — the §5 fairness-of-cleaning concern.

For numeric columns "accuracy" is defined two ways, both reported:

* per-group RMSE of imputed vs true values (lower is better);
* per-group tolerance accuracy: fraction of imputed cells within
  ``tolerance`` standard deviations of the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table

GroupKey = Tuple[Hashable, ...]


def _per_group_cells(
    imputed: Table,
    column: str,
    clean_values: np.ndarray,
    injected_mask: np.ndarray,
    group_columns: Sequence[str],
) -> Dict[GroupKey, Tuple[np.ndarray, np.ndarray]]:
    """Map each group to (true values, imputed values) at injected cells."""
    if len(clean_values) != len(imputed) or len(injected_mask) != len(imputed):
        raise SpecificationError(
            "clean_values / injected_mask must align with the imputed table; "
            "note that DropMissingImputer removes rows and therefore cannot "
            "be scored for imputation accuracy"
        )
    imputed.schema.require(list(group_columns) + [column])
    imputed_values = np.asarray(imputed.column(column), dtype=float)
    group_arrays = [imputed.column(name) for name in group_columns]
    cells: Dict[GroupKey, Tuple[list, list]] = {}
    for i in np.flatnonzero(injected_mask):
        key = tuple(array[i] for array in group_arrays)
        truth, guess = cells.setdefault(key, ([], []))
        truth.append(float(clean_values[i]))
        guess.append(float(imputed_values[i]))
    if not cells:
        raise EmptyInputError("no injected cells to score")
    return {
        key: (np.asarray(truth), np.asarray(guess))
        for key, (truth, guess) in cells.items()
    }


def imputation_group_rmse(
    imputed: Table,
    column: str,
    clean_values: np.ndarray,
    injected_mask: np.ndarray,
    group_columns: Sequence[str],
) -> Dict[GroupKey, float]:
    """Per-group RMSE of imputed values at the injected cells."""
    cells = _per_group_cells(imputed, column, clean_values, injected_mask, group_columns)
    return {
        key: float(np.sqrt(((truth - guess) ** 2).mean()))
        for key, (truth, guess) in cells.items()
    }


@dataclass(frozen=True)
class ImputationParityReport:
    """Per-group imputation quality and its spread."""

    group_rmse: Dict[GroupKey, float]
    group_accuracy: Dict[GroupKey, float]
    rmse_parity_difference: float
    accuracy_parity_difference: float

    @property
    def worst_group(self) -> GroupKey:
        return min(self.group_accuracy, key=lambda g: (self.group_accuracy[g], repr(g)))


def imputation_accuracy_parity(
    imputed: Table,
    column: str,
    clean_values: np.ndarray,
    injected_mask: np.ndarray,
    group_columns: Sequence[str],
    tolerance: float = 0.5,
) -> ImputationParityReport:
    """Full parity report; *tolerance* is in units of the clean column's
    standard deviation."""
    if tolerance <= 0:
        raise SpecificationError("tolerance must be positive")
    cells = _per_group_cells(imputed, column, clean_values, injected_mask, group_columns)
    clean = np.asarray(clean_values, dtype=float)
    scale = float(np.nanstd(clean)) or 1.0
    group_rmse = {
        key: float(np.sqrt(((truth - guess) ** 2).mean()))
        for key, (truth, guess) in cells.items()
    }
    group_accuracy = {
        key: float((np.abs(truth - guess) <= tolerance * scale).mean())
        for key, (truth, guess) in cells.items()
    }
    return ImputationParityReport(
        group_rmse=group_rmse,
        group_accuracy=group_accuracy,
        rmse_parity_difference=max(group_rmse.values()) - min(group_rmse.values()),
        accuracy_parity_difference=(
            max(group_accuracy.values()) - min(group_accuracy.values())
        ),
    )
