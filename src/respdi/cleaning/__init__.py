"""Data cleaning with fairness-aware evaluation (tutorial §3.3, §5).

* :mod:`respdi.cleaning.imputers` — missing-value resolutions, from the
  two naive ones the tutorial dissects in §2.4 (drop rows; global mean)
  to group-conditional mean, hot-deck, and kNN imputation;
* :mod:`respdi.cleaning.parity` — imputation accuracy parity (Zhang &
  Long, NeurIPS 2021): does imputation serve every group equally well?
* :mod:`respdi.cleaning.outliers` — error detection and repair, with the
  per-group damage accounting of §2.4 (one bad value hurts a small group
  more);
* :mod:`respdi.cleaning.fairprep` — a FairPrep-style (Schelter et al.,
  EDBT 2020) pipeline runner: cleaning + intervention + model + fairness
  evaluation as one reproducible experiment object.
"""

from respdi.cleaning.bias_repair import disparate_impact_repair, repair_all_features
from respdi.cleaning.fairprep import FairPrepExperiment, FairPrepResult
from respdi.cleaning.imputers import (
    DropMissingImputer,
    GroupMeanImputer,
    HotDeckImputer,
    Imputer,
    KNNImputer,
    MeanImputer,
    ModeImputer,
)
from respdi.cleaning.outliers import (
    group_aggregate_damage,
    group_zscore_outliers,
    repair_with_group_statistic,
    zscore_outliers,
)
from respdi.cleaning.parity import (
    ImputationParityReport,
    imputation_accuracy_parity,
    imputation_group_rmse,
)

__all__ = [
    "Imputer",
    "DropMissingImputer",
    "MeanImputer",
    "GroupMeanImputer",
    "HotDeckImputer",
    "KNNImputer",
    "ModeImputer",
    "imputation_group_rmse",
    "imputation_accuracy_parity",
    "ImputationParityReport",
    "zscore_outliers",
    "group_zscore_outliers",
    "repair_with_group_statistic",
    "group_aggregate_damage",
    "FairPrepExperiment",
    "FairPrepResult",
    "disparate_impact_repair",
    "repair_all_features",
]
