"""Missing-value imputers.

All imputers share the :class:`Imputer` interface: ``fit`` learns from a
table, ``transform`` returns a new table with the target column's missing
values resolved (or, for :class:`DropMissingImputer`, the offending rows
removed).  Fit and transform are separated so experiments can fit on
training data and apply to held-out data.

The tutorial's §2.4 point — that (i) dropping rows erodes minority
coverage and (ii) global-mean imputation drags minority values toward
the majority mean — is directly observable by comparing
:class:`DropMissingImputer` / :class:`MeanImputer` against
:class:`GroupMeanImputer` under group-dependent missingness.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, NotFittedError, SpecificationError
from respdi.table import NotMissing, Table


class Imputer:
    """Interface: ``fit(table)`` then ``transform(table) -> Table``."""

    def __init__(self, column: str) -> None:
        if not column:
            raise SpecificationError("imputer needs a target column")
        self.column = column
        self._fitted = False

    def fit(self, table: Table) -> "Imputer":
        raise NotImplementedError

    def transform(self, table: Table) -> Table:
        raise NotImplementedError

    def fit_transform(self, table: Table) -> Table:
        return self.fit(table).transform(table)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")


class DropMissingImputer(Imputer):
    """Resolution (i) of §2.4: drop rows whose target column is missing."""

    def fit(self, table: Table) -> "DropMissingImputer":
        table.schema.require([self.column])
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        return table.filter(NotMissing(self.column))


class MeanImputer(Imputer):
    """Resolution (ii) of §2.4: replace missing values with the global mean."""

    def fit(self, table: Table) -> "MeanImputer":
        if not table.schema[self.column].is_numeric:
            raise SpecificationError("MeanImputer requires a numeric column")
        self._mean = table.aggregate(self.column, "mean")
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        values = np.asarray(table.column(self.column), dtype=float).copy()
        values[np.isnan(values)] = self._mean
        return table.with_column(self.column, "numeric", values)


class GroupMeanImputer(Imputer):
    """Replace missing values with the mean of the row's own group.

    Groups are defined by categorical *group_columns* (typically the
    sensitive attributes).  Rows whose group was unseen at fit time (or
    whose group had no observed values) fall back to the global mean.
    """

    def __init__(self, column: str, group_columns: Sequence[str]) -> None:
        super().__init__(column)
        if not group_columns:
            raise SpecificationError("GroupMeanImputer needs group columns")
        self.group_columns = list(group_columns)

    def fit(self, table: Table) -> "GroupMeanImputer":
        if not table.schema[self.column].is_numeric:
            raise SpecificationError("GroupMeanImputer requires a numeric column")
        table.schema.require(self.group_columns)
        self._global_mean = table.aggregate(self.column, "mean")
        self._group_means: Dict[tuple, float] = {}
        for key, idx in table.group_indices(self.group_columns).items():
            subset = table.take(idx)
            present = ~subset.missing_mask(self.column)
            if present.any():
                self._group_means[key] = subset.aggregate(self.column, "mean")
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        values = np.asarray(table.column(self.column), dtype=float).copy()
        group_arrays = [table.column(name) for name in self.group_columns]
        for i in np.flatnonzero(np.isnan(values)):
            key = tuple(array[i] for array in group_arrays)
            values[i] = self._group_means.get(key, self._global_mean)
        return table.with_column(self.column, "numeric", values)


class HotDeckImputer(Imputer):
    """Replace each missing value with a random observed *donor* value
    from the same group (random hot-deck imputation).

    Unlike mean imputation, hot-deck preserves the within-group value
    distribution instead of collapsing imputed rows onto one point.
    """

    def __init__(
        self, column: str, group_columns: Sequence[str], rng: RngLike = None
    ) -> None:
        super().__init__(column)
        if not group_columns:
            raise SpecificationError("HotDeckImputer needs group columns")
        self.group_columns = list(group_columns)
        self._rng = ensure_rng(rng)

    def fit(self, table: Table) -> "HotDeckImputer":
        table.schema.require([self.column] + self.group_columns)
        self._donors: Dict[tuple, np.ndarray] = {}
        all_present_values: List[float] = []
        for key, idx in table.group_indices(self.group_columns).items():
            subset = table.take(idx)
            present = ~subset.missing_mask(self.column)
            donors = np.asarray(subset.column(self.column))[present]
            if len(donors) > 0:
                self._donors[key] = donors
                all_present_values.extend(donors.tolist())
        if not all_present_values:
            raise EmptyInputError("no observed donor values at all")
        self._fallback = np.asarray(all_present_values)
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        spec = table.schema[self.column]
        values = list(table.column(self.column))
        missing = table.missing_mask(self.column)
        group_arrays = [table.column(name) for name in self.group_columns]
        for i in np.flatnonzero(missing):
            key = tuple(array[i] for array in group_arrays)
            donors = self._donors.get(key, self._fallback)
            values[i] = donors[int(self._rng.integers(len(donors)))]
        return table.with_column(self.column, spec.ctype, values)


class KNNImputer(Imputer):
    """Replace each missing value with the mean of its *k* nearest
    neighbors in the space of the (z-scored) auxiliary numeric columns."""

    def __init__(self, column: str, feature_columns: Sequence[str], k: int = 5) -> None:
        super().__init__(column)
        if k < 1:
            raise SpecificationError("k must be >= 1")
        if not feature_columns:
            raise SpecificationError("KNNImputer needs feature columns")
        if column in feature_columns:
            raise SpecificationError("target column cannot be its own feature")
        self.feature_columns = list(feature_columns)
        self.k = k

    def fit(self, table: Table) -> "KNNImputer":
        if not table.schema[self.column].is_numeric:
            raise SpecificationError("KNNImputer requires a numeric target column")
        table.schema.require(self.feature_columns)
        features = np.column_stack(
            [np.asarray(table.column(name), dtype=float) for name in self.feature_columns]
        )
        target = np.asarray(table.column(self.column), dtype=float)
        usable = ~np.isnan(features).any(axis=1) & ~np.isnan(target)
        if not usable.any():
            raise EmptyInputError("no complete donor rows for kNN imputation")
        donors = features[usable]
        self._mean = donors.mean(axis=0)
        self._std = np.where(donors.std(axis=0) > 0, donors.std(axis=0), 1.0)
        self._donor_features = (donors - self._mean) / self._std
        self._donor_targets = target[usable]
        self._global_mean = float(self._donor_targets.mean())
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        values = np.asarray(table.column(self.column), dtype=float).copy()
        features = np.column_stack(
            [np.asarray(table.column(name), dtype=float) for name in self.feature_columns]
        )
        for i in np.flatnonzero(np.isnan(values)):
            row = features[i]
            if np.isnan(row).any():
                values[i] = self._global_mean
                continue
            z = (row - self._mean) / self._std
            distances = np.linalg.norm(self._donor_features - z, axis=1)
            k = min(self.k, len(distances))
            nearest = np.argpartition(distances, k - 1)[:k]
            values[i] = float(self._donor_targets[nearest].mean())
        return table.with_column(self.column, "numeric", values)


class ModeImputer(Imputer):
    """Replace missing categorical values with the most frequent value
    (optionally per group)."""

    def __init__(self, column: str, group_columns: Optional[Sequence[str]] = None) -> None:
        super().__init__(column)
        self.group_columns = list(group_columns) if group_columns else []

    @staticmethod
    def _mode(counts: Dict[Hashable, int]) -> Hashable:
        return max(sorted(counts, key=repr), key=lambda v: counts[v])

    def fit(self, table: Table) -> "ModeImputer":
        counts = table.value_counts(self.column)
        if not counts:
            raise EmptyInputError(f"column {self.column!r} has no observed values")
        self._global_mode = self._mode(counts)
        self._group_modes: Dict[tuple, Hashable] = {}
        if self.group_columns:
            table.schema.require(self.group_columns)
            for key, idx in table.group_indices(self.group_columns).items():
                subset_counts = table.take(idx).value_counts(self.column)
                if subset_counts:
                    self._group_modes[key] = self._mode(subset_counts)
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        self._require_fitted()
        spec = table.schema[self.column]
        values = list(table.column(self.column))
        missing = table.missing_mask(self.column)
        group_arrays = [table.column(name) for name in self.group_columns]
        for i in np.flatnonzero(missing):
            if group_arrays:
                key = tuple(array[i] for array in group_arrays)
                values[i] = self._group_modes.get(key, self._global_mode)
            else:
                values[i] = self._global_mode
        return table.with_column(self.column, spec.ctype, values)
