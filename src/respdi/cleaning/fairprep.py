"""FairPrep-style experiment runner (Schelter et al., EDBT 2020).

FairPrep's thesis is that data cleaning and fairness interventions must
be studied *as a pipeline*, with the same hygiene as model evaluation:
fit every data transformation on training data only, apply to held-out
data, and report fairness metrics next to accuracy.
:class:`FairPrepExperiment` packages that protocol:

    raw table -> (optional imputation) -> standardization ->
    (optional pre-processing intervention) -> model -> FairnessReport

Every stage is configurable, so ablations (which imputer? which
intervention? which model?) are one-argument changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from respdi import obs
from respdi._rng import RngLike, ensure_rng
from respdi.cleaning.imputers import Imputer
from respdi.errors import SpecificationError
from respdi.ml.data import standardize_columns, table_to_xy, train_test_split
from respdi.ml.interventions import (
    oversample_groups,
    reweighing_weights,
    smote_oversample,
)
from respdi.ml.metrics import FairnessReport, evaluate_fairness
from respdi.ml.models import LogisticRegression
from respdi.table import Table

ModelFactory = Callable[[], object]

_INTERVENTIONS = ("none", "reweigh", "oversample", "smote")


@dataclass
class FairPrepResult:
    """Outcome of one pipeline configuration."""

    intervention: str
    report: FairnessReport
    train_rows: int
    test_rows: int

    def summary(self) -> Dict[str, float]:
        return {
            "accuracy": self.report.accuracy,
            "dp_difference": self.report.demographic_parity_difference,
            "disparate_impact": self.report.disparate_impact,
            "eo_difference": self.report.equal_opportunity_difference,
            "accuracy_parity": self.report.accuracy_parity_difference,
        }


class FairPrepExperiment:
    """A reproducible cleaning + intervention + model + audit pipeline."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        label_column: str,
        group_columns: Sequence[str],
        imputer: Optional[Imputer] = None,
        intervention: str = "none",
        model_factory: Optional[ModelFactory] = None,
        standardize: bool = True,
    ) -> None:
        if intervention not in _INTERVENTIONS:
            raise SpecificationError(
                f"unknown intervention {intervention!r}; expected one of "
                f"{_INTERVENTIONS}"
            )
        if not feature_columns:
            raise SpecificationError("need at least one feature column")
        if not group_columns:
            raise SpecificationError("need at least one group column")
        self.feature_columns = list(feature_columns)
        self.label_column = label_column
        self.group_columns = list(group_columns)
        self.imputer = imputer
        self.intervention = intervention
        self.model_factory = model_factory or LogisticRegression
        self.standardize = standardize

    def _prepare(self, train: Table, test: Table, rng) -> tuple:
        if self.imputer is not None:
            self.imputer.fit(train)
            train = self.imputer.transform(train)
            test = self.imputer.transform(test)
        if self.standardize:
            reference = train
            train = standardize_columns(train, self.feature_columns, reference)
            test = standardize_columns(test, self.feature_columns, reference)
        return train, test

    def run(
        self,
        train: Table,
        test: Table,
        rng: RngLike = None,
    ) -> FairPrepResult:
        """Run the pipeline with a fixed train/test pair."""
        generator = ensure_rng(rng)
        obs.inc("cleaning.fairprep.runs")
        with obs.trace("cleaning.fairprep.run", intervention=self.intervention):
            with obs.trace("cleaning.fairprep.prepare"):
                train, test = self._prepare(train, test, generator)

            sample_weight = None
            with obs.trace("cleaning.fairprep.intervene"):
                if self.intervention == "reweigh":
                    _, labels, groups = table_to_xy(
                        train, self.feature_columns, self.label_column,
                        self.group_columns,
                    )
                    sample_weight = reweighing_weights(list(groups), labels)
                elif self.intervention == "oversample":
                    train = oversample_groups(
                        train, self.group_columns, generator
                    )
                elif self.intervention == "smote":
                    train = smote_oversample(
                        train, self.group_columns, self.feature_columns,
                        rng=generator,
                    )

            with obs.trace("cleaning.fairprep.fit"):
                X_train, y_train, _ = table_to_xy(
                    train, self.feature_columns, self.label_column,
                    self.group_columns,
                )
                model = self.model_factory()
                model.fit(X_train, y_train, sample_weight=sample_weight)

            with obs.trace("cleaning.fairprep.evaluate"):
                X_test, y_test, test_groups = table_to_xy(
                    test, self.feature_columns, self.label_column,
                    self.group_columns,
                )
                y_pred = model.predict(X_test)
                report = evaluate_fairness(y_test, y_pred, list(test_groups))
        return FairPrepResult(
            intervention=self.intervention,
            report=report,
            train_rows=len(train),
            test_rows=len(test),
        )

    def run_split(
        self,
        table: Table,
        test_fraction: float = 0.3,
        rng: RngLike = None,
    ) -> FairPrepResult:
        """Convenience: split *table* then :meth:`run`."""
        generator = ensure_rng(rng)
        train, test = train_test_split(table, test_fraction, generator)
        return self.run(train, test, generator)


def compare_interventions(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    group_columns: Sequence[str],
    interventions: Sequence[str] = _INTERVENTIONS,
    imputer: Optional[Imputer] = None,
    model_factory: Optional[ModelFactory] = None,
    test_fraction: float = 0.3,
    rng: RngLike = None,
) -> Dict[str, FairPrepResult]:
    """Run the pipeline once per intervention on a shared split."""
    generator = ensure_rng(rng)
    train, test = train_test_split(table, test_fraction, generator)
    results: Dict[str, FairPrepResult] = {}
    for intervention in interventions:
        experiment = FairPrepExperiment(
            feature_columns=feature_columns,
            label_column=label_column,
            group_columns=group_columns,
            imputer=imputer,
            intervention=intervention,
            model_factory=model_factory,
        )
        results[intervention] = experiment.run(train, test, generator)
    return results
