"""respdi.catalog — a persistent, concurrent data-lake catalog.

Registering tables into a :class:`CatalogStore` persists their MinHash
signatures, LSH Ensemble state, keyword/joinability substrate, and
transparency artifacts (nutritional labels, datasheets) to a versioned,
checksummed directory.  :meth:`CatalogStore.index` then rehydrates a
:class:`~respdi.discovery.lake_index.DataLakeIndex` without re-reading
raw data — the *warm start* — with query results identical to a cold
build.  Many processes may read concurrently; writers serialize on a
lock file (:mod:`respdi.catalog.locking`).

Command line: ``respdi-catalog build|add|remove|refresh|query|verify|info``
(also ``python -m respdi.catalog``).
"""

from respdi.catalog.cli import main
from respdi.catalog.locking import break_stale_lock, writer_lock
from respdi.catalog.sharding import (
    ShardedCatalogStore,
    is_sharded,
    open_catalog,
    reshard,
    shard_for,
)
from respdi.catalog.store import (
    CATALOG_SCHEMA_VERSION,
    CatalogStore,
    load_catalog_index,
    table_fingerprint,
)

__all__ = [
    "CATALOG_SCHEMA_VERSION",
    "CatalogStore",
    "ShardedCatalogStore",
    "break_stale_lock",
    "is_sharded",
    "load_catalog_index",
    "main",
    "open_catalog",
    "reshard",
    "shard_for",
    "table_fingerprint",
    "writer_lock",
]
