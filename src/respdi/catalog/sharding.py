"""Sharded catalogs: N independently-locked stores behind one facade.

A single :class:`~respdi.catalog.store.CatalogStore` serializes every
mutation on one writer lock and publishes every commit through one
manifest — correct, but a scaling bottleneck: two writers touching
disjoint tables still contend, and one bulk build is one giant critical
section.  :class:`ShardedCatalogStore` partitions the catalog over
``num_shards`` directories, each a *complete* ``CatalogStore`` (own
manifest, own ensemble, own lock), so builds and refreshes fan out
shard-parallel over :mod:`respdi.parallel` and writers on different
shards never wait on each other.

Layout::

    <catalog>/
      SHARDS.json            # shard count, shard dirs, hasher fingerprint
      shard-0000/            # a full CatalogStore (MANIFEST.json, ...)
      shard-0001/
      ...

Routing is by :func:`shard_for` — a stable blake2b fingerprint of the
table's *name* reduced mod ``num_shards``.  The name, not the content
fingerprint: content changes on every refresh, and an entry must never
migrate between shards when its bytes change (the refresh would look for
it on the wrong shard).  blake2b makes the route a pure function of the
name — identical across processes, platforms, and ``PYTHONHASHSEED``
values, like every other hash in the catalog.

Every shard shares **one** :class:`~respdi.discovery.minhash.MinHasher`
(built once at :meth:`ShardedCatalogStore.create`, persisted per shard,
fingerprint pinned in ``SHARDS.json``).  That is what makes shard-local
sketches globally comparable: a scatter-gathered query scores each
shard's candidates with the same hash family a single unsharded store
would have used, so merged results can be byte-identical to unsharded
ones (see :mod:`respdi.service.sharded`).

Crash semantics compose from the per-shard commit protocol: each shard
publishes atomically via its own manifest rename, so a writer killed
mid-fan-out leaves every shard *independently* complete-old or
complete-new — readers pinned to a generation vector observe one
committed state per shard throughout.  ``SHARDS.json`` itself is written
last during ``create`` (atomic tmp+rename), so a half-created sharded
catalog is simply "not a catalog yet", never a torn one.  The fault
points ``shard.route`` / ``shard.commit`` / ``shard.gather`` expose
routing, the per-shard commit fan-out, and the query-side merge to the
crash matrix in ``tests/test_sharded_crash.py``.
"""

from __future__ import annotations

import json
import os
import shutil
from collections import defaultdict
from hashlib import blake2b
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from respdi import obs
from respdi._fsutil import atomic_write_text
from respdi.catalog.store import (
    MANIFEST_FILENAME,
    CatalogStore,
    table_fingerprint,  # noqa: F401  (re-exported for shard-aware callers)
)
from respdi.discovery.minhash import MinHasher
from respdi.errors import CatalogCorruptError, SpecificationError
from respdi.faults.plan import fault_point
from respdi.parallel import ExecutionContext, map_chunked
from respdi.profiling.datasheets import Datasheet
from respdi.table import Table

PathLike = Union[str, Path]

#: On-disk shard-map format version; bump on incompatible layout changes.
SHARDS_SCHEMA_VERSION = 1

SHARDS_FILENAME = "SHARDS.json"


def shard_dirname(index: int) -> str:
    """The directory name of shard *index* (zero-padded, sorts naturally)."""
    return f"shard-{index:04d}"


def shard_for(name: str, num_shards: int) -> int:
    """The shard index responsible for table *name*.

    A pure function of ``(name, num_shards)``: blake2b over the UTF-8
    name, reduced mod the shard count.  Stable across processes and
    ``PYTHONHASHSEED`` values (property-tested in
    ``tests/test_catalog_sharding.py``), so every process routes every
    table identically without coordination.
    """
    if num_shards < 1:
        raise SpecificationError("num_shards must be >= 1")
    digest = blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def is_sharded(directory: PathLike) -> bool:
    """True when *directory* holds a sharded catalog (has ``SHARDS.json``)."""
    return (Path(directory) / SHARDS_FILENAME).is_file()


def read_shard_spec(directory: PathLike) -> dict:
    """Parse ``SHARDS.json`` without opening the shards."""
    spec_path = Path(directory) / SHARDS_FILENAME
    try:
        with spec_path.open() as handle:
            spec = json.load(handle)
    except OSError:
        raise SpecificationError(
            f"{directory} is not a sharded catalog (no {SHARDS_FILENAME})"
        ) from None
    except ValueError as exc:
        raise CatalogCorruptError(
            f"{spec_path} is not valid JSON: {exc}"
        ) from None
    version = spec.get("schema_version")
    if version != SHARDS_SCHEMA_VERSION:
        raise SpecificationError(
            f"shard map schema_version {version!r} is not supported "
            f"(this library reads {SHARDS_SCHEMA_VERSION})"
        )
    return spec


class _ShardAddTask:
    """Register one shard's routed tables (picklable for ``processes``).

    Each worker opens its shard store *from disk* — no shared store
    object, no shared lock — and registers its subset under that shard's
    own writer lock with one commit.  ``shard.commit`` fires before the
    mutation so the crash matrix can kill a fan-out between shard
    commits and assert per-shard old-or-new.
    """

    __slots__ = ("directory", "descriptions", "store_data")

    def __init__(self, directory: str, descriptions, store_data: bool) -> None:
        self.directory = directory
        self.descriptions = descriptions
        self.store_data = store_data

    def __call__(self, payload: Tuple[int, Dict[str, Table]]) -> int:
        index, tables = payload
        fault_point("shard.commit", shard=index, op="add_tables")
        shard = CatalogStore.open(Path(self.directory) / shard_dirname(index))
        shard.add_tables(
            tables,
            descriptions={
                name: self.descriptions[name]
                for name in tables
                if name in self.descriptions
            },
            store_data=self.store_data,
        )
        return index


class _ShardRefreshTask:
    """Refresh one shard's routed tables (picklable for ``processes``)."""

    __slots__ = ("directory",)

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def __call__(
        self, payload: Tuple[int, Dict[str, Table]]
    ) -> Dict[str, bool]:
        index, tables = payload
        fault_point("shard.commit", shard=index, op="refresh_many")
        shard = CatalogStore.open(Path(self.directory) / shard_dirname(index))
        return shard.refresh_many(tables)


class ShardedCatalogStore:
    """N independently-locked :class:`CatalogStore` shards, one facade.

    Single-table operations route to exactly one shard and cost exactly
    one shard's lock; bulk operations (:meth:`build` via
    :meth:`add_tables`, :meth:`refresh_many`) group tables by shard and
    fan the per-shard work out over :mod:`respdi.parallel` — with the
    ``processes`` backend, shard commits genuinely overlap because each
    worker holds only its own shard's lock.
    """

    def __init__(
        self, directory: PathLike, spec: dict, shards: List[CatalogStore]
    ) -> None:
        self.directory = Path(directory)
        self._spec = spec
        self.shards = shards

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: PathLike,
        num_shards: int = 4,
        num_hashes: int = 128,
        sketch_size: int = 64,
        num_partitions: int = 4,
        values_per_column: int = 50,
        rng=None,
        hasher: Optional[MinHasher] = None,
    ) -> "ShardedCatalogStore":
        """Initialize an empty *num_shards*-way sharded catalog.

        The shard directories are created first; ``SHARDS.json`` — the
        file that makes the directory *be* a sharded catalog — is
        written last, atomically, so a crash mid-create leaves behind
        directories :meth:`open` refuses, never a torn catalog.
        """
        if num_shards < 1:
            raise SpecificationError("num_shards must be >= 1")
        directory = Path(directory)
        if (directory / SHARDS_FILENAME).exists():
            raise SpecificationError(
                f"{directory} already holds a sharded catalog"
            )
        if (directory / MANIFEST_FILENAME).exists():
            raise SpecificationError(
                f"{directory} already holds an unsharded catalog"
            )
        directory.mkdir(parents=True, exist_ok=True)
        if hasher is None:
            hasher = MinHasher(num_hashes, rng)
        shards = [
            CatalogStore.create(
                directory / shard_dirname(index),
                num_hashes=num_hashes,
                sketch_size=sketch_size,
                num_partitions=num_partitions,
                values_per_column=values_per_column,
                rng=rng,
                hasher=hasher,
            )
            for index in range(num_shards)
        ]
        spec = {
            "schema_version": SHARDS_SCHEMA_VERSION,
            "num_shards": num_shards,
            "shards": [shard_dirname(index) for index in range(num_shards)],
            "hasher_fingerprint": hasher.fingerprint,
            "seed": rng if isinstance(rng, int) else None,
        }
        atomic_write_text(
            directory / SHARDS_FILENAME,
            json.dumps(spec, indent=2, sort_keys=True),
        )
        return cls(directory, spec, shards)

    @classmethod
    def open(cls, directory: PathLike) -> "ShardedCatalogStore":
        """Open an existing sharded catalog, validating the shard map."""
        directory = Path(directory)
        with obs.trace("catalog.shards.open", directory=str(directory)):
            spec = read_shard_spec(directory)
            shards = [
                CatalogStore.open(directory / dirname)
                for dirname in spec["shards"]
            ]
            expected = spec.get("hasher_fingerprint")
            for dirname, shard in zip(spec["shards"], shards):
                if shard.hasher.fingerprint != expected:
                    raise CatalogCorruptError(
                        f"shard {dirname} uses a different hash family than "
                        "the shard map pins (mixed-hasher state)"
                    )
            return cls(directory, spec, shards)

    @classmethod
    def build(
        cls,
        directory: PathLike,
        tables: Dict[str, Table],
        descriptions: Optional[Dict[str, str]] = None,
        store_data: bool = False,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
        num_shards: int = 4,
        **create_options,
    ) -> "ShardedCatalogStore":
        """Create a sharded catalog and register every table (cold build).

        Tables route to their shards first; each shard's subset is then
        built by an independent worker holding only that shard's lock,
        so with the ``processes`` backend the expensive sketching *and*
        the commits run genuinely in parallel (``benchmarks/bench_shards.py``
        measures the speedup and asserts result identity).
        """
        store = cls.create(directory, num_shards=num_shards, **create_options)
        store.add_tables(
            tables,
            descriptions=descriptions,
            store_data=store_data,
            context=context,
            n_jobs=n_jobs,
        )
        return store

    # -- shard-map introspection ---------------------------------------------

    @property
    def num_shards(self) -> int:
        return int(self._spec["num_shards"])

    @property
    def hasher(self) -> MinHasher:
        """The hash family every shard shares."""
        return self.shards[0].hasher

    @property
    def num_partitions(self) -> int:
        return self.shards[0].num_partitions

    @property
    def generations(self) -> Tuple[int, ...]:
        """The per-shard generation vector this facade currently reflects.

        One component per shard, in shard order; each component has the
        single-store meaning (one immutable committed shard state), so
        the whole tuple names one committed state *per shard* — the key
        the scatter-gather service pins snapshots and caches results
        under.
        """
        return tuple(int(shard.generation) for shard in self.shards)

    @property
    def names(self) -> List[str]:
        """Registered table names: shard order, registration order within."""
        return [name for shard in self.shards for name in shard.names]

    def __contains__(self, name: str) -> bool:
        return name in self.shards[shard_for(name, self.num_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_of(self, name: str) -> CatalogStore:
        """The shard store responsible for *name* (routing fault-pointed)."""
        index = shard_for(name, self.num_shards)
        fault_point("shard.route", table=name, shard=index)
        return self.shards[index]

    def _route_tables(
        self, tables: Dict[str, Table]
    ) -> Dict[int, Dict[str, Table]]:
        """Group *tables* by shard index, preserving input order per shard."""
        routed: Dict[int, Dict[str, Table]] = defaultdict(dict)
        for name, table in tables.items():
            index = shard_for(name, self.num_shards)
            fault_point("shard.route", table=name, shard=index)
            routed[index][name] = table
        return routed

    # -- mutation ------------------------------------------------------------

    def add_tables(
        self,
        tables: Dict[str, Table],
        descriptions: Optional[Dict[str, str]] = None,
        store_data: bool = False,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        """Bulk-register *tables*, fanning out one worker per shard."""
        if not tables:
            return
        descriptions = dict(descriptions or {})
        routed = self._route_tables(tables)
        payloads = [
            (index, routed[index]) for index in sorted(routed)
        ]
        with obs.trace(
            "catalog.shards.build", tables=len(tables), shards=len(payloads)
        ):
            map_chunked(
                _ShardAddTask(str(self.directory), descriptions, store_data),
                payloads,
                context=context,
                n_jobs=n_jobs,
                label="catalog.shards.build",
            )
        self.reload()

    def refresh_many(
        self,
        tables: Dict[str, Table],
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> Dict[str, bool]:
        """Refresh every table in *tables*; returns ``{name: rebuilt?}``.

        Membership is validated up front (matching the unsharded
        contract: an unknown name raises before *any* shard commits),
        then each shard refreshes its routed subset independently —
        unchanged tables cost one fingerprint, changed ones re-sketch
        and publish under their own shard's lock only.
        """
        routed = self._route_tables(tables)
        for index, subset in routed.items():
            shard = self.shards[index]
            for name in subset:
                if name not in shard:
                    raise SpecificationError(f"table {name!r} is not cataloged")
        payloads = [(index, routed[index]) for index in sorted(routed)]
        with obs.trace(
            "catalog.shards.refresh_many",
            tables=len(tables),
            shards=len(payloads),
        ):
            refreshed = map_chunked(
                _ShardRefreshTask(str(self.directory)),
                payloads,
                context=context,
                n_jobs=n_jobs,
                label="catalog.shards.refresh_many",
            )
        merged: Dict[str, bool] = {}
        for per_shard in refreshed:
            merged.update(per_shard)
        self.reload()
        return {name: merged[name] for name in tables}

    def add_table(self, name: str, table: Table, **kwargs) -> None:
        """Route *name* to its shard and register it there."""
        self.shard_of(name).add_table(name, table, **kwargs)

    def remove_table(self, name: str) -> None:
        self.shard_of(name).remove_table(name)

    def refresh(self, name: str, table: Table) -> bool:
        return self.shard_of(name).refresh(name, table)

    def reload(self) -> None:
        """Re-read every shard manifest (after an out-of-band commit).

        Shard workers mutate their stores through *fresh* opens (their
        own process, their own lock); the facade's shard objects then
        hold pre-commit manifests.  One cheap re-open per shard brings
        the facade back to the latest committed state everywhere.
        """
        self.shards = [
            CatalogStore.open(self.directory / dirname)
            for dirname in self._spec["shards"]
        ]

    # -- per-entry access (routed) -------------------------------------------

    def meta(self, name: str) -> dict:
        return self.shard_of(name).meta(name)

    def table(self, name: str) -> Table:
        return self.shard_of(name).table(name)

    def label(self, name: str):
        return self.shard_of(name).label(name)

    def datasheet(self, name: str) -> Optional[Datasheet]:
        return self.shard_of(name).datasheet(name)

    # -- integrity -----------------------------------------------------------

    def verify(self) -> List[str]:
        """Every shard's problems, prefixed by shard directory.

        One corrupt shard does not hide the others' health: each shard
        verifies independently (the CI smoke test corrupts one shard and
        asserts the siblings still verify clean on their own).
        """
        problems: List[str] = []
        expected = self._spec.get("hasher_fingerprint")
        for dirname, shard in zip(self._spec["shards"], self.shards):
            if shard.hasher.fingerprint != expected:
                problems.append(
                    f"{dirname}: hasher fingerprint does not match shard map"
                )
            problems.extend(
                f"{dirname}: {problem}" for problem in shard.verify()
            )
        return problems


def open_catalog(directory: PathLike) -> Union[CatalogStore, ShardedCatalogStore]:
    """Open *directory* as whichever catalog flavor it holds.

    The CLI's transparency hook: a sharded catalog is recognized by its
    ``SHARDS.json`` and everything downstream (query, info, verify,
    serve) works against either flavor through the shared surface.
    """
    if is_sharded(directory):
        return ShardedCatalogStore.open(directory)
    return CatalogStore.open(directory)


def reshard(
    source_directory: PathLike,
    dest_directory: Optional[PathLike] = None,
    num_shards: int = 4,
    in_place: bool = False,
) -> ShardedCatalogStore:
    """Re-partition a catalog into *num_shards* shards.

    The source may be sharded or plain.  No re-sketching happens: the
    destination shards are created around the **source's own hasher**
    (routing alone changes, never sketch bytes), and every entry's
    committed files are adopted verbatim via
    :meth:`CatalogStore.adopt_entries`, re-checksummed on the way in.
    Query results against the destination are therefore byte-identical
    to the source's — the differential suite asserts it.

    Two modes:

    * **copy** (default): write the resharded catalog to
      *dest_directory*, which must be a **new** directory (or an
      existing empty one) — reshard never writes into a directory that
      already holds anything, so it can never clobber a live catalog, a
      half-finished previous reshard, or unrelated files.  The source is
      left untouched, so the operation is trivially abortable: delete
      the destination and nothing happened.

    * **in-place** (``in_place=True``): build the resharded catalog into
      a sibling temp directory (*dest_directory* if given, else
      ``<source>.reshard.tmp``), then swap it over the source path with
      two directory renames — source → ``<source>.reshard.old``, temp →
      source — and remove the backup.  Each rename is atomic, so a crash
      anywhere leaves a **complete** catalog at either the source path
      or the backup/temp path, never a torn one.  The only non-atomic
      instant is between the two renames, when the source path is
      briefly absent and the backup holds the full original; recovery
      from any interruption is "rename whichever complete directory
      survives back to the source path".  A leftover
      ``<source>.reshard.old`` from an interrupted swap makes the next
      in-place reshard refuse to run until an operator inspects it.
    """
    source_path = Path(source_directory)
    if in_place:
        return _reshard_in_place(source_path, dest_directory, num_shards)
    if dest_directory is None:
        raise SpecificationError(
            "reshard needs a destination directory (or in_place=True)"
        )
    dest = Path(dest_directory)
    if dest.exists() and (not dest.is_dir() or any(dest.iterdir())):
        raise SpecificationError(
            f"reshard destination {dest} exists and is not empty; reshard "
            "writes a NEW directory — pick a fresh path (or remove the "
            "existing one first)"
        )
    source = open_catalog(source_directory)
    source_stores = (
        source.shards if isinstance(source, ShardedCatalogStore) else [source]
    )
    first = source_stores[0]
    dest = ShardedCatalogStore.create(
        dest_directory,
        num_shards=num_shards,
        num_hashes=first.num_hashes,
        sketch_size=first.sketch_size,
        num_partitions=first.num_partitions,
        values_per_column=first.values_per_column,
        hasher=first.hasher,
    )
    with obs.trace(
        "catalog.reshard",
        source=str(source_directory),
        shards=num_shards,
    ):
        for store in source_stores:
            routed: Dict[int, List[str]] = defaultdict(list)
            for name in store.names:
                index = shard_for(name, num_shards)
                fault_point("shard.route", table=name, shard=index)
                routed[index].append(name)
            for index in sorted(routed):
                fault_point("shard.commit", shard=index, op="adopt_entries")
                dest.shards[index].adopt_entries(store, routed[index])
    return dest


def _reshard_in_place(
    source: Path, tmp_directory: Optional[PathLike], num_shards: int
) -> ShardedCatalogStore:
    """Reshard *source* onto its own path via temp-build + rename swap."""
    if not source.is_dir():
        raise SpecificationError(f"{source} is not a catalog directory")
    tmp = (
        Path(tmp_directory)
        if tmp_directory is not None
        else source.parent / (source.name + ".reshard.tmp")
    )
    backup = source.parent / (source.name + ".reshard.old")
    if backup.exists():
        raise SpecificationError(
            f"{backup} exists — a previous in-place reshard was interrupted "
            "mid-swap.  It holds a complete pre-reshard catalog: inspect it, "
            "restore it over the source if needed, then remove it."
        )
    if tmp.exists() and any(tmp.iterdir()):
        raise SpecificationError(
            f"{tmp} exists and is not empty — a previous in-place reshard "
            "left a temp build behind.  Inspect and remove it first."
        )
    reshard(source, tmp, num_shards)
    with obs.trace("catalog.reshard.swap", source=str(source)):
        # Both renames are atomic directory moves on the same filesystem
        # (tmp is a sibling of source unless the operator chose otherwise);
        # a crash between them leaves the complete original at *backup*.
        os.rename(source, backup)
        os.rename(tmp, source)
        shutil.rmtree(backup)
    return ShardedCatalogStore.open(source)
