"""The on-disk catalog: persisted discovery state with warm starts.

A :class:`CatalogStore` is a directory holding, per registered table,
everything :class:`~respdi.discovery.lake_index.DataLakeIndex` needs to
answer discovery queries — MinHash/Lazo sketches, keyword token counts,
joinability column values, correlation sketches — plus optional
transparency artifacts (nutritional label, datasheet) and optionally
the data itself.  Opening a catalog and calling :meth:`CatalogStore.index`
rehydrates a fully-loaded index *without touching raw data* (the warm
start); because the warm path registers the very same
:class:`~respdi.discovery.lake_index.TableArtifacts` the cold path
builds, warm and cold query results are identical.

Layout::

    <catalog>/
      MANIFEST.json          # schema version, config, per-file checksums
      hasher.npz             # the shared MinHasher's coefficients
      ensemble-<gen>.npz     # the frozen LSH Ensemble over all domains
                             # (generation-numbered; named by the manifest,
                             # published by the manifest rename, old
                             # generations GC'd after commit)
      writer.lock            # transient: present only while a writer runs
      entries/<dir>/         # one directory per registered table
        meta.json sketches.npz columns.json keyword.json features.json
        [label.json] [datasheet.json] [data.csv]

Integrity and concurrency:

* every file's blake2b checksum is recorded in the manifest at write
  time and re-verified at read time (:class:`CatalogCorruptError` on
  mismatch), and the manifest pins the hasher fingerprint so sketches
  from a different hash family are rejected instead of silently
  producing garbage similarities;
* writers serialize on a lock file (:mod:`respdi.catalog.locking`) and
  commit by atomically replacing the manifest, so readers — which never
  lock — always see a consistent snapshot; entry directories and
  ensemble generations orphaned by a crash are garbage-collected by the
  next writer, and ``*.tmp`` residue past its grace period is swept by
  :meth:`CatalogStore.open`.

These guarantees are machine-checked: ``tests/test_crash_consistency.py``
kills every mutation at every :func:`~respdi.faults.fault_point` it
crosses (write, fsync, rename, commit, lock transitions) and asserts the
surviving store always opens, verifies clean, and equals the complete
old or complete new state.
"""

from __future__ import annotations

import io
import json
import re
import shutil
import threading
import time
from collections import Counter
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Hashable, List, MutableMapping, Optional, Tuple, Union

import numpy as np

from respdi import obs
from respdi._fsutil import atomic_write_text
from respdi.catalog.locking import writer_lock
from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.lake_index import (
    DataLakeIndex,
    TableArtifacts,
    build_table_artifacts,
)
from respdi.discovery.lazo import LazoSketch
from respdi.discovery.lshensemble import LSHEnsemble
from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.discovery.serialize import (
    lshensemble_to_npz,
    minhasher_from_npz,
    minhasher_to_npz,
    signatures_from_arrays,
    signatures_to_npz,
)
from respdi.errors import CatalogCorruptError, SpecificationError
from respdi.faults.plan import fault_point
from respdi.parallel import ExecutionContext, map_tables
from respdi.profiling.datasheets import Datasheet
from respdi.profiling.export import datasheet_to_dict, label_to_dict
from respdi.profiling.labels import NutritionalLabel, build_nutritional_label
from respdi.profiling.load import dict_to_datasheet, dict_to_label
from respdi.table import Table, read_csv, write_csv
from respdi.table.hashing import digest_categorical

PathLike = Union[str, Path]

#: On-disk manifest format version; bump on incompatible layout changes.
CATALOG_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "MANIFEST.json"
HASHER_FILENAME = "hasher.npz"
#: Legacy fixed ensemble filename; current catalogs write generation-
#: numbered ``ensemble-<gen>.npz`` files named by ``manifest["ensemble_file"]``
#: so the manifest commit — never an in-place overwrite — publishes a new
#: ensemble (a crash between ensemble write and manifest rename must leave
#: the previous referenced ensemble intact and checksum-clean).
ENSEMBLE_FILENAME = "ensemble.npz"
ENTRIES_DIRNAME = "entries"


def _checksum(data: bytes) -> str:
    return blake2b(data, digest_size=16).hexdigest()


def read_manifest(directory: PathLike) -> dict:
    """Parse ``MANIFEST.json`` without opening the full catalog.

    This is the cheap read the service layer polls for generation
    changes: no hasher load, no checksum verification, no
    ``catalog.open`` counter.  The manifest itself is written atomically,
    so the result is always one complete committed manifest (a torn file
    raises :class:`CatalogCorruptError`, matching :meth:`CatalogStore.open`).
    """
    manifest_path = Path(directory) / MANIFEST_FILENAME
    try:
        with manifest_path.open() as handle:
            return json.load(handle)
    except OSError:
        raise SpecificationError(
            f"{directory} is not a catalog (no {MANIFEST_FILENAME})"
        ) from None
    except ValueError as exc:
        raise CatalogCorruptError(
            f"{manifest_path} is not valid JSON: {exc}"
        ) from None


def _file_checksum(path: Path) -> str:
    return _checksum(path.read_bytes())


def table_fingerprint(table: Table) -> str:
    """Content fingerprint of a table: schema plus every cell, hashed.

    Stable across processes (blake2b over array bytes / value reprs),
    so :meth:`CatalogStore.refresh` can skip re-sketching unchanged
    tables no matter which process registered them.
    """
    digest = blake2b(digest_size=16)
    digest.update(
        repr([(spec.name, spec.ctype.value) for spec in table.schema]).encode()
    )
    for spec in table.schema:
        values = table.column(spec.name)
        if spec.is_numeric:
            digest.update(np.ascontiguousarray(values, dtype=float).tobytes())
        else:
            # Streamed: same bytes as ``repr(list(values)).encode()``
            # without materializing one giant string per column.
            digest_categorical(digest, values)
    return digest.hexdigest()


def _entry_dirname(name: str, fingerprint: str) -> str:
    slug = re.sub(r"[^a-z0-9_-]+", "_", name.lower())[:40] or "table"
    name_hash = blake2b(name.encode(), digest_size=4).hexdigest()
    return f"{slug}-{name_hash}-{fingerprint[:8]}"


class _FingerprintTask:
    """Fingerprint one ``(name, table)`` pair (picklable for ``processes``)."""

    __slots__ = ()

    def __call__(self, name: str, table: Table) -> str:
        return table_fingerprint(table)


class _EntrySketchTask:
    """Fingerprint *and* sketch one table for a catalog entry.

    Module-level so the ``processes`` backend can pickle it.  Returns
    ``(fingerprint, artifacts)`` — everything :meth:`CatalogStore._write_entry`
    would otherwise compute inline, moved off the writer's critical path.
    """

    __slots__ = ("descriptions", "hasher", "sketch_size", "values_per_column")

    def __init__(self, descriptions, hasher, sketch_size, values_per_column):
        self.descriptions = descriptions
        self.hasher = hasher
        self.sketch_size = sketch_size
        self.values_per_column = values_per_column

    def __call__(self, name: str, table: Table) -> Tuple[str, TableArtifacts]:
        artifacts = build_table_artifacts(
            name,
            table,
            self.descriptions.get(name),
            hasher=self.hasher,
            sketch_size=self.sketch_size,
            values_per_column=self.values_per_column,
        )
        return table_fingerprint(table), artifacts


class _LazyTables(MutableMapping):
    """``DataLakeIndex.tables`` backed by the catalog's stored CSVs.

    Tables registered cold through the index live in memory as usual;
    tables whose data the catalog stored are parsed on first access.
    """

    def __init__(self, store: "CatalogStore", stored_names) -> None:
        self._store = store
        self._stored = set(stored_names)
        self._loaded: Dict[str, Table] = {}

    def __getitem__(self, name: str) -> Table:
        if name in self._loaded:
            return self._loaded[name]
        if name in self._stored:
            table = self._store.table(name)
            self._loaded[name] = table
            return table
        raise KeyError(name)

    def __setitem__(self, name: str, table: Table) -> None:
        self._loaded[name] = table

    def __delitem__(self, name: str) -> None:
        self._stored.discard(name)
        if name in self._loaded:
            del self._loaded[name]

    def __iter__(self):
        return iter(self._stored | set(self._loaded))

    def __len__(self) -> int:
        return len(self._stored | set(self._loaded))


class CatalogStore:
    """A persistent, concurrent catalog of discovery state for one lake."""

    #: Seconds a mutator waits for the writer lock before raising
    #: :class:`~respdi.errors.CatalogLockedError`.
    lock_timeout: float = 10.0

    #: Age (seconds, by mtime) past which an orphaned ``*.tmp`` file —
    #: the residue of a writer crashed between tmp-write and rename — is
    #: swept by :meth:`open`.  Young tmps are left alone: they may belong
    #: to a writer mid-flight right now.
    tmp_sweep_grace: float = 60.0

    def __init__(self, directory: PathLike, manifest: dict, hasher: MinHasher) -> None:
        self.directory = Path(directory)
        self._manifest = manifest
        self.hasher = hasher
        self._tlock = threading.RLock()
        self._index_cache: Optional[DataLakeIndex] = None
        self._sketch_cache: Dict[str, Dict[str, MinHashSignature]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: PathLike,
        num_hashes: int = 128,
        sketch_size: int = 64,
        num_partitions: int = 4,
        values_per_column: int = 50,
        rng=None,
        hasher: Optional[MinHasher] = None,
    ) -> "CatalogStore":
        """Initialize an empty catalog at *directory*.

        *rng* seeds the shared :class:`MinHasher`; the same seed always
        yields the same hash family, so a catalog created with
        ``rng=7`` is sketch-compatible with ``DataLakeIndex(rng=7)``.
        A caller that must share one hash family across several stores —
        the shards of a :class:`~respdi.catalog.sharding.ShardedCatalogStore`
        — passes the built *hasher* directly instead.
        """
        directory = Path(directory)
        if (directory / MANIFEST_FILENAME).exists():
            raise SpecificationError(f"{directory} already holds a catalog")
        directory.mkdir(parents=True, exist_ok=True)
        (directory / ENTRIES_DIRNAME).mkdir(exist_ok=True)
        if hasher is None:
            hasher = MinHasher(num_hashes, rng)
        elif hasher.num_hashes != num_hashes:
            raise SpecificationError(
                f"explicit hasher has {hasher.num_hashes} hash functions, "
                f"but num_hashes={num_hashes} was requested"
            )
        manifest = {
            "schema_version": CATALOG_SCHEMA_VERSION,
            "num_hashes": num_hashes,
            "sketch_size": sketch_size,
            "num_partitions": num_partitions,
            "values_per_column": values_per_column,
            "seed": rng if isinstance(rng, int) else None,
            "hasher_fingerprint": hasher.fingerprint,
            "files": {},
            "entries": {},
        }
        store = cls(directory, manifest, hasher)
        with writer_lock(directory, timeout=cls.lock_timeout):
            minhasher_to_npz(directory / HASHER_FILENAME, hasher)
            store._rewrite_ensemble()
            manifest["files"][HASHER_FILENAME] = _file_checksum(
                directory / HASHER_FILENAME
            )
            store._write_manifest()
        return store

    @classmethod
    def open(cls, directory: PathLike) -> "CatalogStore":
        """Open an existing catalog, validating version and hasher."""
        directory = Path(directory)
        with obs.trace("catalog.open", directory=str(directory)):
            obs.inc("catalog.open")
            manifest = read_manifest(directory)
            version = manifest.get("schema_version")
            if version != CATALOG_SCHEMA_VERSION:
                raise SpecificationError(
                    f"catalog schema_version {version!r} is not supported "
                    f"(this library reads {CATALOG_SCHEMA_VERSION})"
                )
            hasher_path = directory / HASHER_FILENAME
            expected = manifest.get("files", {}).get(HASHER_FILENAME)
            try:
                data = hasher_path.read_bytes()
            except OSError:
                raise CatalogCorruptError(f"{hasher_path} is missing") from None
            if expected is not None and _checksum(data) != expected:
                raise CatalogCorruptError(
                    f"{hasher_path} does not match its manifest checksum"
                )
            hasher = minhasher_from_npz(hasher_path)
            if hasher.fingerprint != manifest.get("hasher_fingerprint"):
                raise CatalogCorruptError(
                    "persisted hasher does not match the manifest fingerprint "
                    "(mixed-hasher state)"
                )
            cls._sweep_orphan_tmps(directory)
            return cls(directory, manifest, hasher)

    @classmethod
    def build(
        cls,
        directory: PathLike,
        tables: Dict[str, Table],
        descriptions: Optional[Dict[str, str]] = None,
        store_data: bool = False,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
        **create_options,
    ) -> "CatalogStore":
        """Create a catalog and register every table in *tables* (cold build).

        Fingerprinting and sketching fan out per table under the resolved
        :class:`~respdi.parallel.ExecutionContext`; entries are then
        written in input order under one writer lock and published by a
        single commit, so the resulting bytes are identical to a serial
        build (and to the pre-parallel per-table-commit layout).
        """
        store = cls.create(directory, **create_options)
        store.add_tables(
            tables,
            descriptions=descriptions,
            store_data=store_data,
            context=context,
            n_jobs=n_jobs,
        )
        return store

    def add_tables(
        self,
        tables: Dict[str, Table],
        descriptions: Optional[Dict[str, str]] = None,
        store_data: bool = False,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        """Register every table in *tables* under one commit (bulk add).

        The sketch fan-out and single-commit publication of :meth:`build`,
        available on an already-created store — the per-shard worker of a
        sharded build calls this on its shard.  Entries are written in
        input order, so the resulting bytes match a sequence of
        :meth:`add_table` calls collapsed into one generation bump.
        """
        if not tables:
            return
        descriptions = dict(descriptions or {})
        task = _EntrySketchTask(
            descriptions, self.hasher, self.sketch_size, self.values_per_column
        )
        with obs.trace("catalog.build", tables=len(tables)):
            sketched = map_tables(
                task, tables, context=context, n_jobs=n_jobs, label="catalog.build"
            )
            with self._tlock, writer_lock(
                self.directory, timeout=self.lock_timeout
            ):
                self._sync_manifest_locked()
                for name in tables:
                    if name in self._manifest["entries"]:
                        raise SpecificationError(
                            f"table {name!r} is already cataloged (use refresh)"
                        )
                for name, table in tables.items():
                    fingerprint, artifacts = sketched[name]
                    self._write_entry(
                        name,
                        table,
                        description=descriptions.get(name),
                        sensitive_columns=None,
                        target_column=None,
                        store_data=store_data,
                        artifacts=artifacts,
                        fingerprint=fingerprint,
                    )
                self._commit()

    def adopt_entries(self, source: "CatalogStore", names: List[str]) -> None:
        """Copy committed entries from *source* into this store (no re-sketch).

        The file-level migration primitive behind resharding: both stores
        must share one hash family (checked via the hasher fingerprint),
        so the source's entry files — sketches, token counts, metadata —
        are valid here byte-for-byte.  Entry directories are copied,
        re-checksummed against the source manifest, recorded in this
        store's manifest in the given order, and published by one commit.
        """
        if source.hasher.fingerprint != self.hasher.fingerprint:
            raise SpecificationError(
                "cannot adopt entries across different hash families"
            )
        if not names:
            return
        with self._tlock, writer_lock(self.directory, timeout=self.lock_timeout):
            self._sync_manifest_locked()
            for name in names:
                record = source._require_entry(name)
                if name in self._manifest["entries"]:
                    raise SpecificationError(
                        f"table {name!r} is already cataloged here"
                    )
                source_dir = source._entry_dir(record)
                dest_dir = self.directory / ENTRIES_DIRNAME / record["dir"]
                if dest_dir.exists():
                    shutil.rmtree(dest_dir)
                shutil.copytree(source_dir, dest_dir)
                for filename, expected in record["files"].items():
                    if _file_checksum(dest_dir / filename) != expected:
                        raise CatalogCorruptError(
                            f"entry {name!r}: {filename} changed during adoption"
                        )
                self._manifest["entries"][name] = json.loads(
                    json.dumps(record)
                )
            self._commit()

    # -- manifest-backed configuration ---------------------------------------

    @property
    def num_hashes(self) -> int:
        return int(self._manifest["num_hashes"])

    @property
    def sketch_size(self) -> int:
        return int(self._manifest["sketch_size"])

    @property
    def num_partitions(self) -> int:
        return int(self._manifest["num_partitions"])

    @property
    def values_per_column(self) -> int:
        return int(self._manifest["values_per_column"])

    @property
    def generation(self) -> int:
        """The manifest generation this store object currently reflects.

        Every successful commit advances the generation by exactly one
        (it numbers the ensemble file the manifest publishes), so the
        pair ``(directory, generation)`` names one immutable committed
        catalog state — the key the service layer pins snapshots and
        caches query results under.
        """
        return int(self._manifest.get("ensemble_generation", 0))

    @property
    def names(self) -> List[str]:
        """Registered table names, in registration order."""
        return list(self._manifest["entries"])

    def at_manifest(self, manifest: dict) -> "CatalogStore":
        """A read-only sibling store pinned to *manifest*.

        The returned store shares this store's directory and validated
        hasher but reads entries through the given (already committed)
        manifest — the substrate of a snapshot handle.  Mutating through
        it is not supported: writers must go through a store whose
        manifest tracks disk.
        """
        return CatalogStore(self.directory, manifest, self.hasher)

    def __contains__(self, name: str) -> bool:
        return name in self._manifest["entries"]

    def __len__(self) -> int:
        return len(self._manifest["entries"])

    def meta(self, name: str) -> dict:
        """The persisted metadata record for *name* (a fresh dict)."""
        return dict(json.loads(self._read_entry_bytes(name, "meta.json")))

    # -- crash hygiene -------------------------------------------------------

    @classmethod
    def _sweep_orphan_tmps(cls, directory: Path) -> int:
        """Unlink ``*.tmp`` residue older than :attr:`tmp_sweep_grace`.

        A writer crashed between tmp-write and rename leaves
        ``.<name>.<random>.tmp`` files in the catalog root or an entry
        directory.  They are never referenced by a manifest, so they are
        noise, not corruption — but left alone they accumulate forever.
        Swept count lands on the ``catalog.orphans.swept`` counter.
        """
        candidates = list(directory.glob(".*.tmp"))
        entries_dir = directory / ENTRIES_DIRNAME
        if entries_dir.is_dir():
            candidates.extend(entries_dir.glob("*/.*.tmp"))
        now = time.time()
        swept = 0
        for path in candidates:
            try:
                if now - path.stat().st_mtime < cls.tmp_sweep_grace:
                    continue
                path.unlink()
            except OSError:
                continue
            swept += 1
        if swept:
            obs.inc("catalog.orphans.swept", swept)
        return swept

    def _sync_manifest_locked(self) -> None:
        """Re-read the on-disk manifest; call only under the writer lock.

        A store object opened before another *process* committed holds a
        stale in-memory manifest; mutating from it would un-publish that
        writer's entries (a lost update).  Re-reading at lock
        acquisition makes every mutation read-modify-write against the
        latest committed snapshot.
        """
        try:
            text = (self.directory / MANIFEST_FILENAME).read_text()
            manifest = json.loads(text)
        except (OSError, ValueError):  # pragma: no cover - manifest is atomic
            return
        if manifest != self._manifest:
            self._manifest = manifest
            self._sketch_cache.clear()
            self._index_cache = None

    # -- mutation ------------------------------------------------------------

    def add_table(
        self,
        name: str,
        table: Table,
        description: Optional[str] = None,
        sensitive_columns: Optional[Tuple[str, ...]] = None,
        target_column: Optional[str] = None,
        datasheet: Optional[Datasheet] = None,
        store_data: bool = False,
    ) -> None:
        """Sketch *table* and persist its catalog entry.

        When *sensitive_columns* is given a nutritional label is built
        and stored alongside the sketches; a caller-built *datasheet*
        and (with *store_data*) the data itself can ride along too.
        """
        with self._tlock, writer_lock(self.directory, timeout=self.lock_timeout):
            self._sync_manifest_locked()
            if name in self._manifest["entries"]:
                raise SpecificationError(
                    f"table {name!r} is already cataloged (use refresh)"
                )
            self._write_entry(
                name,
                table,
                description=description,
                sensitive_columns=sensitive_columns,
                target_column=target_column,
                datasheet=datasheet,
                store_data=store_data,
            )
            self._commit()

    def remove_table(self, name: str) -> None:
        """Drop *name* from the catalog (entry files are garbage-collected)."""
        with self._tlock, writer_lock(self.directory, timeout=self.lock_timeout):
            self._sync_manifest_locked()
            if name not in self._manifest["entries"]:
                raise SpecificationError(f"table {name!r} is not cataloged")
            del self._manifest["entries"][name]
            self._sketch_cache.pop(name, None)
            self._commit()

    def refresh(self, name: str, table: Table) -> bool:
        """Re-sketch *name* only if its content changed.

        Returns True when the entry was rebuilt, False when the stored
        fingerprint already matches *table* (nothing rewritten).
        """
        with self._tlock, writer_lock(self.directory, timeout=self.lock_timeout):
            self._sync_manifest_locked()
            record = self._manifest["entries"].get(name)
            if record is None:
                raise SpecificationError(f"table {name!r} is not cataloged")
            fingerprint = table_fingerprint(table)
            if fingerprint == record["fingerprint"]:
                obs.inc("catalog.hit")
                return False
            obs.inc("catalog.rebuild")
            self._rewrite_changed_entry(name, table, fingerprint)
            self._commit()
            return True

    def refresh_many(
        self,
        tables: Dict[str, Table],
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> Dict[str, bool]:
        """Refresh every table in *tables*; returns ``{name: rebuilt?}``.

        Fingerprints are compared against the manifest *before* any
        sketch work is scheduled: a no-op refresh (nothing changed) costs
        one fingerprint per table and exactly zero sketch calls.  Only
        the changed subset fans out for re-sketching, and one commit
        publishes all rebuilt entries.
        """
        with self._tlock, writer_lock(self.directory, timeout=self.lock_timeout):
            self._sync_manifest_locked()
            for name in tables:
                if name not in self._manifest["entries"]:
                    raise SpecificationError(f"table {name!r} is not cataloged")
            with obs.trace("catalog.refresh_many", tables=len(tables)):
                fingerprints = map_tables(
                    _FingerprintTask(),
                    tables,
                    context=context,
                    n_jobs=n_jobs,
                    label="catalog.fingerprint",
                )
                changed = {
                    name: table
                    for name, table in tables.items()
                    if fingerprints[name]
                    != self._manifest["entries"][name]["fingerprint"]
                }
                obs.inc("catalog.hit", len(tables) - len(changed))
                if not changed:
                    return {name: False for name in tables}
                obs.inc("catalog.rebuild", len(changed))
                metas = {name: self.meta(name) for name in changed}
                task = _EntrySketchTask(
                    {
                        name: meta.get("description")
                        for name, meta in metas.items()
                    },
                    self.hasher,
                    self.sketch_size,
                    self.values_per_column,
                )
                sketched = map_tables(
                    task,
                    changed,
                    context=context,
                    n_jobs=n_jobs,
                    label="catalog.refresh_many",
                )
                for name, table in changed.items():
                    fingerprint, artifacts = sketched[name]
                    self._rewrite_changed_entry(
                        name, table, fingerprint, artifacts=artifacts,
                        meta=metas[name],
                    )
                self._commit()
            return {name: name in changed for name in tables}

    def _rewrite_changed_entry(
        self,
        name: str,
        table: Table,
        fingerprint: str,
        artifacts: Optional[TableArtifacts] = None,
        meta: Optional[dict] = None,
    ) -> None:
        """Replace *name*'s entry in the manifest, preserving its metadata."""
        meta = self.meta(name) if meta is None else meta
        del self._manifest["entries"][name]
        self._sketch_cache.pop(name, None)
        self._write_entry(
            name,
            table,
            description=meta.get("description"),
            sensitive_columns=(
                tuple(meta["sensitive_columns"])
                if meta.get("sensitive_columns")
                else None
            ),
            target_column=meta.get("target_column"),
            store_data=bool(meta.get("stored_data")),
            artifacts=artifacts,
            fingerprint=fingerprint,
        )

    # -- the warm start ------------------------------------------------------

    def index(self) -> DataLakeIndex:
        """A :class:`DataLakeIndex` rehydrated from persisted artifacts.

        No raw data is read (stored tables load lazily on access).  The
        result is cached until the next mutation; repeated calls count
        as ``catalog.hit``.
        """
        with self._tlock:
            if self._index_cache is not None:
                obs.inc("catalog.hit")
                return self._index_cache
            with obs.trace("catalog.warm_start", entries=len(self)):
                index = DataLakeIndex(
                    num_hashes=self.num_hashes,
                    sketch_size=self.sketch_size,
                    num_partitions=self.num_partitions,
                    hasher=self.hasher,
                )
                index.keyword.values_per_column = self.values_per_column
                stored = []
                for name, record in self._manifest["entries"].items():
                    index.register_artifacts(self._load_artifacts(name))
                    if record.get("stored_data"):
                        stored.append(name)
                index.tables = _LazyTables(self, stored)
                self._index_cache = index
            return index

    # -- per-entry artifact access -------------------------------------------

    def table(self, name: str) -> Table:
        """The stored data for *name* (only with ``store_data=True``)."""
        record = self._require_entry(name)
        if "data.csv" not in record["files"]:
            raise SpecificationError(
                f"table {name!r} was cataloged without store_data"
            )
        self._read_entry_bytes(name, "data.csv")  # checksum gate
        return read_csv(self._entry_dir(record) / "data.csv")

    def label(self, name: str) -> Optional[NutritionalLabel]:
        """The stored nutritional label for *name*, or None."""
        record = self._require_entry(name)
        if "label.json" not in record["files"]:
            return None
        payload = json.loads(self._read_entry_bytes(name, "label.json"))
        return dict_to_label(payload)

    def datasheet(self, name: str) -> Optional[Datasheet]:
        """The stored datasheet for *name*, or None."""
        record = self._require_entry(name)
        if "datasheet.json" not in record["files"]:
            return None
        payload = json.loads(self._read_entry_bytes(name, "datasheet.json"))
        return dict_to_datasheet(payload)

    # -- integrity -----------------------------------------------------------

    def verify(self) -> List[str]:
        """Check every cataloged file against its manifest checksum.

        Returns a list of human-readable problems (empty = healthy).
        Unlike the read path, which fails fast, this walks everything.
        """
        problems: List[str] = []
        for filename, expected in self._manifest.get("files", {}).items():
            path = self.directory / filename
            try:
                actual = _file_checksum(path)
            except OSError:
                problems.append(f"{filename}: missing")
                continue
            if actual != expected:
                problems.append(f"{filename}: checksum mismatch")
        if self.hasher.fingerprint != self._manifest.get("hasher_fingerprint"):
            problems.append("hasher fingerprint does not match manifest")
        for name, record in self._manifest["entries"].items():
            entry_dir = self._entry_dir(record)
            if not entry_dir.is_dir():
                problems.append(f"entry {name!r}: directory {record['dir']} missing")
                continue
            for filename, expected in record["files"].items():
                path = entry_dir / filename
                try:
                    actual = _file_checksum(path)
                except OSError:
                    problems.append(f"entry {name!r}: {filename} missing")
                    continue
                if actual != expected:
                    problems.append(f"entry {name!r}: {filename} checksum mismatch")
        return problems

    # -- internals -----------------------------------------------------------

    def _require_entry(self, name: str) -> dict:
        record = self._manifest["entries"].get(name)
        if record is None:
            raise SpecificationError(f"table {name!r} is not cataloged")
        return record

    def _entry_dir(self, record: dict) -> Path:
        return self.directory / ENTRIES_DIRNAME / record["dir"]

    def _read_entry_bytes(self, name: str, filename: str) -> bytes:
        record = self._require_entry(name)
        expected = record["files"].get(filename)
        if expected is None:
            raise CatalogCorruptError(
                f"entry {name!r} has no {filename} in the manifest"
            )
        path = self._entry_dir(record) / filename
        try:
            data = path.read_bytes()
        except OSError:
            raise CatalogCorruptError(f"{path} is missing") from None
        fault_point("catalog.entry.read", name=name, filename=filename)
        if _checksum(data) != expected:
            raise CatalogCorruptError(
                f"{path} does not match its manifest checksum "
                "(corrupted or tampered entry)"
            )
        return data

    def _entry_signatures(self, name: str) -> Dict[str, MinHashSignature]:
        cached = self._sketch_cache.get(name)
        if cached is None:
            data = self._read_entry_bytes(name, "sketches.npz")
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                arrays = {member: archive[member] for member in archive.files}
            cached = signatures_from_arrays(
                arrays, self.hasher, source=f"entry {name!r} sketches"
            )
            self._sketch_cache[name] = cached
        return cached

    def _load_artifacts(self, name: str) -> TableArtifacts:
        meta = self.meta(name)
        token_counts = Counter(
            {
                token: int(count)
                for token, count in json.loads(
                    self._read_entry_bytes(name, "keyword.json")
                ).items()
            }
        )
        column_values: Dict[str, List[Hashable]] = {
            column: list(values)
            for column, values in json.loads(
                self._read_entry_bytes(name, "columns.json")
            ).items()
        }
        column_sketches = {
            column: LazoSketch(
                signature=signature, cardinality=signature.cardinality
            )
            for column, signature in self._entry_signatures(name).items()
        }
        feature_sketches: Dict[Tuple[str, str], CorrelationSketch] = {}
        for sketch in json.loads(self._read_entry_bytes(name, "features.json"))[
            "sketches"
        ]:
            feature_sketches[
                (sketch["key_column"], sketch["feature_column"])
            ] = CorrelationSketch(
                entries=tuple(
                    (int(h), key, float(value)) for h, key, value in sketch["entries"]
                ),
                num_keys=int(sketch["num_keys"]),
                seed=int(sketch["seed"]),
            )
        return TableArtifacts(
            name=name,
            description=meta.get("description"),
            schema=[tuple(pair) for pair in meta["schema"]],
            row_count=int(meta["row_count"]),
            token_counts=token_counts,
            column_values=column_values,
            column_sketches=column_sketches,
            feature_sketches=feature_sketches,
        )

    def _write_entry(
        self,
        name: str,
        table: Table,
        description: Optional[str],
        sensitive_columns: Optional[Tuple[str, ...]],
        target_column: Optional[str],
        datasheet: Optional[Datasheet] = None,
        store_data: bool = False,
        artifacts: Optional[TableArtifacts] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        if artifacts is None:
            artifacts = build_table_artifacts(
                name,
                table,
                description,
                hasher=self.hasher,
                sketch_size=self.sketch_size,
                values_per_column=self.values_per_column,
            )
        if fingerprint is None:
            fingerprint = table_fingerprint(table)
        dirname = _entry_dirname(name, fingerprint)
        entry_dir = self.directory / ENTRIES_DIRNAME / dirname
        if entry_dir.exists():
            shutil.rmtree(entry_dir)
        entry_dir.mkdir(parents=True)

        meta = {
            "name": name,
            "description": description,
            "schema": [list(pair) for pair in artifacts.schema],
            "row_count": artifacts.row_count,
            "fingerprint": fingerprint,
            "sensitive_columns": (
                list(sensitive_columns) if sensitive_columns else None
            ),
            "target_column": target_column,
            "stored_data": bool(store_data),
        }
        atomic_write_text(
            entry_dir / "meta.json", json.dumps(meta, indent=2, sort_keys=True)
        )
        signatures = {
            column: sketch.signature
            for column, sketch in artifacts.column_sketches.items()
        }
        signatures_to_npz(entry_dir / "sketches.npz", signatures, self.hasher)
        atomic_write_text(
            entry_dir / "columns.json",
            json.dumps(artifacts.column_values, indent=2),
        )
        # Token order is Counter insertion order; keep it (no sort_keys) so
        # the warm index accumulates TF-IDF sums in the cold order and
        # scores stay bit-identical.
        atomic_write_text(
            entry_dir / "keyword.json",
            json.dumps(dict(artifacts.token_counts), indent=2),
        )
        atomic_write_text(
            entry_dir / "features.json",
            json.dumps(
                {
                    "sketches": [
                        {
                            "key_column": key_column,
                            "feature_column": feature_column,
                            "seed": sketch.seed,
                            "num_keys": sketch.num_keys,
                            "entries": [list(entry) for entry in sketch.entries],
                        }
                        for (key_column, feature_column), sketch in (
                            artifacts.feature_sketches.items()
                        )
                    ]
                },
                indent=2,
            ),
        )
        if sensitive_columns:
            label = build_nutritional_label(
                table, sensitive_columns, target_column=target_column
            )
            atomic_write_text(
                entry_dir / "label.json",
                json.dumps(label_to_dict(label), indent=2),
            )
        if datasheet is not None:
            atomic_write_text(
                entry_dir / "datasheet.json",
                json.dumps(datasheet_to_dict(datasheet), indent=2),
            )
        if store_data:
            write_csv(table, entry_dir / "data.csv")

        self._manifest["entries"][name] = {
            "dir": dirname,
            "fingerprint": fingerprint,
            "row_count": artifacts.row_count,
            "stored_data": bool(store_data),
            # *.tmp residue (a crashed writer's half-finished atomic
            # write) must never be checksummed into the manifest: it is
            # sweepable noise, and manifesting it would turn the later
            # sweep into a phantom "file missing" corruption.
            "files": {
                path.name: _file_checksum(path)
                for path in sorted(entry_dir.iterdir())
                if not path.name.endswith(".tmp")
            },
        }
        self._sketch_cache[name] = signatures

    def _rewrite_ensemble(self) -> None:
        # The ensemble lands in a fresh generation-numbered file and is
        # published by the manifest rename that follows — never by
        # overwriting the referenced file in place.  A crash after this
        # write but before the manifest commit leaves the previous
        # referenced ensemble intact, so the store still verifies clean
        # as the complete old state; the orphaned new generation is
        # garbage-collected by the next successful commit.
        ensemble = LSHEnsemble(
            hasher=self.hasher, num_partitions=self.num_partitions
        )
        for name in self._manifest["entries"]:
            for column, signature in self._entry_signatures(name).items():
                ensemble.index_signature((name, column), signature)
        if self._manifest["entries"]:
            ensemble.freeze()
        previous = self._manifest.get("ensemble_file")
        if previous is None and ENSEMBLE_FILENAME in self._manifest["files"]:
            previous = ENSEMBLE_FILENAME  # pre-generation layout
        generation = int(self._manifest.get("ensemble_generation", 0)) + 1
        filename = f"ensemble-{generation:08d}.npz"
        lshensemble_to_npz(self.directory / filename, ensemble)
        if previous is not None and previous != filename:
            self._manifest["files"].pop(previous, None)
        self._manifest["ensemble_file"] = filename
        self._manifest["ensemble_generation"] = generation
        self._manifest["files"][filename] = _file_checksum(
            self.directory / filename
        )

    def _write_manifest(self) -> None:
        # Entry order is registration order; do NOT sort keys here, or
        # warm registration order (and hence parity with the cold index)
        # would silently change.
        atomic_write_text(
            self.directory / MANIFEST_FILENAME,
            json.dumps(self._manifest, indent=2),
        )

    def _commit(self) -> None:
        """Publish the in-memory manifest: ensemble, manifest swap, GC."""
        fault_point("catalog.commit.ensemble")
        self._rewrite_ensemble()
        fault_point("catalog.commit.manifest")
        self._write_manifest()
        fault_point("catalog.commit.gc")
        self._gc()
        self._index_cache = None

    def _gc(self) -> None:
        referenced = {
            record["dir"] for record in self._manifest["entries"].values()
        }
        current_ensemble = self._manifest.get("ensemble_file")
        for child in self.directory.glob("ensemble*.npz"):
            if child.name != current_ensemble:
                try:
                    child.unlink()
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
        entries_dir = self.directory / ENTRIES_DIRNAME
        if not entries_dir.is_dir():
            return
        for child in entries_dir.iterdir():
            if child.is_dir() and child.name not in referenced:
                shutil.rmtree(child, ignore_errors=True)


def load_catalog_index(directory: PathLike) -> DataLakeIndex:
    """One-call warm start: open the catalog and rehydrate its index."""
    return CatalogStore.open(directory).index()
