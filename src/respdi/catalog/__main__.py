"""``python -m respdi.catalog`` — the ``respdi-catalog`` command line."""

import sys

from respdi.catalog.cli import main

if __name__ == "__main__":
    sys.exit(main())
