"""Single-writer locking for an on-disk catalog.

Concurrency model: **many readers, one writer**.  Readers never lock —
every mutation lands via an atomic manifest replace, so a reader sees
either the previous or the next consistent snapshot.  Writers serialize
on a lock file created with ``O_CREAT | O_EXCL`` (atomic on every
platform and on NFS since v3), which holds the owner's pid so a lock
orphaned by a killed process can be detected and broken.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from respdi.errors import CatalogLockedError

LOCK_FILENAME = "writer.lock"


def _lock_owner(lock_path: Path) -> Optional[int]:
    """The pid recorded in the lock file, or None if unreadable/gone."""
    try:
        text = lock_path.read_text().strip()
        return int(text)
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


def break_stale_lock(directory: Union[str, Path]) -> bool:
    """Remove the lock file if its owning process is dead.

    Returns True when a stale lock was removed.  Only same-host
    liveness is checkable; a lock from another host is never broken.
    """
    lock_path = Path(directory) / LOCK_FILENAME
    owner = _lock_owner(lock_path)
    if owner is None or _pid_alive(owner):
        return False
    try:
        lock_path.unlink()
    except OSError:
        return False
    return True


@contextmanager
def writer_lock(
    directory: Union[str, Path],
    timeout: float = 10.0,
    poll_interval: float = 0.05,
) -> Iterator[None]:
    """Hold the exclusive writer lock for *directory*.

    Acquisition retries until *timeout* seconds elapse, breaking stale
    locks (dead same-host owners) along the way, then raises
    :class:`~respdi.errors.CatalogLockedError`.
    """
    lock_path = Path(directory) / LOCK_FILENAME
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if break_stale_lock(directory):
                continue
            if time.monotonic() >= deadline:
                owner = _lock_owner(lock_path)
                raise CatalogLockedError(
                    f"catalog at {directory} is locked by "
                    f"{'pid ' + str(owner) if owner else 'another writer'} "
                    f"(waited {timeout:.1f}s)"
                ) from None
            time.sleep(poll_interval)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    try:
        yield
    finally:
        try:
            lock_path.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
