"""Single-writer locking for an on-disk catalog.

Concurrency model: **many readers, one writer**.  Readers never lock —
every mutation lands via an atomic manifest replace, so a reader sees
either the previous or the next consistent snapshot.  Writers serialize
on a lock file created with ``O_CREAT | O_EXCL`` (atomic on every
platform and on NFS since v3), which holds the owner's pid so a lock
orphaned by a killed process can be detected and broken.

Two crash windows the fault-injection matrix exercises:

* a writer killed *while holding* the lock leaves a lock file with a
  dead pid — any later writer breaks it (``catalog.lock.broken`` counts
  each break so lock takeovers stay auditable);
* a writer killed *between* creating the lock file and recording its
  pid leaves an empty lock no pid check can clear — such unreadable
  locks are treated as stale once older than
  :data:`UNREADABLE_LOCK_GRACE_SECONDS` (a live writer writes its pid
  within microseconds of creation).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from respdi import obs
from respdi.errors import CatalogLockedError
from respdi.faults.plan import fault_point

LOCK_FILENAME = "writer.lock"

#: Age (seconds, by mtime) past which a lock file with no readable pid —
#: the residue of a writer killed before it recorded its pid — is
#: considered stale and broken.  Long enough that a live writer has
#: always written its pid; short enough that a crashed one never wedges
#: the catalog.
UNREADABLE_LOCK_GRACE_SECONDS = 5.0


def _lock_owner(lock_path: Path) -> Optional[int]:
    """The pid recorded in the lock file, or None if unreadable/gone."""
    try:
        text = lock_path.read_text().strip()
        return int(text)
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


def break_stale_lock(directory: Union[str, Path]) -> bool:
    """Remove the lock file if its owning process is certainly not writing.

    Stale means: the recorded pid belongs to a dead process, or the file
    holds no readable pid (writer killed before recording it) and is
    older than :data:`UNREADABLE_LOCK_GRACE_SECONDS`.  Returns True when
    a stale lock was removed; each break increments the
    ``catalog.lock.broken`` audit counter.  Only same-host liveness is
    checkable; a lock from another host is never broken.
    """
    lock_path = Path(directory) / LOCK_FILENAME
    owner = _lock_owner(lock_path)
    if owner is not None:
        if _pid_alive(owner):
            return False
    else:
        # No readable pid: either the file is gone (nothing to break) or
        # a writer died between O_CREAT|O_EXCL and writing its pid.  Only
        # break the latter, and only once it is unambiguously old.
        try:
            age = time.time() - lock_path.stat().st_mtime
        except OSError:
            return False
        if age < UNREADABLE_LOCK_GRACE_SECONDS:
            return False
    fault_point("catalog.lock.break", directory=str(directory))
    try:
        lock_path.unlink()
    except OSError:
        return False
    obs.inc("catalog.lock.broken")
    return True


@contextmanager
def writer_lock(
    directory: Union[str, Path],
    timeout: float = 10.0,
    poll_interval: float = 0.05,
) -> Iterator[None]:
    """Hold the exclusive writer lock for *directory*.

    Acquisition retries until *timeout* seconds elapse, breaking stale
    locks (dead same-host owners, pid-less residues past their grace
    period) along the way, then raises
    :class:`~respdi.errors.CatalogLockedError`.
    """
    lock_path = Path(directory) / LOCK_FILENAME
    fault_point("catalog.lock.acquire", directory=str(directory))
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if break_stale_lock(directory):
                continue
            if time.monotonic() >= deadline:
                owner = _lock_owner(lock_path)
                raise CatalogLockedError(
                    f"catalog at {directory} is locked by "
                    f"{'pid ' + str(owner) if owner else 'another writer'} "
                    f"(waited {timeout:.1f}s)"
                ) from None
            time.sleep(poll_interval)
    try:
        # A crash here is the pid-less-lock window the grace-period break
        # above exists for.
        fault_point("catalog.lock.acquired", directory=str(directory))
        os.write(fd, str(os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    try:
        yield
    finally:
        fault_point("catalog.lock.release", directory=str(directory))
        try:
            lock_path.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
