"""``respdi-catalog`` — build, maintain, and query a persisted catalog.

Usage::

    respdi-catalog build DIR table1.csv table2.csv [--seed 7] [--store-data]
        [--jobs N] [--shards N]
    respdi-catalog add DIR table.csv [--name n] [--description text]
        [--sensitive col,col] [--target y] [--store-data]
    respdi-catalog remove DIR NAME
    respdi-catalog refresh DIR table.csv [table2.csv ...] [--name n] [--jobs N]
    respdi-catalog query DIR (--keyword TEXT | --union table.csv
        | --join table.csv:COLUMN) [-k 10] [--cached]
    respdi-catalog serve DIR [--cache-size N] [--max-requests N]
        [--port P [--host H] [--max-inflight N] [--quota TENANT=RATE[:BURST]]
         [--tenant-rate R] [--tenant-burst B]]
        [--pcache [--pcache-dir DIR] [--pcache-size N]]
    respdi-catalog watch DIR SOURCE [SOURCE ...] [--interval SEC]
        [--max-cycles N] [--once] [--keep-missing] [--jobs N]
    respdi-catalog verify DIR
    respdi-catalog info DIR
    respdi-catalog reshard SRC DEST --shards N   # DEST must be new/empty
    respdi-catalog reshard SRC --shards N --in-place   # atomic swap

Exit codes: 0 success, 1 usage or runtime error, 2 verification failure
— so ``respdi-catalog verify`` drops into CI integrity gates directly.

``query`` and ``serve`` answer through the shared query service for the
directory: the store is opened (and its checksums verified) once per
process, snapshots are pinned per committed generation, and — with
``--cached`` — repeated queries are served from the generation-keyed
LRU result cache.

Sharding is transparent past ``build --shards N``: every other command
detects ``SHARDS.json`` and routes through
:class:`~respdi.catalog.sharding.ShardedCatalogStore` /
:class:`~respdi.service.sharded.ShardedQueryService`, so scripts do not
care which layout a directory holds (query results are byte-identical
either way).  A single shard is also a complete plain catalog, so
``verify``/``query``/``info`` on ``DIR/shard-0003`` work too.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from respdi.catalog.sharding import (
    ShardedCatalogStore,
    is_sharded,
    open_catalog,
    reshard,
)
from respdi.catalog.store import CatalogStore
from respdi.errors import RespdiError
from respdi.parallel import ExecutionContext
from respdi.table import read_csv


def _add_jobs_flag(subparser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan per-table fingerprinting/sketching out over N worker "
            "processes (results are byte-identical to serial)"
        ),
    )


def _jobs_context(jobs: Optional[int]) -> Optional[ExecutionContext]:
    """CLI ``--jobs`` maps to the processes backend (sketching is CPU-bound)."""
    if jobs is None:
        return None
    if jobs <= 1:
        return ExecutionContext()
    return ExecutionContext(backend="processes", n_jobs=jobs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="respdi-catalog",
        description="Persist and query data-lake discovery state.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="create a catalog from CSV tables")
    build.add_argument("directory", help="catalog directory to create")
    build.add_argument("csv", nargs="+", help="CSV tables (#types: header)")
    build.add_argument("--num-hashes", type=int, default=128)
    build.add_argument("--seed", type=int, default=None, help="MinHasher seed")
    build.add_argument(
        "--store-data", action="store_true", help="also store the CSV data"
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "partition the catalog over N independently-locked shards "
            "(query results are byte-identical to an unsharded build)"
        ),
    )
    _add_jobs_flag(build)

    add = sub.add_parser("add", help="register one CSV table")
    add.add_argument("directory", help="existing catalog directory")
    add.add_argument("csv", help="CSV table (#types: header)")
    add.add_argument("--name", default=None, help="table name (default: stem)")
    add.add_argument("--description", default=None)
    add.add_argument(
        "--sensitive",
        default=None,
        help="comma-separated sensitive columns (stores a nutritional label)",
    )
    add.add_argument("--target", default=None, help="target column for the label")
    add.add_argument("--store-data", action="store_true")

    remove = sub.add_parser("remove", help="drop a cataloged table")
    remove.add_argument("directory")
    remove.add_argument("name")

    refresh = sub.add_parser(
        "refresh", help="re-sketch tables only if their content changed"
    )
    refresh.add_argument("directory")
    refresh.add_argument("csv", nargs="+")
    refresh.add_argument(
        "--name", default=None, help="table name (single CSV only; default: stem)"
    )
    _add_jobs_flag(refresh)

    query = sub.add_parser("query", help="warm-start discovery queries")
    query.add_argument("directory")
    mode = query.add_mutually_exclusive_group(required=True)
    mode.add_argument("--keyword", default=None, help="keyword search text")
    mode.add_argument(
        "--union", default=None, help="CSV whose unionable tables to find"
    )
    mode.add_argument(
        "--join",
        default=None,
        metavar="CSV:COLUMN",
        help="find columns joinable with COLUMN of CSV",
    )
    query.add_argument("-k", type=int, default=10, help="max results")
    query.add_argument(
        "--cached",
        action="store_true",
        help=(
            "serve repeated identical queries from the generation-keyed "
            "result cache (results are byte-identical to uncached)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="answer JSON-lines query requests from stdin (long-lived)",
    )
    serve.add_argument("directory")
    serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="LRU result-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every request even when a cached result exists",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after N requests (default: serve until EOF/stop)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help=(
            "serve over TCP instead of stdin: a threaded multi-tenant "
            "socket server on PORT (0 picks an ephemeral port, printed "
            "on startup)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port (default 127.0.0.1; widen explicitly)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bound on concurrently executing requests; excess load is "
            "shed with in-band overloaded responses (socket mode only)"
        ),
    )
    serve.add_argument(
        "--quota",
        action="append",
        default=None,
        metavar="TENANT=RATE[:BURST]",
        help=(
            "per-tenant token-bucket quota in requests/second (repeatable; "
            "socket mode only)"
        ),
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="R",
        help="default requests/second for tenants without an explicit --quota",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=8.0,
        metavar="B",
        help="default burst size for tenants without an explicit --quota",
    )
    serve.add_argument(
        "--pcache",
        action="store_true",
        help=(
            "persist rendered results to an on-disk sidecar "
            "(<catalog>/pcache.d) so a restarted server warm-starts; "
            "entries are checksum-gated and generation-keyed"
        ),
    )
    serve.add_argument(
        "--pcache-dir",
        default=None,
        metavar="DIR",
        help="sidecar directory (default: <catalog>/pcache.d; implies --pcache)",
    )
    serve.add_argument(
        "--pcache-size",
        type=int,
        default=4096,
        metavar="N",
        help="max persistent-cache entries before LRU-by-mtime eviction",
    )

    watch = sub.add_parser(
        "watch",
        help=(
            "continuously ingest source CSV changes into the catalog "
            "(content-fingerprint diff; readers keep serving throughout)"
        ),
    )
    watch.add_argument("directory", help="existing catalog directory")
    watch.add_argument(
        "source",
        nargs="+",
        help="source directories (their *.csv) or glob patterns to watch",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between scan cycles (default 1.0)",
    )
    watch.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help="stop after N cycles (default: run until interrupted)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="run exactly one cycle and exit (same as --max-cycles 1)",
    )
    watch.add_argument(
        "--keep-missing",
        action="store_true",
        help=(
            "never remove cataloged tables whose source file disappeared "
            "(default: sources are the authority over membership)"
        ),
    )
    _add_jobs_flag(watch)

    verify = sub.add_parser("verify", help="check every file checksum")
    verify.add_argument("directory")

    info = sub.add_parser("info", help="print catalog configuration and entries")
    info.add_argument("directory")

    reshard_cmd = sub.add_parser(
        "reshard",
        help=(
            "re-partition a catalog into N shards (no re-sketching); DEST "
            "must be a new or empty directory — reshard never overwrites"
        ),
    )
    reshard_cmd.add_argument("source", help="existing catalog (sharded or not)")
    reshard_cmd.add_argument(
        "dest",
        nargs="?",
        default=None,
        help=(
            "directory for the resharded catalog; created fresh — an "
            "existing non-empty path is refused (the source stays intact, "
            "so aborting = deleting DEST).  With --in-place: optional temp "
            "build directory (default <SRC>.reshard.tmp)"
        ),
    )
    reshard_cmd.add_argument(
        "--shards", type=int, required=True, metavar="N", help="new shard count"
    )
    reshard_cmd.add_argument(
        "--in-place",
        action="store_true",
        help=(
            "reshard onto the source path itself: build into a sibling "
            "temp directory, then swap with atomic renames — a crash at "
            "any instant leaves a complete catalog (at SRC or at "
            "SRC.reshard.old), never a torn one"
        ),
    )

    return parser


def _table_name(csv_path: str, override: Optional[str]) -> str:
    return override if override else Path(csv_path).stem


def _cmd_build(args) -> int:
    tables = {_table_name(path, None): read_csv(path) for path in args.csv}
    if args.shards is not None:
        store = ShardedCatalogStore.build(
            args.directory,
            tables,
            store_data=args.store_data,
            context=_jobs_context(args.jobs),
            num_shards=args.shards,
            num_hashes=args.num_hashes,
            rng=args.seed,
        )
        print(
            f"sharded catalog created at {store.directory} with "
            f"{len(store)} table(s) over {store.num_shards} shard(s)"
        )
        return 0
    store = CatalogStore.build(
        args.directory,
        tables,
        store_data=args.store_data,
        context=_jobs_context(args.jobs),
        num_hashes=args.num_hashes,
        rng=args.seed,
    )
    print(f"catalog created at {store.directory} with {len(store)} table(s)")
    return 0


def _cmd_add(args) -> int:
    store = open_catalog(args.directory)
    sensitive = (
        tuple(s.strip() for s in args.sensitive.split(",") if s.strip())
        if args.sensitive
        else None
    )
    name = _table_name(args.csv, args.name)
    store.add_table(
        name,
        read_csv(args.csv),
        description=args.description,
        sensitive_columns=sensitive,
        target_column=args.target,
        store_data=args.store_data,
    )
    print(f"added {name!r} ({len(store)} table(s) cataloged)")
    return 0


def _cmd_remove(args) -> int:
    store = open_catalog(args.directory)
    store.remove_table(args.name)
    print(f"removed {args.name!r} ({len(store)} table(s) remain)")
    return 0


def _cmd_refresh(args) -> int:
    store = open_catalog(args.directory)
    if args.name is not None and len(args.csv) > 1:
        raise RespdiError("--name only applies to a single CSV")
    tables = {
        _table_name(path, args.name): read_csv(path) for path in args.csv
    }
    results = store.refresh_many(tables, context=_jobs_context(args.jobs))
    for name, rebuilt in results.items():
        print(f"{name!r}: {'rebuilt' if rebuilt else 'unchanged (hit)'}")
    return 0


def _cmd_query(args) -> int:
    # Routed through the shared per-directory QueryService: the first
    # query in a process opens (and checksum-verifies) the store; later
    # queries stat the manifest, reuse the pinned snapshot, and perform
    # zero re-verifications (`catalog.open` counts exactly one).
    from respdi.service import JoinQuery, KeywordQuery, UnionQuery, shared_service

    service = shared_service(args.directory)
    if args.keyword is not None:
        hits = service.query(KeywordQuery(text=args.keyword, k=args.k),
                             cached=args.cached)
        for hit in hits:
            print(f"{hit.score:8.4f}  {hit.table_name}")
    elif args.union is not None:
        candidates = service.query(
            UnionQuery(table=read_csv(args.union), k=args.k),
            cached=args.cached,
        )
        for cand in candidates:
            print(f"{cand.score:8.4f}  {cand.table_name}")
    else:
        csv_path, _, column = args.join.rpartition(":")
        if not csv_path:
            raise RespdiError("--join expects CSV:COLUMN")
        values = tuple(read_csv(csv_path).unique(column))
        candidates = service.query(
            JoinQuery(values=values, k=args.k), cached=args.cached
        )
        for cand in candidates:
            print(f"{cand.overlap:8d}  {cand.table_name}.{cand.column_name}")
    return 0


def _cmd_serve(args) -> int:
    from respdi.service import QueryService, open_pcache, serve
    from respdi.service.sharded import ShardedQueryService

    service_cls = (
        ShardedQueryService if is_sharded(args.directory) else QueryService
    )
    service = service_cls(args.directory, cache_size=args.cache_size)
    pcache = None
    if args.pcache or args.pcache_dir is not None:
        pcache = open_pcache(
            args.directory,
            directory=args.pcache_dir,
            max_entries=args.pcache_size,
        )
        print(f"persistent cache at {pcache.directory}", file=sys.stderr)
    if args.port is not None:
        from respdi.service import (
            AdmissionController,
            SocketQueryServer,
            parse_quota_specs,
        )

        admission = AdmissionController(
            max_inflight=args.max_inflight,
            default_rate=args.tenant_rate,
            default_burst=args.tenant_burst,
            quotas=parse_quota_specs(args.quota or []),
        )
        server = SocketQueryServer(
            service,
            host=args.host,
            port=args.port,
            cached=not args.no_cache,
            pcache=pcache,
            admission=admission,
            max_requests=args.max_requests,
        )
        host, port = server.start()
        print(f"serving on {host}:{port}", file=sys.stderr)
        served = server.serve_forever()
        print(f"served {served} request(s)", file=sys.stderr)
        return 0
    served = serve(
        service,
        sys.stdin,
        sys.stdout,
        cached=not args.no_cache,
        max_requests=args.max_requests,
        pcache=pcache,
    )
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


def _cmd_watch(args) -> int:
    from respdi.ingest import IngestDaemon

    max_cycles = 1 if args.once else args.max_cycles
    daemon = IngestDaemon(
        args.directory,
        args.source,
        interval=args.interval,
        remove_missing=not args.keep_missing,
        context=_jobs_context(args.jobs),
    )
    print(
        f"watching {len(daemon.watcher.sources)} source(s) -> "
        f"{daemon.directory} every {daemon.interval:g}s",
        file=sys.stderr,
    )

    def report(result) -> None:
        print(result.summary())
        sys.stdout.flush()

    try:
        ran = daemon.run(max_cycles=max_cycles, on_cycle=report)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        ran = daemon.cycles
    print(f"ran {ran} cycle(s)", file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    problems = open_catalog(args.directory).verify()
    if problems:
        for problem in problems:
            print(f"CORRUPT: {problem}", file=sys.stderr)
        return 2
    print("catalog verified: all checksums match")
    return 0


def _cmd_info(args) -> int:
    store = open_catalog(args.directory)
    if isinstance(store, ShardedCatalogStore):
        print(f"sharded catalog at {store.directory}")
        print(
            f"  {store.num_shards} shard(s), generations "
            f"{list(store.generations)}"
        )
        first = store.shards[0]
        print(
            f"  num_hashes={first.num_hashes} sketch_size={first.sketch_size} "
            f"num_partitions={first.num_partitions}"
        )
    else:
        print(f"catalog at {store.directory}")
        print(
            f"  num_hashes={store.num_hashes} sketch_size={store.sketch_size} "
            f"num_partitions={store.num_partitions}"
        )
    print(f"  hasher fingerprint {store.hasher.fingerprint}")
    print(f"  {len(store)} table(s):")
    for name in store.names:
        meta = store.meta(name)
        extras = []
        if meta.get("sensitive_columns"):
            extras.append("label")
        if meta.get("stored_data"):
            extras.append("data")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(f"    {name}: {meta['row_count']} rows{suffix}")
    return 0


def _cmd_reshard(args) -> int:
    store = reshard(
        args.source, args.dest, args.shards, in_place=args.in_place
    )
    print(
        f"resharded {args.source} -> {store.directory} "
        f"({len(store)} table(s) over {store.num_shards} shard(s))"
    )
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "add": _cmd_add,
    "remove": _cmd_remove,
    "refresh": _cmd_refresh,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "watch": _cmd_watch,
    "verify": _cmd_verify,
    "info": _cmd_info,
    "reshard": _cmd_reshard,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``respdi-catalog`` (also ``python -m respdi.catalog``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (RespdiError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
