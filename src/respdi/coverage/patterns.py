"""Value patterns over categorical attributes.

A *pattern* over attributes ``(a1, .., ad)`` is a tuple of the same
length whose entries are either a concrete value or the :data:`WILDCARD`.
A row matches a pattern when it agrees on every non-wildcard position.
Patterns form a lattice ordered by generality: a pattern's **parents**
are obtained by replacing one instantiated position with the wildcard.

Example (tutorial §2.2): over ``(gender, race)`` the pattern
``('F', 'black')`` matches black women; its parents are ``('F', X)`` and
``(X, 'black')``.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence, Tuple

import numpy as np

from respdi.errors import SpecificationError
from respdi.table import Table


class _Wildcard:
    """Singleton wildcard marker; sorts after any concrete value in reprs."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "X"

    def __reduce__(self):
        return (_Wildcard, ())


#: The wildcard ("any value") marker used in patterns.
WILDCARD = _Wildcard()

Pattern = Tuple[Hashable, ...]


def pattern_level(pattern: Pattern) -> int:
    """Number of instantiated (non-wildcard) positions."""
    return sum(1 for value in pattern if value is not WILDCARD)


def pattern_parents(pattern: Pattern) -> Iterator[Pattern]:
    """Immediate generalizations: one instantiated position wildcarded."""
    for i, value in enumerate(pattern):
        if value is not WILDCARD:
            yield pattern[:i] + (WILDCARD,) + pattern[i + 1 :]


def pattern_dominates(general: Pattern, specific: Pattern) -> bool:
    """True when *general* is equal to or a generalization of *specific*.

    Every row matching *specific* then also matches *general*.
    """
    if len(general) != len(specific):
        raise SpecificationError(
            f"patterns have different widths: {len(general)} vs {len(specific)}"
        )
    return all(
        g is WILDCARD or g == s for g, s in zip(general, specific)
    )


def pattern_matches_mask(
    table: Table, attributes: Sequence[str], pattern: Pattern
) -> np.ndarray:
    """Boolean row mask of *table* rows matching *pattern*.

    Missing values never match an instantiated position (an unrecorded
    race is evidence of nothing).
    """
    if len(pattern) != len(attributes):
        raise SpecificationError(
            f"pattern width {len(pattern)} != {len(attributes)} attributes"
        )
    mask = np.ones(len(table), dtype=bool)
    for attribute, value in zip(attributes, pattern):
        if value is WILDCARD:
            continue
        column = table.column(attribute)
        present = ~table.missing_mask(attribute)
        position = np.zeros(len(table), dtype=bool)
        position[present] = column[present] == value
        mask &= position
    return mask


def format_pattern(attributes: Sequence[str], pattern: Pattern) -> str:
    """Human-readable rendering, e.g. ``{gender: F, race: X}``."""
    parts = [
        f"{attribute}: {value!r}" if value is not WILDCARD else f"{attribute}: X"
        for attribute, value in zip(attributes, pattern)
    ]
    return "{" + ", ".join(parts) + "}"
