"""Coverage analysis: who is missing from the data?

Implements the tutorial's Group Representation machinery (§2.2):

* :mod:`respdi.coverage.patterns` — value patterns over categorical
  attributes (wildcards allowed) and the pattern lattice;
* :mod:`respdi.coverage.mups` — Maximal Uncovered Patterns (Asudeh,
  Jin, Jagadish, ICDE 2019): identification via naive enumeration,
  top-down pattern-breaker traversal, and greedy coverage enhancement;
* :mod:`respdi.coverage.ordinal` — neighborhood-based coverage for
  ordinal/continuous attributes (Asudeh et al., SIGMOD 2021).
"""

from respdi.coverage.mups import (
    CoverageAnalyzer,
    CoverageReport,
    full_coverage_plan,
    greedy_coverage_enhancement,
)
from respdi.coverage.ordinal import OrdinalCoverage
from respdi.coverage.patterns import (
    WILDCARD,
    Pattern,
    pattern_dominates,
    pattern_level,
    pattern_matches_mask,
    pattern_parents,
)

__all__ = [
    "Pattern",
    "WILDCARD",
    "pattern_matches_mask",
    "pattern_level",
    "pattern_parents",
    "pattern_dominates",
    "CoverageAnalyzer",
    "CoverageReport",
    "greedy_coverage_enhancement",
    "full_coverage_plan",
    "OrdinalCoverage",
]
