"""Coverage for ordinal / continuous attributes.

Following Asudeh et al. (SIGMOD 2021): given a distance measure and a
neighborhood radius ``r``, a query point is **covered** by a data set
when at least ``k`` data points lie within distance ``r`` of it.  The
uncovered region is the set of query points failing that test.

We index the data with a k-d tree, answer point queries exactly, and
estimate the uncovered *volume fraction* of a query region by Monte
Carlo — which is also how the experiments audit a collected data set
against the Underlying Distribution Representation requirement when the
attributes are continuous.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


class OrdinalCoverage:
    """Neighborhood-count coverage over numeric attributes.

    Parameters
    ----------
    table:
        The data set to audit.
    attributes:
        Numeric columns forming the query space.  Rows with a missing
        value in any of them are excluded from the index (they cannot
        vouch for any neighborhood).
    k:
        Minimum number of neighbors required for coverage.
    radius:
        Neighborhood radius (Euclidean distance in the, optionally
        standardized, attribute space).
    standardize:
        When True (default), attributes are z-scored using the data's
        own mean/std so the radius is scale-free.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        k: int,
        radius: float,
        standardize: bool = True,
    ) -> None:
        if k < 1:
            raise SpecificationError("k must be >= 1")
        if radius <= 0:
            raise SpecificationError("radius must be positive")
        if not attributes:
            raise SpecificationError("need at least one attribute")
        table.schema.require(attributes)
        for name in attributes:
            if not table.schema[name].is_numeric:
                raise SpecificationError(
                    f"ordinal coverage attribute {name!r} must be numeric"
                )
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.k = k
        self.radius = radius

        columns = [np.asarray(table.column(name), dtype=float) for name in attributes]
        data = np.column_stack(columns)
        complete = ~np.isnan(data).any(axis=1)
        data = data[complete]
        if len(data) == 0:
            raise EmptyInputError("no complete rows to build the coverage index")
        if standardize:
            self._mean = data.mean(axis=0)
            self._std = np.where(data.std(axis=0) > 0, data.std(axis=0), 1.0)
        else:
            self._mean = np.zeros(data.shape[1])
            self._std = np.ones(data.shape[1])
        self._points = (data - self._mean) / self._std
        self._tree = cKDTree(self._points)

    def _transform(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != len(self.attributes):
            raise SpecificationError(
                f"query points have {points.shape[1]} dims; "
                f"index has {len(self.attributes)}"
            )
        return (points - self._mean) / self._std

    def neighbor_counts(self, points: np.ndarray) -> np.ndarray:
        """Number of data points within the radius of each query point."""
        transformed = self._transform(points)
        neighbor_lists = self._tree.query_ball_point(transformed, r=self.radius)
        return np.array([len(lst) for lst in neighbor_lists], dtype=int)

    def is_covered(self, point: Sequence[float]) -> bool:
        """Exact coverage test for a single query point."""
        return bool(self.neighbor_counts([list(point)])[0] >= self.k)

    def covered_mask(self, points: np.ndarray) -> np.ndarray:
        """Vectorized coverage test for many query points."""
        return self.neighbor_counts(points) >= self.k

    def uncovered_fraction(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        n_samples: int = 2000,
        rng: RngLike = None,
    ) -> float:
        """Monte-Carlo estimate of the uncovered volume fraction of the
        axis-aligned box ``[lo, hi]`` in original attribute units."""
        lo_arr = np.asarray(lo, dtype=float)
        hi_arr = np.asarray(hi, dtype=float)
        if lo_arr.shape != hi_arr.shape or lo_arr.shape != (len(self.attributes),):
            raise SpecificationError("lo/hi must each have one value per attribute")
        if (lo_arr > hi_arr).any():
            raise SpecificationError("box is empty: lo > hi on some axis")
        if n_samples < 1:
            raise SpecificationError("n_samples must be positive")
        generator = ensure_rng(rng)
        samples = generator.uniform(lo_arr, hi_arr, size=(n_samples, len(lo_arr)))
        return float((~self.covered_mask(samples)).mean())

    def uncovered_data_points(self, other: Table) -> np.ndarray:
        """Mask of rows of *other* that fall in this index's uncovered
        region (useful to audit production queries against training
        data, tutorial §2.2)."""
        columns = [
            np.asarray(other.column(name), dtype=float) for name in self.attributes
        ]
        data = np.column_stack(columns)
        complete = ~np.isnan(data).any(axis=1)
        out = np.zeros(len(other), dtype=bool)
        if complete.any():
            out[complete] = ~self.covered_mask(data[complete])
        return out
