"""Maximal Uncovered Patterns (MUPs) and coverage enhancement.

Following Asudeh, Jin & Jagadish (ICDE 2019): given a data set, a list of
(low-cardinality) categorical attributes, and a coverage threshold
``tau``, a pattern is **uncovered** when fewer than ``tau`` rows match
it.  A **MUP** is an uncovered pattern all of whose parents (immediate
generalizations) are covered — the most general descriptions of who is
missing.  The set of MUPs compactly describes the entire uncovered
region: a pattern is uncovered iff it is dominated by some MUP.

Two exact algorithms are provided (naive level-wise enumeration as the
testing oracle, and the top-down *pattern-breaker* traversal that prunes
descendants of uncovered patterns), plus a greedy *coverage enhancement*
routine that proposes a small set of fully specified value combinations
to collect in order to eliminate all MUPs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from respdi.coverage.patterns import (
    WILDCARD,
    Pattern,
    format_pattern,
    pattern_dominates,
    pattern_level,
    pattern_parents,
)
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


@dataclass
class CoverageReport:
    """Result of a MUP search."""

    attributes: Tuple[str, ...]
    threshold: int
    mups: List[Pattern]
    patterns_evaluated: int

    def describe(self) -> List[str]:
        """Human-readable MUP list."""
        return [format_pattern(self.attributes, p) for p in self.mups]

    def is_uncovered(self, pattern: Pattern) -> bool:
        """True when *pattern* lies in the uncovered region (dominated by
        a MUP)."""
        return any(pattern_dominates(mup, pattern) for mup in self.mups)


class CoverageAnalyzer:
    """Counts patterns and finds MUPs over chosen categorical attributes.

    Pattern counts are computed from precomputed per-(attribute, value)
    bitmaps, so each count is an AND of at most ``d`` boolean vectors.
    Counts are memoized — the lattice traversals re-visit parents often.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        threshold: int,
        domains: "Dict[str, List[Hashable]]" = None,
    ) -> None:
        if threshold < 1:
            raise SpecificationError("coverage threshold must be >= 1")
        if not attributes:
            raise SpecificationError("coverage needs at least one attribute")
        table.schema.require(attributes)
        for name in attributes:
            if not table.schema[name].is_categorical:
                raise SpecificationError(
                    f"coverage attribute {name!r} must be categorical"
                )
        self.table = table
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.threshold = threshold
        # Domains default to the *observed* values.  Callers auditing
        # against an expected population should pass explicit domains:
        # a value that never appears in the data cannot be discovered
        # from the data, yet its absence is precisely the worst coverage
        # failure (e.g. a gender entirely missing from the sample).
        self.domains: Dict[str, List[Hashable]] = {
            name: table.unique(name) for name in self.attributes
        }
        if domains:
            unknown = set(domains) - set(self.attributes)
            if unknown:
                raise SpecificationError(
                    f"domains given for non-coverage attributes {sorted(unknown)}"
                )
            for name, values in domains.items():
                merged = list(values)
                for observed in self.domains[name]:
                    if observed not in merged:
                        merged.append(observed)
                self.domains[name] = sorted(merged, key=repr)
        for name, domain in self.domains.items():
            if not domain:
                raise EmptyInputError(
                    f"attribute {name!r} has no present values; "
                    "cannot analyze coverage"
                )
        self._bitmaps: Dict[Tuple[str, Hashable], np.ndarray] = {}
        for name in self.attributes:
            column = table.column(name)
            present = ~table.missing_mask(name)
            for value in self.domains[name]:
                mask = np.zeros(len(table), dtype=bool)
                mask[present] = column[present] == value
                self._bitmaps[(name, value)] = mask
        self._count_cache: Dict[Pattern, int] = {}
        self._rows = len(table)

    # -- counting -------------------------------------------------------

    def count(self, pattern: Pattern) -> int:
        """Number of rows matching *pattern* (memoized)."""
        if pattern in self._count_cache:
            return self._count_cache[pattern]
        mask = None
        for name, value in zip(self.attributes, pattern):
            if value is WILDCARD:
                continue
            try:
                bitmap = self._bitmaps[(name, value)]
            except KeyError:
                # A value outside the observed domain matches nothing.
                self._count_cache[pattern] = 0
                return 0
            mask = bitmap if mask is None else (mask & bitmap)
        count = self._rows if mask is None else int(mask.sum())
        self._count_cache[pattern] = count
        return count

    def is_covered(self, pattern: Pattern) -> bool:
        return self.count(pattern) >= self.threshold

    def root(self) -> Pattern:
        return tuple([WILDCARD] * len(self.attributes))

    # -- enumeration oracles ------------------------------------------------

    def all_patterns(self) -> List[Pattern]:
        """Every pattern in the lattice (exponential; testing oracle)."""
        choices = [
            [WILDCARD] + list(self.domains[name]) for name in self.attributes
        ]
        return [tuple(combo) for combo in itertools.product(*choices)]

    def mups_naive(self) -> CoverageReport:
        """Exact MUPs by checking every lattice pattern (oracle)."""
        mups: List[Pattern] = []
        evaluated = 0
        for pattern in self.all_patterns():
            evaluated += 1
            if self.is_covered(pattern):
                continue
            if all(self.is_covered(parent) for parent in pattern_parents(pattern)):
                if pattern_level(pattern) == 0:
                    # Root uncovered: the data set itself is too small;
                    # the root is the single MUP.
                    return CoverageReport(self.attributes, self.threshold, [pattern], evaluated)
                mups.append(pattern)
        return CoverageReport(self.attributes, self.threshold, mups, evaluated)

    # -- pattern breaker ----------------------------------------------------

    def mups(self) -> CoverageReport:
        """Exact MUPs via top-down pattern-breaker traversal.

        Traverses the lattice level-wise from the all-wildcard root.
        Children are generated canonically (only positions to the right of
        the last instantiated one are instantiated), so each pattern is
        visited at most once.  Descendants of uncovered patterns are
        pruned: any specialization of an uncovered pattern has an
        uncovered ancestor on every generalization path, hence has an
        uncovered parent somewhere above it and cannot be a MUP.
        """
        root = self.root()
        evaluated = 1
        if not self.is_covered(root):
            return CoverageReport(self.attributes, self.threshold, [root], evaluated)
        mups: List[Pattern] = []
        frontier: List[Pattern] = [root]
        while frontier:
            next_frontier: List[Pattern] = []
            for pattern in frontier:
                last = self._last_instantiated(pattern)
                for position in range(last + 1, len(self.attributes)):
                    name = self.attributes[position]
                    for value in self.domains[name]:
                        child = (
                            pattern[:position] + (value,) + pattern[position + 1 :]
                        )
                        evaluated += 1
                        if self.is_covered(child):
                            next_frontier.append(child)
                        elif all(
                            self.is_covered(parent)
                            for parent in pattern_parents(child)
                        ):
                            mups.append(child)
            frontier = next_frontier
        return CoverageReport(self.attributes, self.threshold, mups, evaluated)

    @staticmethod
    def _last_instantiated(pattern: Pattern) -> int:
        last = -1
        for i, value in enumerate(pattern):
            if value is not WILDCARD:
                last = i
        return last


def greedy_coverage_enhancement(
    analyzer: CoverageAnalyzer, mups: Sequence[Pattern]
) -> List[Tuple[Pattern, int]]:
    """Propose fully specified combinations to collect to kill all MUPs.

    Each MUP ``m`` needs ``tau - count(m)`` extra matching rows.  A fully
    specified combination satisfies every MUP that dominates it, so
    choosing combinations well shares collected rows across MUPs.  This
    is a set-multicover instance; we use the classical greedy (pick the
    combination serving the largest number of still-deficient MUPs,
    charge it the maximum residual among them) which is an
    ``H_n``-approximation.

    Returns a list of ``(combination, copies_to_collect)``.
    """
    residual: Dict[Pattern, int] = {}
    for mup in mups:
        need = analyzer.threshold - analyzer.count(mup)
        if need > 0:
            residual[mup] = need
    plan: List[Tuple[Pattern, int]] = []
    while residual:
        best_combo = None
        best_served: List[Pattern] = []
        # Candidate combinations: minimal completions of each deficient
        # MUP (instantiate wildcards over the attribute domains, but only
        # consider value choices appearing in other deficient MUPs plus
        # one default, to keep the candidate pool small and relevant).
        candidates = _candidate_combinations(analyzer, list(residual))
        for combo in candidates:
            served = [m for m in residual if pattern_dominates(m, combo)]
            if len(served) > len(best_served):
                best_combo, best_served = combo, served
        if best_combo is None:  # pragma: no cover - defensive
            raise EmptyInputError("no candidate combination serves any MUP")
        copies = max(residual[m] for m in best_served)
        plan.append((best_combo, copies))
        for m in best_served:
            remaining = residual[m] - copies
            if remaining > 0:
                residual[m] = remaining
            else:
                del residual[m]
    return plan


def full_coverage_plan(
    analyzer: CoverageAnalyzer, max_rounds: int = 50
) -> List[Tuple[Pattern, int]]:
    """Iterate :func:`greedy_coverage_enhancement` to *full* coverage.

    Covering the current MUPs can expose deeper uncovered patterns that
    were hidden beneath them (their parents were uncovered, so they were
    not maximal).  This routine recomputes MUPs under the *augmented*
    counts (original data plus planned additions) and plans again until
    no uncovered pattern remains, merging per-combination copy counts.
    """
    additions: Dict[Pattern, int] = {}

    def augmented_count(pattern: Pattern) -> int:
        extra = sum(
            copies
            for combo, copies in additions.items()
            if pattern_dominates(pattern, combo)
        )
        return analyzer.count(pattern) + extra

    for _ in range(max_rounds):
        mups = _augmented_mups(analyzer, augmented_count)
        if not mups:
            return sorted(additions.items(), key=lambda item: repr(item[0]))
        residual = {
            mup: analyzer.threshold - augmented_count(mup) for mup in mups
        }
        candidates = _candidate_combinations(analyzer, list(residual))
        while residual:
            best_combo = None
            best_served: List[Pattern] = []
            for combo in candidates:
                served = [m for m in residual if pattern_dominates(m, combo)]
                if len(served) > len(best_served):
                    best_combo, best_served = combo, served
            if best_combo is None:  # pragma: no cover - defensive
                raise EmptyInputError("no combination serves any MUP")
            copies = max(residual[m] for m in best_served)
            additions[best_combo] = additions.get(best_combo, 0) + copies
            for m in best_served:
                remaining = residual[m] - copies
                if remaining > 0:
                    residual[m] = remaining
                else:
                    del residual[m]
    raise EmptyInputError(
        f"coverage enhancement did not converge in {max_rounds} rounds"
    )  # pragma: no cover - bounded lattice always converges


def _augmented_mups(analyzer: CoverageAnalyzer, count_fn) -> List[Pattern]:
    """Pattern-breaker traversal using an arbitrary count function."""
    threshold = analyzer.threshold
    root = analyzer.root()
    if count_fn(root) < threshold:
        return [root]
    mups: List[Pattern] = []
    frontier: List[Pattern] = [root]
    while frontier:
        next_frontier: List[Pattern] = []
        for pattern in frontier:
            last = CoverageAnalyzer._last_instantiated(pattern)
            for position in range(last + 1, len(analyzer.attributes)):
                name = analyzer.attributes[position]
                for value in analyzer.domains[name]:
                    child = pattern[:position] + (value,) + pattern[position + 1 :]
                    if count_fn(child) >= threshold:
                        next_frontier.append(child)
                    elif all(
                        count_fn(parent) >= threshold
                        for parent in pattern_parents(child)
                    ):
                        mups.append(child)
        frontier = next_frontier
    return mups


def _candidate_combinations(
    analyzer: CoverageAnalyzer, mups: List[Pattern]
) -> List[Pattern]:
    """Fully specified candidates: for each MUP, complete its wildcards
    with every combination of values used by the MUP set (capped), falling
    back to the first domain value."""
    interesting: Dict[str, List[Hashable]] = {}
    for position, name in enumerate(analyzer.attributes):
        values = {m[position] for m in mups if m[position] is not WILDCARD}
        interesting[name] = sorted(values, key=repr) or [analyzer.domains[name][0]]
    candidates: List[Pattern] = []
    seen = set()
    for mup in mups:
        open_positions = [
            i for i, value in enumerate(mup) if value is WILDCARD
        ]
        pools = [interesting[analyzer.attributes[i]] for i in open_positions]
        for fill in itertools.product(*pools) if pools else [()]:
            combo = list(mup)
            for i, value in zip(open_positions, fill):
                combo[i] = value
            key = tuple(combo)
            if key not in seen:
                seen.add(key)
                candidates.append(key)
    return candidates
