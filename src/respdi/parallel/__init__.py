"""respdi.parallel — the deterministic fan-out engine.

One :class:`ExecutionContext` (backend ``serial`` | ``threads`` |
``processes``, ``n_jobs``, chunk size, per-chunk timeout) drives every
parallelized hot path: bulk sketching
(:meth:`~respdi.discovery.lake_index.DataLakeIndex.register_tables`),
catalog builds and refreshes (:meth:`~respdi.catalog.CatalogStore.build`
/ :meth:`~respdi.catalog.CatalogStore.refresh_many`), and candidate-pair
scoring (:meth:`~respdi.linkage.matching.RecordMatcher.match`).

The engine's contract is **serial equivalence**: any backend, any
``n_jobs``, any chunk size produces byte-identical outputs to the plain
serial loop (ordered reduction, no shared RNG, serial retry semantics) —
see :mod:`respdi.parallel.engine` and
``tests/test_parallel_differential.py``, which locks the contract down
across ``PYTHONHASHSEED`` values and backends.
"""

from respdi.parallel.engine import (
    BACKENDS,
    DEFAULT_JOBS_ENV,
    ExecutionContext,
    default_jobs,
    map_chunked,
    map_tables,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_JOBS_ENV",
    "ExecutionContext",
    "default_jobs",
    "map_chunked",
    "map_tables",
]
