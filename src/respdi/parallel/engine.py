"""The execution engine: one context, three backends, identical results.

Every hot path that fans work out per table or per chunk goes through
:func:`map_chunked` under an :class:`ExecutionContext`.  The contract is
**serial equivalence**: for any function ``fn`` and any context, the
result equals ``[fn(item) for item in items]`` — same values, same
order.  The engine guarantees this by construction:

* **ordered reduction** — chunks are submitted with their index and
  results are reassembled by index, never by completion order;
* **no shared RNG** — the engine owns no random state and passes none to
  workers; tasks must be pure functions of their inputs (every wired
  call site sketches/scores from already-drawn coefficients);
* **serial retry semantics** — a chunk that fails in the pool is retried
  once in the pool, then executed serially in the calling process, so a
  deterministic exception surfaces exactly as it would serially.

Backends: ``serial`` (a plain loop), ``threads``
(:class:`~concurrent.futures.ThreadPoolExecutor`), and ``processes``
(:class:`~concurrent.futures.ProcessPoolExecutor`; tasks and their
arguments must be picklable).  A pool that cannot be created, or that
breaks mid-flight (:class:`~concurrent.futures.BrokenExecutor`),
degrades gracefully: remaining chunks run serially and the call still
returns the serial answer.

Instrumentation (:mod:`respdi.obs`, off by default): ``parallel.tasks``
counts chunks executed, ``parallel.items`` counts items mapped,
``parallel.retries`` counts chunk resubmissions, ``parallel.fallbacks``
counts chunks that dropped to serial after a failed retry,
``parallel.pool_failures`` counts broken/uncreatable pools, and each
chunk runs under a ``<label>.chunk`` span.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from respdi import obs
from respdi.errors import SpecificationError
from respdi.faults.plan import fault_point

#: Environment variable giving the default worker count for call sites
#: that receive neither ``context=`` nor ``n_jobs=``.  Values > 1 select
#: the ``threads`` backend; unset/invalid/<=1 means serial.
DEFAULT_JOBS_ENV = "RESPDI_DEFAULT_JOBS"

BACKENDS = ("serial", "threads", "processes")


def default_jobs() -> int:
    """The worker count implied by ``RESPDI_DEFAULT_JOBS`` (1 if unset)."""
    raw = os.environ.get(DEFAULT_JOBS_ENV, "").strip()
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


@dataclass(frozen=True)
class ExecutionContext:
    """How a fan-out call site should execute its per-item work.

    Attributes
    ----------
    backend:
        ``"serial"``, ``"threads"``, or ``"processes"``.
    n_jobs:
        Worker count for pool backends.  ``n_jobs=1`` always runs the
        serial path, whatever the backend (so ``n_jobs=1`` ≡ serial is
        an identity, not merely an equivalence).
    chunksize:
        Items per scheduled task; ``None`` auto-sizes to about four
        chunks per worker.  Chunking never changes results, only
        scheduling granularity.
    timeout:
        Per-chunk result timeout in seconds (``None`` = wait forever).
        A timed-out chunk follows the retry-then-serial-fallback path.
    """

    backend: str = "serial"
    n_jobs: int = 1
    chunksize: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise SpecificationError(
                f"unknown backend {self.backend!r} (choose from {BACKENDS})"
            )
        if self.n_jobs < 1:
            raise SpecificationError("n_jobs must be >= 1")
        if self.chunksize is not None and self.chunksize < 1:
            raise SpecificationError("chunksize must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecificationError("timeout must be positive")

    @classmethod
    def resolve(
        cls,
        context: Optional["ExecutionContext"] = None,
        n_jobs: Optional[int] = None,
    ) -> "ExecutionContext":
        """The context a call site should run under.

        Precedence: an explicit *context* wins; an explicit *n_jobs*
        builds a ``threads`` context (``n_jobs<=1`` → serial); otherwise
        ``RESPDI_DEFAULT_JOBS`` decides.  Passing both is ambiguous and
        rejected.
        """
        if context is not None and n_jobs is not None:
            raise SpecificationError("pass either context= or n_jobs=, not both")
        if context is not None:
            return context
        jobs = default_jobs() if n_jobs is None else n_jobs
        if jobs <= 1:
            return cls()
        return cls(backend="threads", n_jobs=jobs)

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.n_jobs == 1

    def resolved_chunksize(self, n_items: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-n_items // (self.n_jobs * 4)))


def _apply_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    """Run *fn* over one chunk (module-level so ``processes`` can pickle it)."""
    return [fn(item) for item in chunk]


def _apply_chunk_at(
    fn: Callable[[Any], Any], chunk: Sequence[Any], index: int
) -> List[Any]:
    """:func:`_apply_chunk` behind the ``parallel.worker`` injection point.

    Every execution of a chunk — first pool attempt, pool retry, serial
    fallback, and the plain serial path — crosses the point with its
    chunk index, so a :class:`~respdi.faults.FaultPlan` can fail a
    specific chunk's first N attempts and the tests can pin down the
    exact ``parallel.retries`` / ``parallel.fallbacks`` ledger.  (For the
    ``processes`` backend the plan lives in the parent; worker processes
    see no plan, so injected faults are a threads/serial tool.)
    """
    fault_point("parallel.worker", chunk_index=index)
    return _apply_chunk(fn, chunk)


def _chunk(items: List[Any], size: int) -> List[List[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def map_chunked(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    context: Optional[ExecutionContext] = None,
    n_jobs: Optional[int] = None,
    *,
    label: str = "parallel.map",
) -> List[Any]:
    """``[fn(item) for item in items]`` under the resolved context.

    Results are always in input order (ordered reduction), whichever
    backend runs the work.  For the ``processes`` backend *fn* and the
    items must be picklable; anything the pool cannot run falls back to
    the serial path, so the call still returns the serial answer.
    """
    items = list(items)
    ctx = ExecutionContext.resolve(context, n_jobs)
    if not items:
        return []
    chunks = _chunk(items, ctx.resolved_chunksize(len(items)))
    if ctx.is_serial or len(chunks) == 1:
        return _run_serial(fn, chunks, label, ctx.backend)
    return _run_pooled(fn, chunks, ctx, label)


def map_tables(
    fn: Callable[[str, Any], Any],
    tables: Union[Mapping[str, Any], Iterable[Tuple[str, Any]]],
    context: Optional[ExecutionContext] = None,
    n_jobs: Optional[int] = None,
    *,
    label: str = "parallel.map_tables",
) -> Dict[str, Any]:
    """``{name: fn(name, value)}`` over named items, in input order.

    The per-table idiom of the engine: bulk sketching, fingerprinting,
    and catalog builds all map a picklable task over ``(name, table)``
    pairs and rely on the returned dict preserving input order.
    """
    pairs = list(tables.items() if hasattr(tables, "items") else tables)
    values = map_chunked(
        _NamedCall(fn), pairs, context=context, n_jobs=n_jobs, label=label
    )
    return {name: value for (name, _), value in zip(pairs, values)}


class _NamedCall:
    """Adapts ``fn(name, value)`` to the single-argument chunk protocol."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[str, Any], Any]) -> None:
        self.fn = fn

    def __call__(self, pair: Tuple[str, Any]) -> Any:
        name, value = pair
        return self.fn(name, value)

    def __getstate__(self):
        return self.fn

    def __setstate__(self, state):
        self.fn = state


def _run_serial(
    fn: Callable[[Any], Any],
    chunks: List[List[Any]],
    label: str,
    backend: str,
) -> List[Any]:
    results: List[Any] = []
    for index, chunk in enumerate(chunks):
        with obs.trace(
            f"{label}.chunk", index=index, size=len(chunk), backend=backend
        ):
            results.extend(_apply_chunk_at(fn, chunk, index))
        obs.inc("parallel.tasks")
        obs.inc("parallel.items", len(chunk))
    return results


def _run_pooled(
    fn: Callable[[Any], Any],
    chunks: List[List[Any]],
    ctx: ExecutionContext,
    label: str,
) -> List[Any]:
    executor_cls = (
        ThreadPoolExecutor if ctx.backend == "threads" else ProcessPoolExecutor
    )
    try:
        executor = executor_cls(max_workers=ctx.n_jobs)
    except Exception:
        # The pool could not even be created (resource limits, missing
        # semaphores in constrained sandboxes, ...): run everything
        # serially rather than failing the caller.
        obs.inc("parallel.pool_failures")
        return _run_serial(fn, chunks, label, "serial-fallback")

    results: List[Any] = []
    pool_dead = False
    with executor:
        futures: List[Optional[Future]] = []
        for index, chunk in enumerate(chunks):
            try:
                futures.append(
                    executor.submit(_apply_chunk_at, fn, chunk, index)
                )
            except Exception:
                obs.inc("parallel.pool_failures")
                pool_dead = True
                futures.append(None)
        for index, (future, chunk) in enumerate(zip(futures, chunks)):
            with obs.trace(
                f"{label}.chunk", index=index, size=len(chunk), backend=ctx.backend
            ):
                if pool_dead or future is None:
                    results.extend(_apply_chunk_at(fn, chunk, index))
                else:
                    chunk_result, pool_dead = _collect_chunk(
                        executor, future, fn, chunk, ctx, index
                    )
                    results.extend(chunk_result)
            obs.inc("parallel.tasks")
            obs.inc("parallel.items", len(chunk))
    return results


def _collect_chunk(
    executor,
    future: Future,
    fn: Callable[[Any], Any],
    chunk: List[Any],
    ctx: ExecutionContext,
    index: int,
) -> Tuple[List[Any], bool]:
    """One chunk's result: pool attempt → one retry → serial fallback.

    Returns ``(result, pool_dead)``.  A deterministic task exception
    survives all three attempts and propagates from the serial run —
    exactly what the serial backend would have raised.
    """
    try:
        return future.result(timeout=ctx.timeout), False
    except BrokenExecutor:
        obs.inc("parallel.pool_failures")
        return _apply_chunk_at(fn, chunk, index), True
    except (Exception, FuturesTimeoutError):
        obs.inc("parallel.retries")
    try:
        retry = executor.submit(_apply_chunk_at, fn, chunk, index)
        return retry.result(timeout=ctx.timeout), False
    except BrokenExecutor:
        obs.inc("parallel.pool_failures")
        return _apply_chunk_at(fn, chunk, index), True
    except (Exception, FuturesTimeoutError):
        obs.inc("parallel.fallbacks")
    return _apply_chunk_at(fn, chunk, index), False
