"""Slice Tuner: selective per-slice data acquisition (Tae & Whang 2021).

Slice Tuner's insight: per-slice validation loss follows a power law
``loss(n) ~ a * n^(-b)`` in the slice's training-set size ``n``, so the
budget should go to slices whose curve predicts the largest loss drop —
which simultaneously lowers total loss *and* the loss imbalance between
slices (the bias the tutorial's §3.1 attributes to problematic slices).

The implementation alternates: train → measure per-slice loss → update
each slice's learning-curve fit → allocate the next batch greedily by
projected marginal loss reduction.  Baselines: ``"uniform"`` (equal
split) and ``"proportional"`` (match existing slice sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike
from respdi.acquisition.market import DataProvider
from respdi.errors import EmptyInputError, SpecificationError
from respdi.ml.data import table_to_xy
from respdi.ml.models import LogisticRegression
from respdi.table import Predicate, Table


def fit_power_law(sizes: Sequence[float], losses: Sequence[float]) -> Tuple[float, float]:
    """Fit ``loss = a * n^(-b)`` by least squares in log-log space.

    Returns ``(a, b)``.  With fewer than two distinct points, falls back
    to ``b = 0.5`` and ``a`` matched to the last observation — a generic
    inverse-square-root learning curve.
    """
    points = [
        (float(n), float(loss))
        for n, loss in zip(sizes, losses)
        if n > 0 and loss > 0
    ]
    if not points:
        raise EmptyInputError("no positive (size, loss) points to fit")
    if len({n for n, _ in points}) < 2:
        n, loss = points[-1]
        return loss * math.sqrt(n), 0.5
    log_n = np.array([math.log(n) for n, _ in points])
    log_loss = np.array([math.log(loss) for _, loss in points])
    slope, intercept = np.polyfit(log_n, log_loss, 1)
    b = max(-float(slope), 0.0)
    a = float(math.exp(intercept))
    return a, b


def _projected_loss(a: float, b: float, n: float) -> float:
    return a * n ** (-b) if n > 0 else a


@dataclass
class SliceTunerResult:
    """Trajectory of a Slice Tuner campaign."""

    slice_losses: Dict[str, List[float]]
    slice_sizes: Dict[str, List[int]]
    total_loss_trajectory: List[float]
    imbalance_trajectory: List[float]  # max - min per-slice loss per round
    records_bought: int
    allocations: Dict[str, int] = field(default_factory=dict)

    @property
    def final_total_loss(self) -> float:
        return self.total_loss_trajectory[-1]

    @property
    def final_imbalance(self) -> float:
        return self.imbalance_trajectory[-1]


class SliceTuner:
    """Iterative selective acquisition over named slices."""

    def __init__(
        self,
        slices: Dict[str, Predicate],
        feature_columns: Sequence[str],
        label_column: str,
        validation: Table,
        model_factory: Optional[Callable[[], object]] = None,
        strategy: str = "curve",
    ) -> None:
        if not slices:
            raise SpecificationError("need at least one slice")
        if strategy not in ("curve", "uniform", "proportional"):
            raise SpecificationError(f"unknown strategy {strategy!r}")
        self.slices = dict(slices)
        self.feature_columns = list(feature_columns)
        self.label_column = label_column
        self.validation = validation
        self.model_factory = model_factory or LogisticRegression
        self.strategy = strategy

    def _slice_losses(self, train: Table) -> Dict[str, float]:
        """Per-slice validation log-loss of a model trained on *train*."""
        X, y, _ = table_to_xy(train, self.feature_columns, self.label_column)
        model = self.model_factory()
        model.fit(X, y)
        losses: Dict[str, float] = {}
        eps = 1e-9
        for name, predicate in self.slices.items():
            subset = self.validation.filter(predicate)
            if len(subset) == 0:
                losses[name] = 0.0
                continue
            Xs, ys, _ = table_to_xy(subset, self.feature_columns, self.label_column)
            p = np.clip(model.predict_proba(Xs), eps, 1 - eps)
            losses[name] = float(-(ys * np.log(p) + (1 - ys) * np.log(1 - p)).mean())
        return losses

    def _allocate(
        self,
        batch: int,
        sizes: Dict[str, int],
        history_sizes: Dict[str, List[int]],
        history_losses: Dict[str, List[float]],
    ) -> Dict[str, int]:
        names = sorted(self.slices)
        if self.strategy == "uniform":
            base = batch // len(names)
            allocation = {name: base for name in names}
            for name in names[: batch - base * len(names)]:
                allocation[name] += 1
            return allocation
        if self.strategy == "proportional":
            total = sum(sizes.values()) or 1
            allocation = {
                name: int(round(batch * sizes[name] / total)) for name in names
            }
            return allocation
        # Curve-based greedy marginal allocation in unit chunks.
        curves = {}
        for name in names:
            try:
                a, b = fit_power_law(history_sizes[name], history_losses[name])
            except EmptyInputError:
                a, b = 1.0, 0.5
            if b <= 1e-6:
                # A flat (or upward) fit means the observations are still
                # noise-dominated; stay optimistic with a generic
                # inverse-square-root curve anchored at the latest loss,
                # rather than starving the slice forever.
                last_loss = history_losses[name][-1] if history_losses[name] else 1.0
                last_size = max(sizes[name], 1)
                a, b = max(last_loss, 1e-6) * math.sqrt(last_size), 0.5
            curves[name] = (a, b)
        allocation = {name: 0 for name in names}
        virtual_sizes = dict(sizes)
        chunk = max(1, batch // 20)
        remaining = batch
        while remaining > 0:
            step = min(chunk, remaining)

            def marginal_gain(name: str) -> float:
                a, b = curves[name]
                return _projected_loss(a, b, virtual_sizes[name]) - _projected_loss(
                    a, b, virtual_sizes[name] + step
                )

            best = max(names, key=lambda n: (marginal_gain(n), n))
            allocation[best] += step
            virtual_sizes[best] += step
            remaining -= step
        return allocation

    def run(
        self,
        provider: DataProvider,
        initial: Table,
        budget: int,
        rounds: int = 5,
        rng: RngLike = None,
    ) -> SliceTunerResult:
        """Spend *budget* records over *rounds* acquisition rounds."""
        if budget < 1 or rounds < 1:
            raise SpecificationError("budget and rounds must be >= 1")
        train = initial
        names = sorted(self.slices)
        history_sizes: Dict[str, List[int]] = {name: [] for name in names}
        history_losses: Dict[str, List[float]] = {name: [] for name in names}
        loss_track: Dict[str, List[float]] = {name: [] for name in names}
        size_track: Dict[str, List[int]] = {name: [] for name in names}
        total_trajectory: List[float] = []
        imbalance_trajectory: List[float] = []
        total_allocation: Dict[str, int] = {name: 0 for name in names}
        bought = 0
        per_round = max(1, budget // rounds)

        for round_index in range(rounds):
            losses = self._slice_losses(train)
            sizes = {
                name: len(train.filter(self.slices[name])) for name in names
            }
            for name in names:
                history_sizes[name].append(sizes[name])
                history_losses[name].append(losses[name])
                loss_track[name].append(losses[name])
                size_track[name].append(sizes[name])
            total_trajectory.append(sum(losses.values()))
            active = [v for k, v in losses.items() if v > 0]
            imbalance_trajectory.append(
                max(active) - min(active) if len(active) >= 2 else 0.0
            )
            if bought >= budget:
                break
            batch = min(per_round, budget - bought)
            allocation = self._allocate(batch, sizes, history_sizes, history_losses)
            for name in names:
                want = allocation.get(name, 0)
                if want <= 0:
                    continue
                got = provider.query(self.slices[name], want)
                if len(got) > 0:
                    train = train.concat(got)
                    bought += len(got)
                    total_allocation[name] += len(got)

        # Final measurement after the last purchase.
        losses = self._slice_losses(train)
        for name in names:
            loss_track[name].append(losses[name])
            size_track[name].append(len(train.filter(self.slices[name])))
        total_trajectory.append(sum(losses.values()))
        active = [v for v in losses.values() if v > 0]
        imbalance_trajectory.append(
            max(active) - min(active) if len(active) >= 2 else 0.0
        )

        return SliceTunerResult(
            slice_losses=loss_track,
            slice_sizes=size_track,
            total_loss_trajectory=total_trajectory,
            imbalance_trajectory=imbalance_trajectory,
            records_bought=bought,
            allocations=total_allocation,
        )
