"""The data-market acquisition loop (Li, Yu & Koudas, VLDB 2021).

Model: a provider holds records following the *target* distribution but
invisible to the consumer; the consumer holds a non-representative
initial training set and a record budget.  Each round the consumer picks
a filtering predicate, receives a random without-replacement sample of
matching provider records, pays per record, retrains, and observes the
validation-accuracy change.

Predicate utility follows the paper's recipe: **novelty** — how
different the returned records are from what the consumer already owns —
is the prior signal, and observed accuracy improvements are the learned
signal; an epsilon-greedy schedule trades exploring unmeasured
predicates against exploiting the best known one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.ml.data import table_to_xy
from respdi.ml.models import LogisticRegression
from respdi.table import Predicate, Table


class DataProvider:
    """Provider side: query-by-predicate over a hidden table.

    Records are served without replacement *globally* — once sold, a
    record is never sold again, matching the paper's without-replacement
    sampling from query results.
    """

    def __init__(self, table: Table, rng: RngLike = None) -> None:
        if len(table) == 0:
            raise EmptyInputError("provider table is empty")
        self.table = table
        self._sold = np.zeros(len(table), dtype=bool)
        self._rng = ensure_rng(rng)

    @property
    def records_sold(self) -> int:
        return int(self._sold.sum())

    def query(self, predicate: Predicate, n: int) -> Table:
        """Up to *n* unsold records matching *predicate* (random order)."""
        if n < 1:
            raise SpecificationError("n must be >= 1")
        available = np.flatnonzero(predicate.mask(self.table) & ~self._sold)
        if len(available) == 0:
            return self.table.take([])
        chosen = self._rng.choice(
            available, size=min(n, len(available)), replace=False
        )
        self._sold[chosen] = True
        return self.table.take(chosen)


@dataclass
class AcquisitionResult:
    """Trajectory of one acquisition campaign."""

    accuracy_trajectory: List[Tuple[int, float]]  # (records bought, val accuracy)
    records_bought: int
    final_accuracy: float
    initial_accuracy: float
    predicate_usage: Dict[str, int] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        return self.final_accuracy - self.initial_accuracy


class ModelImprovementAcquirer:
    """Consumer side: choose predicates to maximize model improvement.

    Parameters
    ----------
    initial:
        The consumer's (non-representative) starting training table.
    candidates:
        Named predicates the consumer may query, ``{name: Predicate}``.
    feature_columns / label_column:
        Model inputs.
    validation:
        Held-out table for accuracy measurement (plays the role of the
        production distribution).
    strategy:
        ``"explore_exploit"`` (the paper's), ``"random"`` (uniform
        predicate), or ``"round_robin"``.
    epsilon / epsilon_decay:
        Exploration schedule for ``"explore_exploit"``.
    novelty_weight:
        Weight of the novelty prior relative to observed rewards.
    """

    def __init__(
        self,
        initial: Table,
        candidates: Dict[str, Predicate],
        feature_columns: Sequence[str],
        label_column: str,
        validation: Table,
        model_factory: Optional[Callable[[], object]] = None,
        strategy: str = "explore_exploit",
        epsilon: float = 0.3,
        epsilon_decay: float = 0.95,
        novelty_weight: float = 0.5,
    ) -> None:
        if not candidates:
            raise SpecificationError("need at least one candidate predicate")
        if strategy not in ("explore_exploit", "random", "round_robin"):
            raise SpecificationError(f"unknown strategy {strategy!r}")
        if not 0.0 <= epsilon <= 1.0 or not 0.0 < epsilon_decay <= 1.0:
            raise SpecificationError("invalid epsilon schedule")
        self.initial = initial
        self.candidates = dict(candidates)
        self.feature_columns = list(feature_columns)
        self.label_column = label_column
        self.validation = validation
        self.model_factory = model_factory or LogisticRegression
        self.strategy = strategy
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.novelty_weight = novelty_weight

    # -- internals ----------------------------------------------------------

    def _fit_and_score(self, train: Table) -> float:
        X, y, _ = table_to_xy(train, self.feature_columns, self.label_column)
        model = self.model_factory()
        model.fit(X, y)
        Xv, yv, _ = table_to_xy(
            self.validation, self.feature_columns, self.label_column
        )
        return float((model.predict(Xv) == yv).mean())

    def _novelty(self, owned: Table, batch: Table) -> float:
        """Mean distance from each batch row to its nearest owned row in
        the z-scored feature space — the paper's 'difference between the
        result of the query and the data the consumer possesses'."""
        if len(batch) == 0:
            return 0.0
        owned_X, _, _ = table_to_xy(owned, self.feature_columns, self.label_column)
        batch_X, _, _ = table_to_xy(batch, self.feature_columns, self.label_column)
        mean = owned_X.mean(axis=0)
        std = np.where(owned_X.std(axis=0) > 0, owned_X.std(axis=0), 1.0)
        owned_Z = (owned_X - mean) / std
        batch_Z = (batch_X - mean) / std
        distances = [
            float(np.linalg.norm(owned_Z - row, axis=1).min()) for row in batch_Z
        ]
        return float(np.mean(distances))

    def _select(
        self,
        names: List[str],
        utilities: Dict[str, List[float]],
        novelties: Dict[str, float],
        step: int,
        epsilon: float,
        rng: np.random.Generator,
    ) -> str:
        if self.strategy == "random":
            return names[int(rng.integers(len(names)))]
        if self.strategy == "round_robin":
            return names[step % len(names)]
        unexplored = [name for name in names if not utilities[name]]
        if unexplored:
            return unexplored[0]
        if rng.random() < epsilon:
            return names[int(rng.integers(len(names)))]

        def score(name: str) -> float:
            reward = float(np.mean(utilities[name]))
            return reward + self.novelty_weight * novelties.get(name, 0.0)

        return max(names, key=lambda name: (score(name), name))

    # -- the campaign ---------------------------------------------------------

    def run(
        self,
        provider: DataProvider,
        budget: int,
        batch_size: int = 50,
        rng: RngLike = None,
    ) -> AcquisitionResult:
        """Spend up to *budget* records in batches of *batch_size*."""
        if budget < 1 or batch_size < 1:
            raise SpecificationError("budget and batch_size must be >= 1")
        generator = ensure_rng(rng)
        owned = self.initial
        initial_accuracy = self._fit_and_score(owned)
        trajectory: List[Tuple[int, float]] = [(0, initial_accuracy)]
        utilities: Dict[str, List[float]] = {name: [] for name in self.candidates}
        novelties: Dict[str, float] = {}
        usage: Dict[str, int] = {name: 0 for name in self.candidates}
        names = sorted(self.candidates)
        bought = 0
        accuracy = initial_accuracy
        epsilon = self.epsilon
        step = 0
        exhausted: set = set()

        while bought < budget and len(exhausted) < len(names):
            active = [name for name in names if name not in exhausted]
            name = self._select(active, utilities, novelties, step, epsilon, generator)
            step += 1
            batch = provider.query(
                self.candidates[name], min(batch_size, budget - bought)
            )
            if len(batch) == 0:
                exhausted.add(name)
                utilities[name].append(0.0)
                continue
            novelty = self._novelty(owned, batch)
            novelties[name] = novelty
            owned = owned.concat(batch)
            bought += len(batch)
            usage[name] += len(batch)
            new_accuracy = self._fit_and_score(owned)
            utilities[name].append(new_accuracy - accuracy)
            accuracy = new_accuracy
            trajectory.append((bought, accuracy))
            epsilon *= self.epsilon_decay

        return AcquisitionResult(
            accuracy_trajectory=trajectory,
            records_bought=bought,
            final_accuracy=accuracy,
            initial_accuracy=initial_accuracy,
            predicate_usage=usage,
        )
