"""Budgeted data acquisition for model improvement (tutorial §3.1, §4.2).

* :mod:`respdi.acquisition.market` — the data-market setting of Li, Yu &
  Koudas (VLDB 2021): a provider holds data from the target distribution
  behind a query-by-predicate API with a per-record budget; the consumer
  issues an optimal sequence of predicate queries, balancing exploration
  (learning where the provider's data helps) against exploitation
  (buying more of what already helped), with a novelty-based utility.
* :mod:`respdi.acquisition.slicetuner` — Slice Tuner (Tae & Whang,
  SIGMOD 2021): selectively acquire data *per slice*, using estimated
  per-slice learning curves to spend the budget where loss (and
  unfairness between slices) drops fastest.
"""

from respdi.acquisition.correlation_market import (
    CorrelationPurchaseResult,
    PricedColumnSource,
    buy_correlation,
    fisher_confidence_width,
)
from respdi.acquisition.market import (
    AcquisitionResult,
    DataProvider,
    ModelImprovementAcquirer,
)
from respdi.acquisition.slicetuner import SliceTuner, SliceTunerResult, fit_power_law

__all__ = [
    "DataProvider",
    "AcquisitionResult",
    "ModelImprovementAcquirer",
    "SliceTuner",
    "SliceTunerResult",
    "fit_power_law",
    "PricedColumnSource",
    "CorrelationPurchaseResult",
    "buy_correlation",
    "fisher_confidence_width",
]
