"""Cost-efficient acquisition for correlation analysis (Li et al., VLDB'18).

Setting (tutorial §4.2): a buyer wants the correlation between attribute
``A`` held by one priced source and attribute ``B`` held by another,
joinable on a key.  Tuples cost money; the full join is unaffordable.
The buyer purchases tuples incrementally, maintains a correlation
estimate with a Fisher-z confidence interval, and stops at a target
precision or budget exhaustion.

Two purchasing strategies expose the paper's headline point:

* ``"random"`` — buy uniformly random tuples from each side; a purchased
  pair only helps when its keys happen to match, so much of the budget
  buys non-joining tuples;
* ``"coordinated"`` — spend a small probe budget on key sketches first
  (the :mod:`respdi.discovery.correlation_sketches` machinery), then buy
  tuples only for keys known to exist on *both* sides: every purchased
  pair joins, reaching the precision target at a fraction of the cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.stats.dependence import pearson_correlation
from respdi.table import Table


class PricedColumnSource:
    """A seller holding (key, value) tuples at a fixed per-tuple price."""

    def __init__(
        self,
        table: Table,
        key_column: str,
        value_column: str,
        price: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if price <= 0:
            raise SpecificationError("price must be positive")
        table.schema.require([key_column, value_column])
        keys = table.column(key_column)
        values = np.asarray(table.column(value_column), dtype=float)
        self._data: Dict[Hashable, float] = {}
        for i in range(len(table)):
            if keys[i] is not None and not np.isnan(values[i]):
                self._data.setdefault(keys[i], float(values[i]))
        if not self._data:
            raise EmptyInputError("source holds no complete (key, value) tuples")
        self.price = float(price)
        self._rng = ensure_rng(rng)
        self._unsold = sorted(self._data, key=repr)
        self.revenue = 0.0

    @property
    def remaining(self) -> int:
        return len(self._unsold)

    def key_list(self) -> List[Hashable]:
        """The seller's key list (public metadata, free — sellers
        advertise what they can join on)."""
        return sorted(self._data, key=repr)

    def buy_random(self, n: int) -> List[Tuple[Hashable, float]]:
        """Buy *n* random unsold tuples (fewer if the stock runs out)."""
        if n < 1:
            raise SpecificationError("n must be >= 1")
        n = min(n, len(self._unsold))
        chosen_idx = self._rng.choice(len(self._unsold), size=n, replace=False)
        chosen = [self._unsold[int(i)] for i in chosen_idx]
        for key in chosen:
            self._unsold.remove(key)
        self.revenue += n * self.price
        return [(key, self._data[key]) for key in chosen]

    def buy_keys(self, keys: List[Hashable]) -> List[Tuple[Hashable, float]]:
        """Buy the tuples for specific *keys* (unsold ones only)."""
        out = []
        unsold = set(self._unsold)
        for key in keys:
            if key in unsold:
                out.append((key, self._data[key]))
                unsold.discard(key)
        self._unsold = sorted(unsold, key=repr)
        self.revenue += len(out) * self.price
        return out


def fisher_confidence_width(correlation: float, n: int, z: float = 1.96) -> float:
    """Width of the Fisher-z confidence interval for a Pearson estimate."""
    if n < 4:
        return 2.0
    correlation = min(max(correlation, -0.999999), 0.999999)
    halfwidth_z = z / math.sqrt(n - 3)
    center = math.atanh(correlation)
    return math.tanh(center + halfwidth_z) - math.tanh(center - halfwidth_z)


@dataclass
class CorrelationPurchaseResult:
    """Outcome of one correlation-buying campaign."""

    estimate: float
    pairs_used: int
    total_cost: float
    ci_width: float
    reached_target: bool
    trajectory: List[Tuple[float, float, float]] = field(default_factory=list)
    """(cumulative cost, estimate, CI width) after each batch."""


def buy_correlation(
    left: PricedColumnSource,
    right: PricedColumnSource,
    budget: float,
    target_ci_width: float = 0.2,
    batch_size: int = 20,
    strategy: str = "coordinated",
    rng: RngLike = None,
) -> CorrelationPurchaseResult:
    """Estimate ``corr(left.value, right.value)`` over the key join,
    buying tuples until the CI is narrow enough or the budget runs out."""
    if strategy not in ("coordinated", "random"):
        raise SpecificationError(f"unknown strategy {strategy!r}")
    if budget <= 0 or batch_size < 1:
        raise SpecificationError("budget and batch_size must be positive")
    if not 0.0 < target_ci_width <= 2.0:
        raise SpecificationError("target_ci_width must be in (0, 2]")
    generator = ensure_rng(rng)

    left_bought: Dict[Hashable, float] = {}
    right_bought: Dict[Hashable, float] = {}
    cost = 0.0
    trajectory: List[Tuple[float, float, float]] = []

    shared_keys: Optional[List[Hashable]] = None
    if strategy == "coordinated":
        shared = set(left.key_list()) & set(right.key_list())
        shared_keys = sorted(shared, key=repr)
        generator.shuffle(shared_keys)

    def current_estimate() -> Tuple[float, int]:
        keys = sorted(set(left_bought) & set(right_bought), key=repr)
        if len(keys) < 4:
            return 0.0, len(keys)
        a = np.array([left_bought[k] for k in keys])
        b = np.array([right_bought[k] for k in keys])
        return pearson_correlation(a, b), len(keys)

    while True:
        estimate, pairs = current_estimate()
        width = fisher_confidence_width(estimate, pairs)
        trajectory.append((cost, estimate, width))
        if pairs >= 4 and width <= target_ci_width:
            return CorrelationPurchaseResult(
                estimate, pairs, cost, width, True, trajectory
            )
        batch_cost = batch_size * (left.price + right.price)
        if cost + batch_cost > budget:
            return CorrelationPurchaseResult(
                estimate, pairs, cost, width, False, trajectory
            )
        if strategy == "coordinated":
            batch_keys = [k for k in shared_keys[:batch_size]]
            shared_keys = shared_keys[batch_size:]
            if not batch_keys:
                return CorrelationPurchaseResult(
                    estimate, pairs, cost, width, False, trajectory
                )
            left_items = left.buy_keys(batch_keys)
            right_items = right.buy_keys(batch_keys)
        else:
            left_items = left.buy_random(batch_size)
            right_items = right.buy_random(batch_size)
            if not left_items and not right_items:
                return CorrelationPurchaseResult(
                    estimate, pairs, cost, width, False, trajectory
                )
        cost += (
            len(left_items) * left.price + len(right_items) * right.price
        )
        left_bought.update(left_items)
        right_bought.update(right_items)
