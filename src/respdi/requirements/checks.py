"""Concrete implementations of the five §2 requirements."""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from respdi.cleaning.outliers import group_zscore_outliers, zscore_outliers
from respdi.coverage.mups import CoverageAnalyzer
from respdi.coverage.patterns import format_pattern
from respdi.errors import SpecificationError
from respdi.profiling.datasheets import SECTIONS, Datasheet
from respdi.requirements.base import AuditReport, RequirementCheck, RequirementReport
from respdi.stats.dependence import correlation_ratio, pearson_correlation
from respdi.stats.divergence import js_divergence, kl_divergence, total_variation
from respdi.table import Table

Group = Tuple[Hashable, ...]

_DIVERGENCES = {
    "tv": total_variation,
    "js": js_divergence,
    "kl": lambda p, q: kl_divergence(p, q, smoothing=1e-9),
}


class DistributionRepresentationRequirement(RequirementCheck):
    """§2.1 — the data's empirical group distribution must be within
    *max_divergence* of the *target* population distribution."""

    name = "underlying-distribution-representation"

    def __init__(
        self,
        attributes: Sequence[str],
        target: Mapping[Group, float],
        max_divergence: float = 0.05,
        measure: str = "tv",
    ) -> None:
        if measure not in _DIVERGENCES:
            raise SpecificationError(
                f"unknown measure {measure!r}; expected one of "
                f"{sorted(_DIVERGENCES)}"
            )
        if max_divergence < 0:
            raise SpecificationError("max_divergence must be non-negative")
        if not attributes:
            raise SpecificationError("need at least one attribute")
        self.attributes = tuple(attributes)
        self.target = dict(target)
        self.max_divergence = max_divergence
        self.measure = measure

    def audit(self, table: Table) -> RequirementReport:
        counts = table.group_counts(list(self.attributes))
        total = sum(counts.values())
        if total == 0:
            return RequirementReport(
                self.name, False, float("inf"), message="table is empty"
            )
        empirical = {group: count / total for group, count in counts.items()}
        divergence = _DIVERGENCES[self.measure](self.target, empirical)
        passed = divergence <= self.max_divergence
        return RequirementReport(
            self.name,
            passed,
            float(divergence),
            details={"empirical": empirical, "target": dict(self.target)},
            message=f"{self.measure}={divergence:.4f} vs bound {self.max_divergence}",
        )


class GroupRepresentationRequirement(RequirementCheck):
    """§2.2 — no maximal uncovered pattern at the chosen threshold."""

    name = "group-representation"

    def __init__(
        self,
        attributes: Sequence[str],
        threshold: int = 20,
        expected_domains: Optional[Dict[str, list]] = None,
    ) -> None:
        if threshold < 1:
            raise SpecificationError("threshold must be >= 1")
        if not attributes:
            raise SpecificationError("need at least one attribute")
        self.attributes = tuple(attributes)
        self.threshold = threshold
        # Without expected domains the audit can only see values that
        # occur in the data; a group that is *entirely* absent (the worst
        # representation failure) is invisible.  Pass the population's
        # value domains to catch it.
        self.expected_domains = dict(expected_domains or {})

    def audit(self, table: Table) -> RequirementReport:
        analyzer = CoverageAnalyzer(
            table, self.attributes, self.threshold,
            domains=self.expected_domains or None,
        )
        report = analyzer.mups()
        rendered = [format_pattern(report.attributes, p) for p in report.mups]
        return RequirementReport(
            self.name,
            passed=not report.mups,
            score=float(len(report.mups)),
            details={"mups": rendered, "threshold": self.threshold},
            message=(
                "fully covered"
                if not report.mups
                else f"{len(report.mups)} uncovered pattern(s): {rendered[:5]}"
            ),
        )


class FeatureRequirement(RequirementCheck):
    """§2.3 — features informative of the target, minimally associated
    with sensitive attributes.

    The check passes when at least *min_informative_features* features
    reach *min_informativeness* against the target AND no feature exceeds
    *max_sensitive_association* against any sensitive attribute.  The
    score is the worst sensitive association observed.
    """

    name = "unbiased-informative-features"

    def __init__(
        self,
        feature_columns: Sequence[str],
        target_column: str,
        sensitive_columns: Sequence[str],
        min_informativeness: float = 0.1,
        max_sensitive_association: float = 0.5,
        min_informative_features: int = 1,
    ) -> None:
        if not feature_columns:
            raise SpecificationError("need at least one feature column")
        self.feature_columns = tuple(feature_columns)
        self.target_column = target_column
        self.sensitive_columns = tuple(sensitive_columns)
        self.min_informativeness = min_informativeness
        self.max_sensitive_association = max_sensitive_association
        self.min_informative_features = min_informative_features

    def _informativeness(self, table: Table, feature: str) -> float:
        f_values = np.asarray(table.column(feature), dtype=float)
        t_values = np.asarray(table.column(self.target_column), dtype=float)
        keep = ~np.isnan(f_values) & ~np.isnan(t_values)
        if keep.sum() < 2:
            return 0.0
        return abs(pearson_correlation(f_values[keep], t_values[keep]))

    def audit(self, table: Table) -> RequirementReport:
        table.schema.require(
            list(self.feature_columns)
            + [self.target_column]
            + list(self.sensitive_columns)
        )
        informativeness = {
            feature: self._informativeness(table, feature)
            for feature in self.feature_columns
        }
        bias: Dict[Tuple[str, str], float] = {}
        for feature in self.feature_columns:
            values = np.asarray(table.column(feature), dtype=float)
            for sensitive in self.sensitive_columns:
                s_values = table.column(sensitive)
                keep = ~np.isnan(values) & ~table.missing_mask(sensitive)
                if keep.sum() < 2:
                    continue
                bias[(feature, sensitive)] = correlation_ratio(
                    list(s_values[keep]), values[keep]
                )
        informative_count = sum(
            1
            for value in informativeness.values()
            if value >= self.min_informativeness
        )
        worst_bias = max(bias.values()) if bias else 0.0
        passed = (
            informative_count >= self.min_informative_features
            and worst_bias <= self.max_sensitive_association
        )
        return RequirementReport(
            self.name,
            passed,
            score=float(worst_bias),
            details={"informativeness": informativeness, "bias": bias},
            message=(
                f"{informative_count} informative feature(s); "
                f"worst sensitive association {worst_bias:.3f} "
                f"(bound {self.max_sensitive_association})"
            ),
        )


class CompletenessCorrectnessRequirement(RequirementCheck):
    """§2.4 — bounded missingness and outlier rates, including per group.

    The per-group bound is the §2.4 point: a global 2% missing rate can
    hide a 30% rate inside a small group.
    """

    name = "completeness-and-correctness"

    def __init__(
        self,
        columns: Sequence[str],
        group_columns: Sequence[str],
        max_missing_rate: float = 0.05,
        max_group_missing_rate: float = 0.1,
        max_outlier_rate: float = 0.01,
        outlier_threshold: float = 4.0,
    ) -> None:
        if not columns:
            raise SpecificationError("need at least one column to check")
        self.columns = tuple(columns)
        self.group_columns = tuple(group_columns)
        self.max_missing_rate = max_missing_rate
        self.max_group_missing_rate = max_group_missing_rate
        self.max_outlier_rate = max_outlier_rate
        self.outlier_threshold = outlier_threshold

    def audit(self, table: Table) -> RequirementReport:
        table.schema.require(list(self.columns) + list(self.group_columns))
        failures: List[str] = []
        worst = 0.0
        missing_rates: Dict[str, float] = {}
        group_missing: Dict[str, Dict[Group, float]] = {}
        outlier_rates: Dict[str, float] = {}
        group_idx = (
            table.group_indices(list(self.group_columns))
            if self.group_columns and len(table)
            else {}
        )
        for column in self.columns:
            missing = table.missing_mask(column)
            rate = float(missing.mean()) if len(table) else 0.0
            missing_rates[column] = rate
            worst = max(worst, rate)
            if rate > self.max_missing_rate:
                failures.append(f"{column}: missing rate {rate:.1%}")
            per_group: Dict[Group, float] = {}
            for key, idx in group_idx.items():
                group_rate = float(missing[idx].mean())
                per_group[key] = group_rate
                worst = max(worst, group_rate)
                if group_rate > self.max_group_missing_rate:
                    failures.append(
                        f"{column}: group {key!r} missing rate {group_rate:.1%}"
                    )
            if per_group:
                group_missing[column] = per_group
            if table.schema[column].is_numeric and len(table):
                if self.group_columns:
                    outliers = group_zscore_outliers(
                        table, column, list(self.group_columns),
                        self.outlier_threshold,
                    )
                else:
                    outliers = zscore_outliers(
                        table, column, self.outlier_threshold
                    )
                outlier_rate = float(outliers.mean())
                outlier_rates[column] = outlier_rate
                worst = max(worst, outlier_rate)
                if outlier_rate > self.max_outlier_rate:
                    failures.append(
                        f"{column}: outlier rate {outlier_rate:.1%}"
                    )
        return RequirementReport(
            self.name,
            passed=not failures,
            score=worst,
            details={
                "missing_rates": missing_rates,
                "group_missing_rates": group_missing,
                "outlier_rates": outlier_rates,
            },
            message="clean" if not failures else "; ".join(failures[:4]),
        )


class ScopeOfUseRequirement(RequirementCheck):
    """§2.5 — the data must ship with a sufficiently complete datasheet.

    The audit ignores the table itself; what it verifies is the
    *metadata*: the datasheet covers the required sections and declares
    at least one known limitation and one recommended use (a datasheet
    that claims no limitations has not been filled in honestly).
    """

    name = "scope-of-use-augmentation"

    def __init__(
        self,
        datasheet: Optional[Datasheet],
        required_sections: Sequence[str] = SECTIONS,
    ) -> None:
        self.datasheet = datasheet
        self.required_sections = tuple(required_sections)

    def audit(self, table: Table) -> RequirementReport:
        if self.datasheet is None:
            return RequirementReport(
                self.name, False, 1.0, message="no datasheet attached"
            )
        done = set(self.datasheet.completed_sections())
        if self.datasheet.composition_profile is not None:
            done.add("composition")
        missing = [s for s in self.required_sections if s not in done]
        issues = list(missing)
        if not self.datasheet.known_limitations:
            issues.append("no known limitations declared")
        if not self.datasheet.recommended_uses:
            issues.append("no recommended uses declared")
        return RequirementReport(
            self.name,
            passed=not issues,
            score=float(len(issues)),
            details={"missing_sections": missing},
            message="datasheet complete" if not issues else "; ".join(issues),
        )


def audit_requirements(
    table: Table, requirements: Sequence[RequirementCheck]
) -> AuditReport:
    """Run every requirement against *table* and aggregate."""
    if not requirements:
        raise SpecificationError("need at least one requirement to audit")
    return AuditReport([requirement.audit(table) for requirement in requirements])
