"""The five responsible-AI data requirements (tutorial §2), auditable.

Each requirement is a check object with
``audit(table, ...) -> RequirementReport``; :func:`audit_requirements`
runs a list of them and aggregates.  This is the tutorial's Part 1 made
executable: the integration pipeline audits its output against these
before declaring the data fit for use.

* :class:`DistributionRepresentationRequirement` — §2.1: the data's group
  distribution must be close to the target population distribution;
* :class:`GroupRepresentationRequirement` — §2.2: every (intersectional)
  group must be covered (no MUPs at the chosen threshold);
* :class:`FeatureRequirement` — §2.3: features must be informative of the
  target and minimally associated with sensitive attributes;
* :class:`CompletenessCorrectnessRequirement` — §2.4: bounded missingness
  and outlier rates, overall and per group;
* :class:`ScopeOfUseRequirement` — §2.5: the data ships with transparency
  metadata (a datasheet covering the required sections).
"""

from respdi.requirements.base import AuditReport, RequirementCheck, RequirementReport
from respdi.requirements.checks import (
    CompletenessCorrectnessRequirement,
    DistributionRepresentationRequirement,
    FeatureRequirement,
    GroupRepresentationRequirement,
    ScopeOfUseRequirement,
    audit_requirements,
)

__all__ = [
    "RequirementCheck",
    "RequirementReport",
    "AuditReport",
    "DistributionRepresentationRequirement",
    "GroupRepresentationRequirement",
    "FeatureRequirement",
    "CompletenessCorrectnessRequirement",
    "ScopeOfUseRequirement",
    "audit_requirements",
]
