"""Requirement-check protocol and report types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from respdi.table import Table


@dataclass(frozen=True)
class RequirementReport:
    """Outcome of auditing one requirement."""

    requirement: str
    passed: bool
    score: float
    """A requirement-specific scalar where smaller is better (a divergence,
    a violation count, a worst-case rate); 0 means perfectly satisfied."""
    details: Dict[str, object] = field(default_factory=dict)
    message: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.message}" if self.message else ""
        return f"[{status}] {self.requirement} (score={self.score:.4f}){suffix}"


class RequirementCheck:
    """Interface: implement :meth:`audit`."""

    name: str = "requirement"

    def audit(self, table: Table) -> RequirementReport:
        raise NotImplementedError


@dataclass
class AuditReport:
    """Aggregate of several requirement audits."""

    reports: List[RequirementReport]

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    @property
    def failures(self) -> List[RequirementReport]:
        return [report for report in self.reports if not report.passed]

    def report_for(self, name: str) -> Optional[RequirementReport]:
        for report in self.reports:
            if report.requirement == name:
                return report
        return None

    def render(self) -> str:
        lines = [str(report) for report in self.reports]
        lines.append(
            f"overall: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.reports) - len(self.failures)}/{len(self.reports)} "
            "requirements satisfied)"
        )
        return "\n".join(lines)
