"""Gold-set evaluation of matcher strengths: precision, coverage, FuzzyGain.

Given a table with ground-truth entity ids (a *gold set*, e.g. from
:func:`respdi.datagen.duplicates.generate_gold_registry`), this harness
runs every matcher strength (:mod:`respdi.linkage.views`) and reports,
per view:

* **pairwise precision / recall** against the gold pairs
  (:func:`respdi.linkage.evaluation.evaluate_linkage`, including
  per-group recall);
* **entity coverage** — the fraction of gold entities whose records the
  view consolidates into a single cluster.  An entity that stays split
  is *not covered*: its person exists in the data twice, half-counted
  everywhere downstream.  This is the §2 representation question made
  operational: which matcher a tenant picks decides who counts;
* **per-group coverage** and, through :mod:`respdi.coverage`, the
  Maximal Uncovered Patterns of the *resolved-entity* table — which
  demographic slices fall below the coverage threshold under each
  strength;
* **FuzzyGain** — the coverage recovered by each strength step
  (exact → normalized → fuzzy), overall and per demographic group.  A
  large per-group FuzzyGain says that group's records carry the
  transcription noise only the stronger matcher survives — exactly the
  disparity the responsible-integration audit should surface.

Because view link sets are nested (see :mod:`respdi.linkage.views`),
coverage is monotone non-decreasing across the strength order, and every
gain is >= 0 by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from respdi import obs
from respdi.coverage import CoverageAnalyzer
from respdi.coverage.patterns import format_pattern
from respdi.errors import SpecificationError
from respdi.linkage.evaluation import LinkageQualityReport, evaluate_linkage
from respdi.linkage.matching import FieldComparator
from respdi.linkage.views import STRENGTH_ORDER, MatcherLinks, build_view
from respdi.parallel import ExecutionContext
from respdi.table import Table

Group = Tuple[Hashable, ...]


def _group_label(group: Group) -> str:
    """Render a group tuple as a stable, JSON-able string key."""
    return "|".join(str(part) for part in group)


@dataclass(frozen=True)
class ViewEvaluation:
    """One matcher strength's full scorecard against the gold set."""

    strength: str
    links: MatcherLinks
    quality: LinkageQualityReport
    entity_coverage: float
    covered_entities: int
    group_coverage: Dict[Group, float]
    group_covered: Dict[Group, int]
    uncovered_patterns: Tuple[str, ...]

    def to_payload(self) -> dict:
        """Plain-JSON rendering (the serve/CLI/CI interchange form)."""
        return {
            "strength": self.strength,
            "links": [list(pair) for pair in self.links.sorted_pairs()],
            "num_links": self.links.num_links,
            "clusters": self.links.num_clusters,
            "precision": self.quality.precision,
            "recall": self.quality.recall,
            "f1": self.quality.f1,
            "true_pairs": self.quality.true_pairs,
            "predicted_pairs": self.quality.predicted_pairs,
            "entity_coverage": self.entity_coverage,
            "covered_entities": self.covered_entities,
            "group_coverage": {
                _group_label(group): value
                for group, value in sorted(
                    self.group_coverage.items(), key=lambda kv: repr(kv[0])
                )
            },
            "uncovered_patterns": list(self.uncovered_patterns),
        }


@dataclass(frozen=True)
class StrengthEvalReport:
    """The cross-strength comparison: per-view scorecards plus the gains."""

    entity_column: str
    key_columns: Tuple[str, ...]
    group_columns: Tuple[str, ...]
    strengths: Tuple[str, ...]
    n_records: int
    n_entities: int
    n_duplicated_entities: int
    gold_pairs: int
    views: Dict[str, ViewEvaluation]
    #: Coverage recovered by each strength *step* (keyed by the stronger
    #: strength; the first evaluated strength has no step).  Non-negative
    #: whenever link sets are nested, which the views guarantee.
    coverage_gains: Dict[str, float]
    group_coverage_gains: Dict[str, Dict[Group, float]]

    @property
    def fuzzy_gain(self) -> float:
        """Coverage recovered by the fuzzy step over the normalized view."""
        return self.coverage_gains.get("fuzzy", 0.0)

    @property
    def nested(self) -> bool:
        """True when every stronger view's link set contains the weaker's."""
        for weaker, stronger in zip(self.strengths, self.strengths[1:]):
            if not self.views[weaker].links.pairs <= self.views[stronger].links.pairs:
                return False
        return True

    def to_payload(self) -> dict:
        return {
            "entity_column": self.entity_column,
            "key_columns": list(self.key_columns),
            "group_columns": list(self.group_columns),
            "strengths": list(self.strengths),
            "n_records": self.n_records,
            "n_entities": self.n_entities,
            "n_duplicated_entities": self.n_duplicated_entities,
            "gold_pairs": self.gold_pairs,
            "nested": self.nested,
            "views": {
                strength: view.to_payload()
                for strength, view in self.views.items()
            },
            "coverage_gains": dict(self.coverage_gains),
            "group_coverage_gains": {
                strength: {
                    _group_label(group): value
                    for group, value in sorted(
                        gains.items(), key=lambda kv: repr(kv[0])
                    )
                }
                for strength, gains in self.group_coverage_gains.items()
            },
            "fuzzy_gain": self.fuzzy_gain,
        }

    def render(self) -> str:
        """Human-readable report (the ``respdi-audit`` rendering)."""
        lines: List[str] = []
        lines.append("=== matcher strength evaluation ===")
        lines.append(
            f"gold set: {self.n_records} records, {self.n_entities} entities "
            f"({self.n_duplicated_entities} with duplicates), "
            f"{self.gold_pairs} gold pairs; keys={list(self.key_columns)}"
        )
        header = (
            f"{'strength':<11} {'links':>7} {'clusters':>8} {'precision':>9} "
            f"{'recall':>7} {'coverage':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for strength in self.strengths:
            view = self.views[strength]
            lines.append(
                f"{strength:<11} {view.links.num_links:>7} "
                f"{view.links.num_clusters:>8} "
                f"{view.quality.precision:>9.3f} "
                f"{view.quality.recall:>7.3f} "
                f"{view.entity_coverage:>8.3f}"
            )
        if self.coverage_gains:
            steps = ", ".join(
                f"{strength} +{gain:.3f}"
                for strength, gain in self.coverage_gains.items()
            )
            lines.append(f"coverage gain by step: {steps}")
        if self.group_columns:
            lines.append("")
            lines.append(
                "per-group entity coverage "
                f"(groups={list(self.group_columns)}):"
            )
            groups = sorted(
                {
                    group
                    for view in self.views.values()
                    for group in view.group_coverage
                },
                key=repr,
            )
            head = f"{'group':<16} " + " ".join(
                f"{strength:>10}" for strength in self.strengths
            )
            if "fuzzy" in self.group_coverage_gains:
                head += f" {'fuzzy_gain':>10}"
            lines.append(head)
            for group in groups:
                row = f"{_group_label(group):<16} " + " ".join(
                    f"{self.views[s].group_coverage.get(group, 0.0):>10.3f}"
                    for s in self.strengths
                )
                if "fuzzy" in self.group_coverage_gains:
                    gain = self.group_coverage_gains["fuzzy"].get(group, 0.0)
                    row += f" {gain:>10.3f}"
                lines.append(row)
            for strength in self.strengths:
                patterns = self.views[strength].uncovered_patterns
                if patterns:
                    lines.append(
                        f"uncovered patterns ({strength}): "
                        + "; ".join(patterns)
                    )
        return "\n".join(lines)


def _entities(table: Table, entity_column: str) -> Dict[Hashable, List[int]]:
    """Ground-truth entity -> sorted record indices (missing ids skipped)."""
    values = table.column(entity_column)
    by_entity: Dict[Hashable, List[int]] = {}
    for i in range(len(table)):
        if values[i] is not None:
            by_entity.setdefault(values[i], []).append(i)
    return by_entity


def _coverage_for_view(
    table: Table,
    links: MatcherLinks,
    by_entity: Dict[Hashable, List[int]],
    group_columns: Sequence[str],
    coverage_threshold: int,
) -> Tuple[float, int, Dict[Group, float], Dict[Group, int], Tuple[str, ...]]:
    """Entity coverage (overall, per group) plus the resolved-table MUPs."""
    cluster_of = [0] * links.n_records
    for cluster_id, members in enumerate(links.clusters):
        for member in members:
            cluster_of[member] = cluster_id

    covered_first_records: List[int] = []
    covered = 0
    group_arrays = [table.column(name) for name in group_columns]
    group_total: Dict[Group, int] = {}
    group_found: Dict[Group, int] = {}
    for _, members in sorted(by_entity.items(), key=lambda kv: repr(kv[0])):
        is_covered = len({cluster_of[i] for i in members}) == 1
        if is_covered:
            covered += 1
            covered_first_records.append(members[0])
        if group_columns:
            group = tuple(array[members[0]] for array in group_arrays)
            group_total[group] = group_total.get(group, 0) + 1
            if is_covered:
                group_found[group] = group_found.get(group, 0) + 1

    total = len(by_entity)
    entity_coverage = covered / total if total else 1.0
    group_coverage = {
        group: group_found.get(group, 0) / count
        for group, count in group_total.items()
    }
    group_covered = {
        group: group_found.get(group, 0) for group in group_total
    }

    uncovered: Tuple[str, ...] = ()
    if group_columns:
        # MUPs of the *resolved-entity* table: one row per covered
        # entity.  Domains come from the full record table, so a group
        # the view resolves nothing of still surfaces as uncovered —
        # absence is the finding, not an indexing error.
        resolved = table.take(sorted(covered_first_records)).project(
            list(group_columns)
        )
        domains = {name: table.unique(name) for name in group_columns}
        if all(domains[name] for name in group_columns):
            analyzer = CoverageAnalyzer(
                resolved,
                list(group_columns),
                threshold=coverage_threshold,
                domains=domains,
            )
            report = analyzer.mups()
            uncovered = tuple(
                format_pattern(report.attributes, pattern)
                for pattern in report.mups
            )
    return entity_coverage, covered, group_coverage, group_covered, uncovered


def evaluate_strengths(
    table: Table,
    entity_column: str,
    key_columns: Sequence[str],
    group_columns: Sequence[str] = (),
    strengths: Sequence[str] = STRENGTH_ORDER,
    threshold: float = 0.85,
    window: int = 8,
    coverage_threshold: int = 5,
    comparators: Optional[Sequence[FieldComparator]] = None,
    context: Optional[ExecutionContext] = None,
    n_jobs: Optional[int] = None,
) -> StrengthEvalReport:
    """Run every strength in *strengths* against the gold set and compare.

    *strengths* must be a subsequence of :data:`STRENGTH_ORDER` — the
    step gains are only meaningful when each view is at least as strong
    as its predecessor.  *coverage_threshold* is the minimum number of
    resolved entities per demographic pattern for the
    :mod:`respdi.coverage` MUP search.
    """
    table.schema.require([entity_column] + list(key_columns) + list(group_columns))
    strengths = tuple(strengths)
    if not strengths:
        raise SpecificationError("need at least one strength to evaluate")
    order = [s for s in STRENGTH_ORDER if s in strengths]
    if tuple(order) != strengths or len(set(strengths)) != len(strengths):
        raise SpecificationError(
            f"strengths must be a subsequence of {STRENGTH_ORDER}, "
            f"got {strengths}"
        )
    for name in group_columns:
        if not table.schema[name].is_categorical:
            raise SpecificationError(
                f"group column {name!r} must be categorical"
            )

    by_entity = _entities(table, entity_column)
    n_duplicated = sum(1 for members in by_entity.values() if len(members) > 1)
    gold_pairs = sum(
        len(members) * (len(members) - 1) // 2 for members in by_entity.values()
    )

    views: Dict[str, ViewEvaluation] = {}
    with obs.trace(
        "linkage.strength_eval", records=len(table), strengths=len(strengths)
    ):
        for strength in strengths:
            view = build_view(
                strength,
                key_columns,
                threshold=threshold,
                window=window,
                comparators=comparators,
            )
            links = view.link(table, context=context, n_jobs=n_jobs)
            quality = evaluate_linkage(
                table, set(links.pairs), entity_column, group_columns
            )
            (
                entity_coverage,
                covered,
                group_coverage,
                group_covered,
                uncovered,
            ) = _coverage_for_view(
                table, links, by_entity, group_columns, coverage_threshold
            )
            views[strength] = ViewEvaluation(
                strength=strength,
                links=links,
                quality=quality,
                entity_coverage=entity_coverage,
                covered_entities=covered,
                group_coverage=group_coverage,
                group_covered=group_covered,
                uncovered_patterns=uncovered,
            )

    coverage_gains: Dict[str, float] = {}
    group_gains: Dict[str, Dict[Group, float]] = {}
    for weaker, stronger in zip(strengths, strengths[1:]):
        coverage_gains[stronger] = (
            views[stronger].entity_coverage - views[weaker].entity_coverage
        )
        gains: Dict[Group, float] = {}
        groups = set(views[stronger].group_coverage) | set(
            views[weaker].group_coverage
        )
        for group in groups:
            gains[group] = views[stronger].group_coverage.get(
                group, 0.0
            ) - views[weaker].group_coverage.get(group, 0.0)
        group_gains[stronger] = gains

    return StrengthEvalReport(
        entity_column=entity_column,
        key_columns=tuple(key_columns),
        group_columns=tuple(group_columns),
        strengths=strengths,
        n_records=len(table),
        n_entities=len(by_entity),
        n_duplicated_entities=n_duplicated,
        gold_pairs=gold_pairs,
        views=views,
        coverage_gains=coverage_gains,
        group_coverage_gains=group_gains,
    )
