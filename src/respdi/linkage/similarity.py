"""Field comparators for record linkage.

All similarities return values in [0, 1] with 1 meaning identical.
Missing inputs (``None``) yield 0 similarity — an unrecorded value is
evidence of nothing, consistent with the library's NULL semantics.
"""

from __future__ import annotations

import math
from typing import Optional

from respdi.errors import SpecificationError


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,      # delete
                    current[j - 1] + 1,   # insert
                    previous[j - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: Optional[str], b: Optional[str]) -> float:
    """``1 - distance / max_len``, 0 for missing inputs."""
    if a is None or b is None:
        return 0.0
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: Optional[str], b: Optional[str]) -> float:
    """Jaro similarity (match window, transposition counting)."""
    if a is None or b is None:
        return 0.0
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * len_a
    b_matched = [False] * len_b
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if a_matched[i]:
            while not b_matched[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    a: Optional[str], b: Optional[str], prefix_scale: float = 0.1
) -> float:
    """Jaro-Winkler: Jaro boosted for a shared prefix (up to 4 chars)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise SpecificationError("prefix_scale must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    if a is None or b is None:
        return 0.0
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca == cb:
            prefix += 1
        else:
            break
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def token_jaccard(a: Optional[str], b: Optional[str]) -> float:
    """Jaccard similarity of whitespace token sets (order-insensitive —
    robust to 'Last, First' style swaps after normalization)."""
    if a is None or b is None:
        return 0.0
    tokens_a = set(a.lower().split())
    tokens_b = set(b.lower().split())
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def numeric_similarity(
    a: Optional[float], b: Optional[float], scale: float = 1.0
) -> float:
    """``exp(-|a - b| / scale)`` — 1 at equality, decaying with the gap."""
    if scale <= 0:
        raise SpecificationError("scale must be positive")
    if a is None or b is None:
        return 0.0
    a = float(a)
    b = float(b)
    if math.isnan(a) or math.isnan(b):
        return 0.0
    return math.exp(-abs(a - b) / scale)
