"""Blocking: prune the quadratic pair space before matching.

Comparing all ``n^2 / 2`` record pairs is infeasible; blocking proposes
a candidate subset.  Two classical schemes:

* **key blocking** — records sharing a blocking key (e.g. first letter
  of the name + zip prefix) are candidates; exact and fast but misses
  pairs whose keys were corrupted;
* **sorted-neighborhood** — sort records by a key and propose every
  pair within a sliding window; tolerant to small key differences at
  the cost of more candidates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Set, Tuple

from respdi.errors import SpecificationError
from respdi.table import Table

Pair = Tuple[int, int]
KeyFunction = Callable[[dict], Hashable]


def _normalize_pair(i: int, j: int) -> Pair:
    return (i, j) if i < j else (j, i)


def key_blocking(table: Table, key_function: KeyFunction) -> Set[Pair]:
    """All within-block pairs for blocks induced by *key_function*.

    Records whose key is ``None`` are not blocked with anything.
    """
    blocks: Dict[Hashable, List[int]] = defaultdict(list)
    names = table.column_names
    for i, row in enumerate(table.iter_rows()):
        key = key_function(dict(zip(names, row)))
        if key is not None:
            blocks[key].append(i)
    pairs: Set[Pair] = set()
    for members in blocks.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs.add(_normalize_pair(members[a], members[b]))
    return pairs


def sorted_neighborhood_blocking(
    table: Table, key_function: KeyFunction, window: int = 5
) -> Set[Pair]:
    """Pairs within a sliding *window* after sorting by the key."""
    if window < 2:
        raise SpecificationError("window must be >= 2")
    names = table.column_names
    keyed = [
        (key_function(dict(zip(names, row))), i)
        for i, row in enumerate(table.iter_rows())
    ]
    keyed = [(key, i) for key, i in keyed if key is not None]
    keyed.sort(key=lambda item: repr(item[0]))
    order = [i for _, i in keyed]
    pairs: Set[Pair] = set()
    for position in range(len(order)):
        for offset in range(1, window):
            if position + offset >= len(order):
                break
            pairs.add(_normalize_pair(order[position], order[position + offset]))
    return pairs


@dataclass(frozen=True)
class BlockingStats:
    """Quality/efficiency summary of a blocking scheme."""

    candidate_pairs: int
    total_pairs: int
    true_pairs: int
    true_pairs_retained: int

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the quadratic pair space pruned (higher = cheaper)."""
        if self.total_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / self.total_pairs

    @property
    def pair_recall(self) -> float:
        """Fraction of true duplicate pairs surviving blocking."""
        if self.true_pairs == 0:
            return 1.0
        return self.true_pairs_retained / self.true_pairs


def blocking_stats(
    table: Table, candidates: Set[Pair], entity_column: str
) -> BlockingStats:
    """Evaluate *candidates* against ground-truth entity ids."""
    table.schema.require([entity_column])
    entities = table.column(entity_column)
    n = len(table)
    true_pairs: Set[Pair] = set()
    by_entity: Dict[Hashable, List[int]] = defaultdict(list)
    for i in range(n):
        if entities[i] is not None:
            by_entity[entities[i]].append(i)
    for members in by_entity.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                true_pairs.add(_normalize_pair(members[a], members[b]))
    return BlockingStats(
        candidate_pairs=len(candidates),
        total_pairs=n * (n - 1) // 2,
        true_pairs=len(true_pairs),
        true_pairs_retained=len(true_pairs & candidates),
    )
