"""Linkage quality, overall and per group — the fairness-aware ER audit.

Pairwise evaluation against ground-truth entity ids: precision and
recall over duplicate pairs.  The group-aware part attributes each true
pair to the group of its records (pairs spanning groups count toward
both) and reports per-group recall: **if ER misses minority duplicates
more often, the deduplicated data inherits that bias** — the §5 concern
made measurable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from respdi.errors import SpecificationError
from respdi.table import Table

Pair = Tuple[int, int]


def _true_pairs(table: Table, entity_column: str) -> Set[Pair]:
    entities = table.column(entity_column)
    by_entity: Dict[Hashable, List[int]] = defaultdict(list)
    for i in range(len(table)):
        if entities[i] is not None:
            by_entity[entities[i]].append(i)
    pairs: Set[Pair] = set()
    for members in by_entity.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs.add((members[a], members[b]))
    return pairs


@dataclass(frozen=True)
class LinkageQualityReport:
    """Pairwise linkage quality with per-group recall."""

    precision: float
    recall: float
    true_pairs: int
    predicted_pairs: int
    group_recall: Dict[Hashable, float]
    group_true_pairs: Dict[Hashable, int]

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @property
    def recall_parity_difference(self) -> float:
        """max - min per-group recall; >0 means ER serves groups unequally."""
        if len(self.group_recall) < 2:
            return 0.0
        return max(self.group_recall.values()) - min(self.group_recall.values())

    @property
    def worst_group(self) -> Optional[Hashable]:
        if not self.group_recall:
            return None
        return min(
            self.group_recall, key=lambda g: (self.group_recall[g], repr(g))
        )


def evaluate_linkage(
    table: Table,
    predicted: Set[Pair],
    entity_column: str,
    group_columns: Sequence[str] = (),
) -> LinkageQualityReport:
    """Evaluate *predicted* match pairs against ground-truth entity ids."""
    table.schema.require([entity_column] + list(group_columns))
    truth = _true_pairs(table, entity_column)
    predicted = {(min(i, j), max(i, j)) for i, j in predicted}
    for i, j in predicted:
        if not (0 <= i < len(table) and 0 <= j < len(table)):
            raise SpecificationError(f"predicted pair {(i, j)} out of range")
    hits = predicted & truth
    precision = len(hits) / len(predicted) if predicted else 1.0
    recall = len(hits) / len(truth) if truth else 1.0

    group_recall: Dict[Hashable, float] = {}
    group_true: Dict[Hashable, int] = {}
    if group_columns:
        arrays = [table.column(name) for name in group_columns]

        def group_of(i: int) -> Tuple[Hashable, ...]:
            return tuple(array[i] for array in arrays)

        found: Dict[Hashable, int] = defaultdict(int)
        total: Dict[Hashable, int] = defaultdict(int)
        for pair in truth:
            groups = {group_of(pair[0]), group_of(pair[1])}
            for group in groups:
                total[group] += 1
                if pair in hits:
                    found[group] += 1
        group_true = dict(total)
        group_recall = {
            group: found[group] / count for group, count in total.items()
        }
    return LinkageQualityReport(
        precision=precision,
        recall=recall,
        true_pairs=len(truth),
        predicted_pairs=len(predicted),
        group_recall=group_recall,
        group_true_pairs=group_true,
    )
