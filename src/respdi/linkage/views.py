"""Multi-strength matcher views: Exact, Normalized, Fuzzy.

The paper's §2 argues that representation is decided *by the pipeline
itself*: which matcher strength a tenant picks changes who gets linked —
and therefore who counts as covered downstream.  This module makes that
choice a first-class, measurable knob.  One interface, three strengths:

* **Exact** — raw key equality.  Two records link iff their key tuples
  are byte-equal.  Free, precise, and blind to every transcription
  artifact (case, punctuation, token order, typos).
* **Normalized** — equality after canonicalization
  (:func:`canonicalize`: casefold, diacritic stripping, whitespace and
  punctuation collapse, token sort).  Recovers formatting variants;
  still blind to typos and nicknames.
* **Fuzzy** — similarity-thresholded matching over blocked candidate
  pairs (reusing :class:`~respdi.linkage.matching.RecordMatcher`),
  closed transitively via single-link clustering.  Recovers typos at
  the cost of compute and precision risk.

The strengths are **nested by construction**: equal raw keys imply
equal canonical keys (canonicalization is a function), and the fuzzy
view seeds its match graph with the normalized view's edges before
adding similarity edges, so for any table::

    ExactView.links ⊆ NormalizedView.links ⊆ FuzzyView.links

A link set is the *transitive closure* of the pairwise decisions — all
within-cluster pairs — so nesting of edges yields nesting of link sets,
and the monotonicity is testable per request, not just on average.
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass, field
from typing import (
    Callable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from respdi import obs
from respdi.errors import SpecificationError
from respdi.linkage.blocking import key_blocking, sorted_neighborhood_blocking
from respdi.linkage.matching import (
    FieldComparator,
    RecordMatcher,
    cluster_matches,
)
from respdi.linkage.similarity import jaro_winkler_similarity
from respdi.parallel import ExecutionContext
from respdi.table import Table

Pair = Tuple[int, int]

#: The matcher strengths, weakest first.  Every consumer that ranks or
#: steps through strengths (the evaluation harness, the CLI, the serve
#: path) iterates this tuple, so the order is defined exactly once.
STRENGTH_ORDER: Tuple[str, ...] = ("exact", "normalized", "fuzzy")


def canonicalize(value: Optional[object]) -> Optional[str]:
    """Canonical key form: the Normalized view's equality domain.

    Casefolds, strips diacritics (NFKD decomposition, combining marks
    dropped), maps every non-alphanumeric character to a space, collapses
    whitespace, and sorts the remaining tokens — so ``"Núñez, Ana"`` and
    ``"ana nunez"`` canonicalize identically.  ``None`` stays ``None``
    (an unrecorded key is evidence of nothing and never links).

    The transform is idempotent — ``canonicalize(canonicalize(x)) ==
    canonicalize(x)`` — which the property suite enforces; equality of
    canonical forms is therefore a genuine equivalence relation.
    """
    if value is None:
        return None
    text = str(value)
    # One pass can expose new decomposables (a casefold may produce a
    # precomposed character); iterate to the fixpoint so the result is
    # idempotent by construction.  Two passes settle every practical
    # input; the bound is defensive.
    for _ in range(4):
        decomposed = unicodedata.normalize("NFKD", text)
        stripped = "".join(
            ch for ch in decomposed if not unicodedata.combining(ch)
        )
        folded = stripped.casefold()
        spaced = "".join(ch if ch.isalnum() else " " for ch in folded)
        result = " ".join(sorted(spaced.split()))
        if result == text:
            break
        text = result
    return text


@dataclass(frozen=True)
class MatcherLinks:
    """One view's verdict on one table: the transitively closed link set.

    ``pairs`` holds every within-cluster pair ``(i, j)`` with ``i < j``;
    ``clusters`` the connected components (singletons included, sorted
    by smallest member) — the same shape
    :func:`~respdi.linkage.matching.cluster_matches` produces.
    """

    strength: str
    n_records: int
    pairs: frozenset = field(default_factory=frozenset)
    clusters: Tuple[Tuple[int, ...], ...] = ()

    @property
    def num_links(self) -> int:
        return len(self.pairs)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def sorted_pairs(self) -> List[Pair]:
        """The link set as a sorted list — the deterministic render form."""
        return sorted(self.pairs)


def _closure(strength: str, n_records: int, edges: Set[Pair]) -> MatcherLinks:
    """Close *edges* transitively into a :class:`MatcherLinks`."""
    clusters = cluster_matches(n_records, edges)
    pairs: Set[Pair] = set()
    for members in clusters:
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs.add((members[a], members[b]))
    return MatcherLinks(
        strength=strength,
        n_records=n_records,
        pairs=frozenset(pairs),
        clusters=tuple(tuple(members) for members in clusters),
    )


class _RawKey:
    """Blocking key: the raw key tuple (picklable, hashseed-free)."""

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)

    def __call__(self, row: dict) -> Optional[Tuple]:
        key = tuple(row.get(column) for column in self.columns)
        if any(part is None for part in key):
            return None
        return tuple(str(part) for part in key)


class _CanonicalKey:
    """Blocking key: the canonicalized key tuple."""

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)

    def __call__(self, row: dict) -> Optional[Tuple]:
        key = tuple(canonicalize(row.get(column)) for column in self.columns)
        if any(part is None for part in key):
            return None
        return key


class CanonicalSimilarity:
    """Similarity over canonical forms (module-level, hence picklable).

    Wraps a raw string similarity so the fuzzy view scores what the
    normalized view equates: ``sim(canonicalize(a), canonicalize(b))``.
    Identical canonical forms score exactly 1.0 regardless of the
    wrapped function, keeping the fuzzy threshold semantics aligned
    with the normalized view for any threshold <= 1.
    """

    __slots__ = ("similarity",)

    def __init__(
        self, similarity: Callable[[Optional[str], Optional[str]], float]
    ) -> None:
        self.similarity = similarity

    def __call__(self, a: object, b: object) -> float:
        ca = canonicalize(a)
        cb = canonicalize(b)
        if ca is None or cb is None:
            return 0.0
        if ca == cb:
            return 1.0
        return float(self.similarity(ca, cb))


class MatcherView:
    """One matcher strength behind a uniform interface.

    Subclasses implement :meth:`_edges` — the pairwise decisions — and
    inherit :meth:`link`, which closes them transitively and reports the
    result as a :class:`MatcherLinks`.
    """

    strength: str = "abstract"

    def __init__(self, key_columns: Sequence[str]) -> None:
        if not key_columns:
            raise SpecificationError("a matcher view needs key columns")
        self.key_columns: Tuple[str, ...] = tuple(key_columns)

    def _edges(
        self,
        table: Table,
        context: Optional[ExecutionContext],
        n_jobs: Optional[int],
    ) -> Set[Pair]:
        raise NotImplementedError

    def link(
        self,
        table: Table,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> MatcherLinks:
        """Link *table*'s records at this view's strength."""
        table.schema.require(list(self.key_columns))
        with obs.trace(
            "linkage.views.link", strength=self.strength, records=len(table)
        ):
            edges = self._edges(table, context, n_jobs)
            links = _closure(self.strength, len(table), edges)
        obs.inc(f"linkage.views.{self.strength}.links", links.num_links)
        return links


class ExactView(MatcherView):
    """Raw key equality: the strictest (and cheapest) strength."""

    strength = "exact"

    def _edges(self, table, context, n_jobs):
        return key_blocking(table, _RawKey(self.key_columns))


class NormalizedView(MatcherView):
    """Equality after :func:`canonicalize` — formatting-proof linking."""

    strength = "normalized"

    def _edges(self, table, context, n_jobs):
        return key_blocking(table, _CanonicalKey(self.key_columns))


class FuzzyView(MatcherView):
    """Similarity-thresholded single-link clustering over blocked pairs.

    Candidate pairs come from two sources whose union is the match
    graph's edge set:

    1. the **normalized seed** — every canonical-equality pair (so the
       fuzzy view can never un-link what normalization links, the
       containment guarantee);
    2. **sorted-neighborhood blocking** over the canonical key, scored
       by a :class:`~respdi.linkage.matching.RecordMatcher` whose
       comparators default to canonical Jaro-Winkler per key column;
       pairs scoring at or above *threshold* become edges.

    Scoring fans out over :mod:`respdi.parallel` (the matcher chunks
    pairs deterministically), so serial and threaded runs produce
    byte-identical link sets.
    """

    strength = "fuzzy"

    def __init__(
        self,
        key_columns: Sequence[str],
        threshold: float = 0.85,
        window: int = 8,
        comparators: Optional[Sequence[FieldComparator]] = None,
    ) -> None:
        super().__init__(key_columns)
        if window < 2:
            raise SpecificationError("window must be >= 2")
        self.window = int(window)
        if comparators is None:
            comparators = [
                FieldComparator(
                    column=column,
                    similarity=CanonicalSimilarity(jaro_winkler_similarity),
                )
                for column in self.key_columns
            ]
        self.matcher = RecordMatcher(list(comparators), threshold=threshold)

    @property
    def threshold(self) -> float:
        return self.matcher.threshold

    def _edges(self, table, context, n_jobs):
        seed = key_blocking(table, _CanonicalKey(self.key_columns))
        candidates = sorted_neighborhood_blocking(
            table, _CanonicalKey(self.key_columns), window=self.window
        )
        to_score = candidates - seed
        edges: Set[Pair] = set(seed)
        if to_score:
            result = self.matcher.match(
                table, to_score, context=context, n_jobs=n_jobs
            )
            edges |= result.matches
        return edges


def build_view(
    strength: str,
    key_columns: Sequence[str],
    threshold: float = 0.85,
    window: int = 8,
    comparators: Optional[Sequence[FieldComparator]] = None,
) -> MatcherView:
    """Construct the view for *strength* (``exact|normalized|fuzzy``).

    The single factory every entry point (pipeline, serve path, CLI,
    harness) routes through, so a strength name means the same matcher
    everywhere — the precondition for the serve-path differential.
    """
    if strength == "exact":
        return ExactView(key_columns)
    if strength == "normalized":
        return NormalizedView(key_columns)
    if strength == "fuzzy":
        return FuzzyView(
            key_columns,
            threshold=threshold,
            window=window,
            comparators=comparators,
        )
    raise SpecificationError(
        f"unknown match strength {strength!r}; pick one of "
        f"{', '.join(STRENGTH_ORDER)}"
    )
