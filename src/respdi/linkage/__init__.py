"""Entity resolution with group-aware evaluation (tutorial §5).

The tutorial's §5 flags entity resolution as a cleaning task whose
errors can be *unequally distributed*: "since the bias in these external
sources can potentially introduce bias in the linked data, fairness-aware
measures can potentially pinpoint the root cause of bias in the cleaning
process."  This package provides a classical ER pipeline plus exactly
those measures:

* :mod:`respdi.linkage.similarity` — string and numeric comparators
  (Levenshtein, Jaro, Jaro-Winkler, token Jaccard);
* :mod:`respdi.linkage.blocking` — key blocking and sorted-neighborhood
  blocking to prune the quadratic pair space;
* :mod:`respdi.linkage.matching` — weighted field scoring, thresholded
  match decisions, union-find clustering, and deduplication;
* :mod:`respdi.linkage.evaluation` — pairwise precision/recall against
  ground truth, **per-group recall** and the linkage parity difference
  (does ER miss minority duplicates more often?);
* :mod:`respdi.linkage.views` — the multi-strength matcher views
  (Exact / Normalized / Fuzzy behind one :class:`MatcherView`
  interface), nested by construction;
* :mod:`respdi.linkage.strength_eval` — the gold-set harness comparing
  strengths: precision/recall, per-group entity coverage, and
  **FuzzyGain** (coverage recovered by each strength step);
* :mod:`respdi.datagen.duplicates` — dirty-duplicate generation with
  group-dependent corruption rates, the controlled setting in which the
  fairness measures are exercised.
"""

from respdi.linkage.blocking import (
    blocking_stats,
    key_blocking,
    sorted_neighborhood_blocking,
)
from respdi.linkage.evaluation import LinkageQualityReport, evaluate_linkage
from respdi.linkage.matching import (
    FieldComparator,
    MatchResult,
    RecordMatcher,
    cluster_matches,
    deduplicate,
)
from respdi.linkage.similarity import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    numeric_similarity,
    token_jaccard,
)
from respdi.linkage.strength_eval import (
    StrengthEvalReport,
    ViewEvaluation,
    evaluate_strengths,
)
from respdi.linkage.views import (
    STRENGTH_ORDER,
    CanonicalSimilarity,
    ExactView,
    FuzzyView,
    MatcherLinks,
    MatcherView,
    NormalizedView,
    build_view,
    canonicalize,
)

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "token_jaccard",
    "numeric_similarity",
    "key_blocking",
    "sorted_neighborhood_blocking",
    "blocking_stats",
    "FieldComparator",
    "RecordMatcher",
    "MatchResult",
    "cluster_matches",
    "deduplicate",
    "LinkageQualityReport",
    "evaluate_linkage",
    "STRENGTH_ORDER",
    "canonicalize",
    "CanonicalSimilarity",
    "MatcherView",
    "MatcherLinks",
    "ExactView",
    "NormalizedView",
    "FuzzyView",
    "build_view",
    "ViewEvaluation",
    "StrengthEvalReport",
    "evaluate_strengths",
]
