"""Weighted field scoring, match decisions, clustering, deduplication."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from respdi import obs
from respdi.errors import SpecificationError
from respdi.parallel import ExecutionContext, map_chunked
from respdi.table import Table

Pair = Tuple[int, int]


@dataclass(frozen=True)
class FieldComparator:
    """One field's contribution to the match score."""

    column: str
    similarity: Callable[[object, object], float]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SpecificationError("comparator weight must be positive")


@dataclass
class MatchResult:
    """Scored candidate pairs and the accepted matches."""

    scores: Dict[Pair, float]
    matches: Set[Pair]
    threshold: float

    @property
    def num_compared(self) -> int:
        return len(self.scores)


class RecordMatcher:
    """Scores candidate pairs as the weighted mean of field similarities
    and accepts pairs above a threshold."""

    def __init__(
        self, comparators: Sequence[FieldComparator], threshold: float = 0.85
    ) -> None:
        if not comparators:
            raise SpecificationError("need at least one field comparator")
        if not 0.0 < threshold <= 1.0:
            raise SpecificationError("threshold must be in (0, 1]")
        self.comparators = list(comparators)
        self.threshold = threshold
        self._total_weight = sum(c.weight for c in self.comparators)

    def score_pair(self, row_a: dict, row_b: dict) -> float:
        total = 0.0
        for comparator in self.comparators:
            value_a = row_a.get(comparator.column)
            value_b = row_b.get(comparator.column)
            total += comparator.weight * float(
                comparator.similarity(value_a, value_b)
            )
        return total / self._total_weight

    def match(
        self,
        table: Table,
        candidates: Set[Pair],
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> MatchResult:
        """Score every candidate pair; accept those above the threshold.

        Pairs are scored in deterministic sorted order, chunked under the
        resolved :class:`~respdi.parallel.ExecutionContext`; every chunk
        goes through :meth:`score_pair` (the serial code path), so scores
        and matches are identical for any backend.  For the
        ``processes`` backend the field similarity functions must be
        picklable — if not, the engine falls back to serial scoring.
        """
        for comparator in self.comparators:
            table.schema.require([comparator.column])
        with obs.trace("linkage.matching.match", candidates=len(candidates)):
            rows = table.to_dicts()
            ordered = sorted(candidates)
            scored = map_chunked(
                _PairScorer(self, rows),
                ordered,
                context=context,
                n_jobs=n_jobs,
                label="linkage.matching",
            )
            scores: Dict[Pair, float] = {}
            matches: Set[Pair] = set()
            for pair, score in zip(ordered, scored):
                scores[pair] = score
                if score >= self.threshold:
                    matches.add(pair)
        obs.inc("linkage.matching.pairs_scored", len(scores))
        obs.inc("linkage.matching.matches", len(matches))
        return MatchResult(scores=scores, matches=matches, threshold=self.threshold)


class _PairScorer:
    """Scores one candidate pair against a fixed row list.

    Module-level (picklable for the ``processes`` backend) and a thin
    wrapper over :meth:`RecordMatcher.score_pair`, so parallel scores are
    produced by exactly the serial arithmetic.
    """

    __slots__ = ("matcher", "rows")

    def __init__(self, matcher: RecordMatcher, rows: List[dict]) -> None:
        self.matcher = matcher
        self.rows = rows

    def __call__(self, pair: Pair) -> float:
        i, j = pair
        return self.matcher.score_pair(self.rows[i], self.rows[j])


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def cluster_matches(n_records: int, matches: Set[Pair]) -> List[List[int]]:
    """Connected components (transitive closure) of the match graph.

    Returns clusters sorted by their smallest member; singletons included.
    """
    if n_records < 0:
        raise SpecificationError("n_records must be non-negative")
    uf = _UnionFind(n_records)
    for i, j in matches:
        if not (0 <= i < n_records and 0 <= j < n_records):
            raise SpecificationError(f"match pair {(i, j)} out of range")
        uf.union(i, j)
    by_root: Dict[int, List[int]] = {}
    for i in range(n_records):
        by_root.setdefault(uf.find(i), []).append(i)
    return [sorted(members) for _, members in sorted(by_root.items())]


def deduplicate(
    table: Table,
    matches: Set[Pair],
    keep: str = "most_complete",
) -> Table:
    """One survivor row per match cluster.

    ``keep`` is ``"first"`` (smallest index) or ``"most_complete"``
    (fewest missing values; ties to the smallest index) — the canonical
    survivorship rules.
    """
    if keep not in ("first", "most_complete"):
        raise SpecificationError(f"unknown survivorship rule {keep!r}")
    clusters = cluster_matches(len(table), matches)
    if keep == "first":
        survivors = [cluster[0] for cluster in clusters]
    else:
        missing_counts = [0] * len(table)
        for column in table.column_names:
            mask = table.missing_mask(column)
            for i in range(len(table)):
                if mask[i]:
                    missing_counts[i] += 1
        survivors = [
            min(cluster, key=lambda i: (missing_counts[i], i))
            for cluster in clusters
        ]
    return table.take(sorted(survivors))
