"""NumPy classifiers: logistic regression, Gaussian naive Bayes, kNN.

All models share ``fit(X, y, sample_weight=None)`` /
``predict_proba(X)`` / ``predict(X)``.  They are deliberately small —
the experiments need a *consistent* learner whose group behaviour
reflects the data it was given, not state-of-the-art accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from respdi.errors import EmptyInputError, NotFittedError, SpecificationError


def _validate_xy(X: np.ndarray, y: np.ndarray, sample_weight) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise SpecificationError("X must be a 2-D matrix")
    if len(X) != len(y):
        raise SpecificationError(f"{len(X)} rows vs {len(y)} labels")
    if len(y) == 0:
        raise EmptyInputError("cannot fit on zero rows")
    if not set(np.unique(y).tolist()) <= {0, 1}:
        raise SpecificationError("labels must be binary 0/1")
    if sample_weight is None:
        return np.ones(len(y))
    sample_weight = np.asarray(sample_weight, dtype=float)
    if sample_weight.shape != (len(y),):
        raise SpecificationError("sample_weight must have one entry per row")
    if (sample_weight < 0).any() or sample_weight.sum() <= 0:
        raise SpecificationError("sample weights must be non-negative, not all zero")
    return sample_weight


class LogisticRegression:
    """L2-regularized logistic regression fitted by gradient descent with
    adaptive step size (halving on loss increase)."""

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 500,
        tol: float = 1e-6,
    ) -> None:
        if l2 < 0:
            raise SpecificationError("l2 must be non-negative")
        if max_iter < 1:
            raise SpecificationError("max_iter must be >= 1")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))

    def _loss(self, Xb: np.ndarray, y: np.ndarray, w: np.ndarray, weights: np.ndarray) -> float:
        p = self._sigmoid(Xb @ w)
        eps = 1e-12
        ll = weights * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
        return float(-ll.sum() / weights.sum() + 0.5 * self.l2 * (w[1:] @ w[1:]))

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "LogisticRegression":
        weights = _validate_xy(X, y, sample_weight)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        Xb = np.column_stack([np.ones(len(X)), X])
        w = np.zeros(Xb.shape[1])
        step = self.learning_rate
        loss = self._loss(Xb, y, w, weights)
        for _ in range(self.max_iter):
            p = self._sigmoid(Xb @ w)
            gradient = Xb.T @ (weights * (p - y)) / weights.sum()
            gradient[1:] += self.l2 * w[1:]
            candidate = w - step * gradient
            candidate_loss = self._loss(Xb, y, candidate, weights)
            # Halve the step until the loss improves (or give up the step).
            halvings = 0
            while candidate_loss > loss and halvings < 30:
                step *= 0.5
                halvings += 1
                candidate = w - step * gradient
                candidate_loss = self._loss(Xb, y, candidate, weights)
            if abs(loss - candidate_loss) < self.tol:
                w = candidate
                break
            w = candidate
            loss = candidate_loss
            step *= 1.1  # gentle re-growth after successful steps
        self.intercept_ = float(w[0])
        self.coef_ = w[1:]
        return self

    def _require_fitted(self) -> None:
        if self.coef_ is None:
            raise NotFittedError("LogisticRegression is not fitted")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)


class GaussianNaiveBayes:
    """Gaussian naive Bayes with weighted class priors and moments."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self._fitted = False

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "GaussianNaiveBayes":
        weights = _validate_xy(X, y, sample_weight)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        self._classes = np.array([0, 1])
        self._priors = np.empty(2)
        self._means = np.empty((2, X.shape[1]))
        self._vars = np.empty((2, X.shape[1]))
        total_weight = weights.sum()
        overall_var = np.average(
            (X - np.average(X, axis=0, weights=weights)) ** 2,
            axis=0,
            weights=weights,
        )
        for c in (0, 1):
            mask = y == c
            class_weight = weights[mask].sum()
            if class_weight <= 0:
                # Degenerate single-class training: near-zero prior with
                # uninformative moments keeps prediction well-defined.
                self._priors[c] = 1e-12
                self._means[c] = X.mean(axis=0)
                self._vars[c] = overall_var + 1.0
                continue
            self._priors[c] = class_weight / total_weight
            self._means[c] = np.average(X[mask], axis=0, weights=weights[mask])
            self._vars[c] = np.average(
                (X[mask] - self._means[c]) ** 2, axis=0, weights=weights[mask]
            )
        self._vars += self.var_smoothing * max(float(overall_var.max()), 1.0)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("GaussianNaiveBayes is not fitted")
        X = np.asarray(X, dtype=float)
        log_likelihood = np.empty((len(X), 2))
        for c in (0, 1):
            log_prior = np.log(self._priors[c])
            log_pdf = -0.5 * (
                np.log(2 * np.pi * self._vars[c])
                + (X - self._means[c]) ** 2 / self._vars[c]
            ).sum(axis=1)
            log_likelihood[:, c] = log_prior + log_pdf
        log_likelihood -= log_likelihood.max(axis=1, keepdims=True)
        likelihood = np.exp(log_likelihood)
        return likelihood[:, 1] / likelihood.sum(axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)


class KNNClassifier:
    """k-nearest-neighbors with optional sample weights as vote weights."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise SpecificationError("k must be >= 1")
        self.k = k
        self._fitted = False

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "KNNClassifier":
        weights = _validate_xy(X, y, sample_weight)
        self._X = np.asarray(X, dtype=float)
        self._y = np.asarray(y, dtype=int)
        self._weights = weights
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("KNNClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        k = min(self.k, len(self._X))
        out = np.empty(len(X))
        for i, point in enumerate(X):
            distances = np.linalg.norm(self._X - point, axis=1)
            nearest = np.argpartition(distances, k - 1)[:k]
            votes = self._weights[nearest]
            positive = votes[self._y[nearest] == 1].sum()
            out[i] = positive / votes.sum() if votes.sum() > 0 else 0.5
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)
