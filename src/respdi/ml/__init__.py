"""Minimal ML substrate for responsible-integration experiments.

The tutorial's downstream task is model training; the fairness effects
of integration decisions (what was collected, how it was cleaned) are
observed through a trained model's group metrics.  This package provides
just enough machinery to observe them — NumPy models, group-aware
metrics, and the classical pre-processing interventions — with no
external ML dependency.
"""

from respdi.ml.data import standardize_columns, table_to_xy, train_test_split
from respdi.ml.feature_selection import FeatureSelectionResult, select_features
from respdi.ml.interventions import (
    oversample_groups,
    reweighing_weights,
    smote_oversample,
)
from respdi.ml.metrics import (
    FairnessReport,
    accuracy,
    demographic_parity_difference,
    disparate_impact,
    equal_opportunity_difference,
    equalized_odds_difference,
    evaluate_fairness,
    group_accuracy,
    selection_rates,
)
from respdi.ml.models import GaussianNaiveBayes, KNNClassifier, LogisticRegression

__all__ = [
    "table_to_xy",
    "train_test_split",
    "standardize_columns",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "KNNClassifier",
    "accuracy",
    "group_accuracy",
    "selection_rates",
    "demographic_parity_difference",
    "disparate_impact",
    "equalized_odds_difference",
    "equal_opportunity_difference",
    "FairnessReport",
    "evaluate_fairness",
    "reweighing_weights",
    "oversample_groups",
    "smote_oversample",
    "FeatureSelectionResult",
    "select_features",
]
