"""Group fairness metrics over classifier outputs.

All metrics consume ``(y_true, y_pred, groups)`` arrays of equal length;
*groups* holds hashable group identifiers (typically tuples of sensitive
values).  Definitions follow Barocas, Hardt & Narayanan:

* demographic parity difference — spread of P(ŷ=1 | g);
* disparate impact — min over group pairs of selection-rate ratios;
* equal opportunity difference — spread of TPR;
* equalized odds difference — max of TPR spread and FPR spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError


def _check(y_true, y_pred, groups=None):
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise SpecificationError("y_true and y_pred must have equal length")
    if len(y_true) == 0:
        raise EmptyInputError("metrics require at least one prediction")
    if groups is not None and len(groups) != len(y_true):
        raise SpecificationError("groups must align with predictions")
    return y_true, y_pred


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Overall fraction of correct predictions."""
    y_true, y_pred = _check(y_true, y_pred)
    return float((y_true == y_pred).mean())


def _group_indices(groups: Sequence[Hashable]) -> Dict[Hashable, np.ndarray]:
    # NOTE: no np.asarray here — converting a sequence of tuples would
    # produce a 2-D array whose rows are unhashable.
    out: Dict[Hashable, list] = {}
    for i, g in enumerate(groups):
        out.setdefault(g, []).append(i)
    return {g: np.asarray(idx) for g, idx in out.items()}


def group_accuracy(
    y_true: Sequence[int], y_pred: Sequence[int], groups: Sequence[Hashable]
) -> Dict[Hashable, float]:
    """Per-group fraction of correct predictions."""
    y_true, y_pred = _check(y_true, y_pred, groups)
    return {
        g: float((y_true[idx] == y_pred[idx]).mean())
        for g, idx in _group_indices(groups).items()
    }


def selection_rates(
    y_pred: Sequence[int], groups: Sequence[Hashable]
) -> Dict[Hashable, float]:
    """P(ŷ = 1 | group) per group."""
    y_pred = np.asarray(y_pred, dtype=int)
    if len(y_pred) != len(groups):
        raise SpecificationError("groups must align with predictions")
    if len(y_pred) == 0:
        raise EmptyInputError("no predictions")
    return {
        g: float(y_pred[idx].mean()) for g, idx in _group_indices(groups).items()
    }


def demographic_parity_difference(
    y_pred: Sequence[int], groups: Sequence[Hashable]
) -> float:
    """max - min of per-group selection rates (0 = perfect parity)."""
    rates = selection_rates(y_pred, groups)
    return max(rates.values()) - min(rates.values())


def disparate_impact(y_pred: Sequence[int], groups: Sequence[Hashable]) -> float:
    """min selection rate / max selection rate (the 80%-rule ratio).

    Returns 1.0 when all rates are zero (no group is selected, hence no
    disparity among them), and 0.0 when some group is selected while
    another never is.
    """
    rates = selection_rates(y_pred, groups)
    largest = max(rates.values())
    smallest = min(rates.values())
    if largest == 0:
        return 1.0
    return smallest / largest


def _true_positive_rate(y_true, y_pred) -> float:
    positives = y_true == 1
    if not positives.any():
        return float("nan")
    return float(y_pred[positives].mean())


def _false_positive_rate(y_true, y_pred) -> float:
    negatives = y_true == 0
    if not negatives.any():
        return float("nan")
    return float(y_pred[negatives].mean())


def _nan_spread(values) -> float:
    clean = [v for v in values if not np.isnan(v)]
    if len(clean) < 2:
        return 0.0
    return max(clean) - min(clean)


def equal_opportunity_difference(
    y_true: Sequence[int], y_pred: Sequence[int], groups: Sequence[Hashable]
) -> float:
    """Spread of per-group true positive rates (groups without positives
    are excluded — their TPR is undefined)."""
    y_true, y_pred = _check(y_true, y_pred, groups)
    rates = [
        _true_positive_rate(y_true[idx], y_pred[idx])
        for idx in _group_indices(groups).values()
    ]
    return _nan_spread(rates)


def equalized_odds_difference(
    y_true: Sequence[int], y_pred: Sequence[int], groups: Sequence[Hashable]
) -> float:
    """max(TPR spread, FPR spread) across groups."""
    y_true, y_pred = _check(y_true, y_pred, groups)
    indices = _group_indices(groups)
    tpr = [_true_positive_rate(y_true[idx], y_pred[idx]) for idx in indices.values()]
    fpr = [_false_positive_rate(y_true[idx], y_pred[idx]) for idx in indices.values()]
    return max(_nan_spread(tpr), _nan_spread(fpr))


@dataclass(frozen=True)
class FairnessReport:
    """One-call summary of a classifier's group behaviour."""

    accuracy: float
    group_accuracy: Dict[Hashable, float]
    selection_rates: Dict[Hashable, float]
    demographic_parity_difference: float
    disparate_impact: float
    equal_opportunity_difference: float
    equalized_odds_difference: float

    @property
    def accuracy_parity_difference(self) -> float:
        values = self.group_accuracy.values()
        return max(values) - min(values)


def evaluate_fairness(
    y_true: Sequence[int], y_pred: Sequence[int], groups: Sequence[Hashable]
) -> FairnessReport:
    """Compute the full :class:`FairnessReport`."""
    return FairnessReport(
        accuracy=accuracy(y_true, y_pred),
        group_accuracy=group_accuracy(y_true, y_pred, groups),
        selection_rates=selection_rates(y_pred, groups),
        demographic_parity_difference=demographic_parity_difference(y_pred, groups),
        disparate_impact=disparate_impact(y_pred, groups),
        equal_opportunity_difference=equal_opportunity_difference(
            y_true, y_pred, groups
        ),
        equalized_odds_difference=equalized_odds_difference(y_true, y_pred, groups),
    )
