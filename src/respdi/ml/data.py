"""Table-to-matrix plumbing for the ML substrate."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


def table_to_xy(
    table: Table,
    feature_columns: Sequence[str],
    label_column: str,
    group_columns: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Extract ``(X, y, groups)`` from a table.

    * ``X`` — float matrix of the numeric feature columns;
    * ``y`` — binary labels (the numeric label column must hold 0/1);
    * ``groups`` — object array of group tuples, or ``None`` when no
      group columns are requested.

    Rows with a missing feature or label are dropped (models cannot
    consume them); callers who care about *which* rows vanish should
    impute first — that is the point of §2.4.
    """
    if not feature_columns:
        raise SpecificationError("need at least one feature column")
    table.schema.require(list(feature_columns) + [label_column])
    X = np.column_stack(
        [np.asarray(table.column(name), dtype=float) for name in feature_columns]
    )
    y = np.asarray(table.column(label_column), dtype=float)
    keep = ~np.isnan(X).any(axis=1) & ~np.isnan(y)
    if group_columns:
        table.schema.require(list(group_columns))
        group_arrays = [table.column(name) for name in group_columns]
        groups = np.empty(len(table), dtype=object)
        for i in range(len(table)):
            groups[i] = tuple(array[i] for array in group_arrays)
        groups = groups[keep]
    else:
        groups = None
    X = X[keep]
    y = y[keep]
    if len(y) == 0:
        raise EmptyInputError("no complete rows for model training")
    unique = set(np.unique(y).tolist())
    if not unique <= {0.0, 1.0}:
        raise SpecificationError(
            f"label column must be binary 0/1; saw values {sorted(unique)}"
        )
    return X, y.astype(int), groups


def train_test_split(
    table: Table, test_fraction: float = 0.3, rng: RngLike = None
) -> Tuple[Table, Table]:
    """Random row split into (train, test) tables."""
    if not 0.0 < test_fraction < 1.0:
        raise SpecificationError("test_fraction must be in (0, 1)")
    if len(table) < 2:
        raise EmptyInputError("need at least two rows to split")
    generator = ensure_rng(rng)
    permutation = generator.permutation(len(table))
    n_test = max(1, int(round(test_fraction * len(table))))
    n_test = min(n_test, len(table) - 1)
    test_idx = permutation[:n_test]
    train_idx = permutation[n_test:]
    return table.take(train_idx), table.take(test_idx)


def standardize_columns(
    table: Table, columns: Sequence[str], reference: Optional[Table] = None
) -> Table:
    """Z-score the given numeric columns (stats from *reference* when
    given, so test data uses training statistics)."""
    source = reference if reference is not None else table
    out = table
    for name in columns:
        values = np.asarray(source.column(name), dtype=float)
        observed = values[~np.isnan(values)]
        if observed.size == 0:
            raise EmptyInputError(f"column {name!r} has no observed values")
        mean = observed.mean()
        std = observed.std() or 1.0
        scaled = (np.asarray(table.column(name), dtype=float) - mean) / std
        out = out.with_column(name, "numeric", scaled)
    return out
