"""Bias-capped feature selection (tutorial §2.3).

"It is important to find attributes that are not biased (minimally
correlated with sensitive attributes) and at the same time informative
(highly correlated with the target attributes)."  For features already
in hand (the data-lake variant lives in
:meth:`respdi.discovery.DataLakeIndex.discover_features`), this module
selects a feature subset greedily by marginal informativeness, subject
to a hard cap on each feature's association with any sensitive
attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from respdi.errors import SpecificationError
from respdi.stats.dependence import correlation_ratio, pearson_correlation
from respdi.table import Table


@dataclass(frozen=True)
class FeatureSelectionResult:
    """Selected features and the evidence behind each decision."""

    selected: Tuple[str, ...]
    rejected_for_bias: Dict[str, float]
    informativeness: Dict[str, float]
    bias: Dict[str, float]


def select_features(
    table: Table,
    candidate_columns: Sequence[str],
    target_column: str,
    sensitive_columns: Sequence[str],
    max_bias: float = 0.3,
    max_features: int = 10,
    min_informativeness: float = 0.0,
    redundancy_penalty: float = 0.5,
) -> FeatureSelectionResult:
    """Greedy informative-but-unbiased feature selection.

    1. Features whose correlation ratio with *any* sensitive attribute
       exceeds ``max_bias`` are excluded outright (they are group
       proxies; no later step can unbias them).
    2. Remaining features are added greedily by marginal score:
       ``|corr(feature, target)| - redundancy_penalty * max |corr(feature,
       already_selected)|`` — the classical mRMR shape — until
       ``max_features`` or no candidate clears ``min_informativeness``.
    """
    if not candidate_columns:
        raise SpecificationError("need at least one candidate feature")
    if not 0.0 <= max_bias <= 1.0:
        raise SpecificationError("max_bias must be in [0, 1]")
    if max_features < 1:
        raise SpecificationError("max_features must be >= 1")
    table.schema.require(
        list(candidate_columns) + [target_column] + list(sensitive_columns)
    )
    target = np.asarray(table.column(target_column), dtype=float)

    def informativeness_of(column: str) -> float:
        values = np.asarray(table.column(column), dtype=float)
        keep = ~np.isnan(values) & ~np.isnan(target)
        if keep.sum() < 2:
            return 0.0
        return abs(pearson_correlation(values[keep], target[keep]))

    def bias_of(column: str) -> float:
        values = np.asarray(table.column(column), dtype=float)
        worst = 0.0
        for sensitive in sensitive_columns:
            s_values = table.column(sensitive)
            keep = ~np.isnan(values) & ~table.missing_mask(sensitive)
            if keep.sum() < 2:
                continue
            worst = max(
                worst, correlation_ratio(list(s_values[keep]), values[keep])
            )
        return worst

    informativeness = {c: informativeness_of(c) for c in candidate_columns}
    bias = {c: bias_of(c) for c in candidate_columns}
    rejected = {c: b for c, b in bias.items() if b > max_bias}
    pool = [c for c in candidate_columns if c not in rejected]

    selected: List[str] = []
    while pool and len(selected) < max_features:
        def marginal_score(column: str) -> float:
            redundancy = 0.0
            values = np.asarray(table.column(column), dtype=float)
            for chosen in selected:
                other = np.asarray(table.column(chosen), dtype=float)
                keep = ~np.isnan(values) & ~np.isnan(other)
                if keep.sum() >= 2:
                    redundancy = max(
                        redundancy,
                        abs(pearson_correlation(values[keep], other[keep])),
                    )
            return informativeness[column] - redundancy_penalty * redundancy

        best = max(pool, key=lambda c: (marginal_score(c), c))
        if informativeness[best] < min_informativeness:
            break
        if marginal_score(best) <= 0 and selected:
            break
        selected.append(best)
        pool.remove(best)

    return FeatureSelectionResult(
        selected=tuple(selected),
        rejected_for_bias=rejected,
        informativeness=informativeness,
        bias=bias,
    )
