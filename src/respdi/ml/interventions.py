"""Pre-processing fairness interventions (tutorial §2.2, §3.3).

These operate on the *data* (weights or rows), never on the model —
exactly the pre-processing stage the tutorial scopes itself to:

* :func:`reweighing_weights` — Kamiran & Calders reweighing: weight each
  (group, label) cell by ``P(group) * P(label) / P(group, label)`` so
  that group and label become statistically independent under the
  weighted empirical distribution;
* :func:`oversample_groups` — duplicate minority-group rows until every
  group reaches the size of the largest (Group Representation by
  brute force);
* :func:`smote_oversample` — SMOTE-style synthetic minority rows:
  interpolate between a minority row and one of its k nearest
  same-group neighbors (Chawla et al. 2002).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Sequence

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


def reweighing_weights(
    groups: Sequence[Hashable], labels: Sequence[int]
) -> np.ndarray:
    """Per-row weights making group and label independent when applied."""
    if len(groups) != len(labels):
        raise SpecificationError("groups and labels must align")
    n = len(groups)
    if n == 0:
        raise EmptyInputError("no rows to reweigh")
    labels = np.asarray(labels, dtype=int)
    group_counts = Counter(groups)
    label_counts = Counter(labels.tolist())
    cell_counts = Counter(zip(groups, labels.tolist()))
    weights = np.empty(n)
    for i, (g, y) in enumerate(zip(groups, labels.tolist())):
        expected = (group_counts[g] / n) * (label_counts[y] / n)
        observed = cell_counts[(g, y)] / n
        weights[i] = expected / observed
    return weights


def oversample_groups(
    table: Table,
    group_columns: Sequence[str],
    rng: RngLike = None,
) -> Table:
    """Duplicate rows of under-sized groups until all groups match the
    largest group's size (sampling duplicates uniformly within group)."""
    generator = ensure_rng(rng)
    indices = table.group_indices(list(group_columns))
    if not indices:
        raise EmptyInputError("table has no rows to oversample")
    target = max(len(idx) for idx in indices.values())
    take: List[int] = []
    for idx in indices.values():
        take.extend(idx.tolist())
        deficit = target - len(idx)
        if deficit > 0:
            extra = generator.choice(idx, size=deficit, replace=True)
            take.extend(int(i) for i in extra)
    return table.take(take).shuffle(generator)


def smote_oversample(
    table: Table,
    group_columns: Sequence[str],
    numeric_columns: Sequence[str],
    k: int = 5,
    rng: RngLike = None,
) -> Table:
    """SMOTE-style balancing: synthesize minority rows by interpolating
    numeric features between same-group nearest neighbors.

    Categorical columns of a synthetic row are copied from its seed row.
    Groups with a single member fall back to duplication (no neighbor to
    interpolate toward).
    """
    if k < 1:
        raise SpecificationError("k must be >= 1")
    if not numeric_columns:
        raise SpecificationError("SMOTE needs numeric columns to interpolate")
    table.schema.require(list(numeric_columns))
    generator = ensure_rng(rng)
    indices = table.group_indices(list(group_columns))
    target = max(len(idx) for idx in indices.values())
    features = np.column_stack(
        [np.asarray(table.column(name), dtype=float) for name in numeric_columns]
    )
    synthetic_rows: List[Dict[str, Hashable]] = []
    base_rows = table.to_dicts()
    for idx in indices.values():
        deficit = target - len(idx)
        if deficit <= 0:
            continue
        group_features = features[idx]
        for _ in range(deficit):
            seed_position = int(generator.integers(len(idx)))
            seed_index = int(idx[seed_position])
            new_row = dict(base_rows[seed_index])
            if len(idx) >= 2:
                distances = np.linalg.norm(
                    group_features - group_features[seed_position], axis=1
                )
                distances[seed_position] = np.inf
                n_neighbors = min(k, len(idx) - 1)
                neighbor_positions = np.argpartition(distances, n_neighbors - 1)[
                    :n_neighbors
                ]
                neighbor_position = int(
                    neighbor_positions[int(generator.integers(n_neighbors))]
                )
                alpha = float(generator.random())
                for j, name in enumerate(numeric_columns):
                    seed_value = group_features[seed_position, j]
                    neighbor_value = group_features[neighbor_position, j]
                    if np.isnan(seed_value) or np.isnan(neighbor_value):
                        continue
                    new_row[name] = float(
                        seed_value + alpha * (neighbor_value - seed_value)
                    )
            synthetic_rows.append(new_row)
    if not synthetic_rows:
        return table
    synthetic = Table.from_dicts(table.schema, synthetic_rows)
    return table.concat(synthetic).shuffle(generator)
