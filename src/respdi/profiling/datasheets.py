"""Datasheets for Datasets (Gebru et al., CACM 2021).

A datasheet documents a data set's motivation, composition, collection
process, preprocessing, recommended uses, distribution, and maintenance
— the §2.5 Scope-of-use Augmentation artifact.  Free-text sections are
caller-provided; composition statistics are auto-filled from the table
so the datasheet can never drift from the data it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from respdi.profiling.profiles import TableProfile, profile_table
from respdi.table import Table

#: The Gebru et al. section headings, in canonical order.
SECTIONS = (
    "motivation",
    "composition",
    "collection_process",
    "preprocessing",
    "uses",
    "distribution",
    "maintenance",
)


@dataclass
class Datasheet:
    """A filled datasheet.

    ``answers`` maps section name to a list of (question, answer) pairs;
    ``composition_profile`` holds the auto-computed statistics.
    """

    title: str
    answers: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    composition_profile: Optional[TableProfile] = None
    known_limitations: List[str] = field(default_factory=list)
    recommended_uses: List[str] = field(default_factory=list)
    discouraged_uses: List[str] = field(default_factory=list)

    def add_answer(self, section: str, question: str, answer: str) -> None:
        if section not in SECTIONS:
            raise ValueError(
                f"unknown section {section!r}; expected one of {SECTIONS}"
            )
        self.answers.setdefault(section, []).append((question, answer))

    def completed_sections(self) -> List[str]:
        return [s for s in SECTIONS if self.answers.get(s)]

    def is_complete(self, required: Sequence[str] = SECTIONS) -> bool:
        done = set(self.completed_sections())
        if self.composition_profile is not None:
            done.add("composition")
        return all(section in done for section in required)

    def render(self) -> str:
        """Markdown rendering."""
        lines: List[str] = [f"# Datasheet: {self.title}", ""]
        for section in SECTIONS:
            entries = self.answers.get(section, [])
            has_profile = section == "composition" and self.composition_profile
            if not entries and not has_profile:
                continue
            lines.append(f"## {section.replace('_', ' ').title()}")
            for question, answer in entries:
                lines.append(f"**{question}**")
                lines.append(answer)
                lines.append("")
            if has_profile:
                profile = self.composition_profile
                lines.append(f"- rows: {profile.row_count}")
                lines.append(
                    f"- complete rows: {profile.complete_row_fraction:.1%}"
                )
                for name, column in profile.columns.items():
                    detail = f"missing {column.missing_rate:.1%}, "
                    detail += f"{column.distinct_count} distinct"
                    lines.append(f"- `{name}` ({column.ctype}): {detail}")
                lines.append("")
        if self.known_limitations:
            lines.append("## Known Limitations")
            for item in self.known_limitations:
                lines.append(f"- {item}")
            lines.append("")
        if self.recommended_uses:
            lines.append("## Recommended Uses")
            for item in self.recommended_uses:
                lines.append(f"- {item}")
            lines.append("")
        if self.discouraged_uses:
            lines.append("## Discouraged Uses")
            for item in self.discouraged_uses:
                lines.append(f"- {item}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def build_datasheet(
    title: str,
    table: Table,
    motivation: str,
    collection_process: str,
    preprocessing: str = "none",
    recommended_uses: Optional[Sequence[str]] = None,
    discouraged_uses: Optional[Sequence[str]] = None,
    known_limitations: Optional[Sequence[str]] = None,
) -> Datasheet:
    """A datasheet with auto-filled composition and standard questions."""
    sheet = Datasheet(title=title)
    sheet.add_answer(
        "motivation", "For what purpose was the dataset created?", motivation
    )
    sheet.add_answer(
        "collection_process", "How was the data collected?", collection_process
    )
    sheet.add_answer(
        "preprocessing",
        "Was any preprocessing/cleaning/labeling done?",
        preprocessing,
    )
    sheet.composition_profile = profile_table(table)
    sheet.recommended_uses = list(recommended_uses or [])
    sheet.discouraged_uses = list(discouraged_uses or [])
    sheet.known_limitations = list(known_limitations or [])
    return sheet
