"""JSON export of transparency artifacts.

Nutritional labels, datasheets, and audit reports are only useful if
they travel with the data (§2.5).  These converters produce plain
JSON-serializable dictionaries — tuple keys become readable strings,
NumPy scalars become Python numbers — so artifacts can be persisted
next to a CSV export or attached to a catalog entry.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from respdi.profiling.datasheets import Datasheet
from respdi.profiling.labels import NutritionalLabel
from respdi.requirements.base import AuditReport


def _plain(value: Any) -> Any:
    """Recursively convert to JSON-serializable plain Python values."""
    if isinstance(value, dict):
        return {_key(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def label_to_dict(label: NutritionalLabel) -> Dict[str, Any]:
    """A :class:`NutritionalLabel` as a JSON-serializable dict."""
    profile = label.profile
    return _plain(
        {
            "rows": profile.row_count,
            "complete_row_fraction": profile.complete_row_fraction,
            "sensitive_columns": list(label.sensitive_columns),
            "target_column": label.target_column,
            "columns": {
                name: {
                    "type": column.ctype,
                    "missing_rate": column.missing_rate,
                    "distinct": column.distinct_count,
                }
                for name, column in profile.columns.items()
            },
            "feature_target_correlation": label.feature_target_correlation,
            "feature_sensitive_association": label.feature_sensitive_association,
            "sensitive_target_fds": [
                {"determinant": list(d), "dependent": dep, "violation_ratio": r}
                for d, dep, r in label.sensitive_target_fds
            ],
            "bias_rules": [str(rule) for rule in label.bias_rules],
            "uncovered_patterns": list(label.uncovered_patterns),
            "label_parity_by_attribute": label.label_parity_by_attribute,
            "attribute_diversity": label.attribute_diversity,
            "group_missing_rates": label.group_missing_rates,
        }
    )


def datasheet_to_dict(sheet: Datasheet) -> Dict[str, Any]:
    """A :class:`Datasheet` as a JSON-serializable dict."""
    out: Dict[str, Any] = {
        "title": sheet.title,
        "sections": {
            section: [
                {"question": question, "answer": answer}
                for question, answer in entries
            ]
            for section, entries in sheet.answers.items()
        },
        "known_limitations": list(sheet.known_limitations),
        "recommended_uses": list(sheet.recommended_uses),
        "discouraged_uses": list(sheet.discouraged_uses),
    }
    if sheet.composition_profile is not None:
        profile = sheet.composition_profile
        out["composition"] = _plain(
            {
                "rows": profile.row_count,
                "complete_row_fraction": profile.complete_row_fraction,
                "columns": {
                    name: {
                        "type": column.ctype,
                        "missing_rate": column.missing_rate,
                        "distinct": column.distinct_count,
                    }
                    for name, column in profile.columns.items()
                },
            }
        )
    return out


def audit_to_dict(audit: AuditReport) -> Dict[str, Any]:
    """An :class:`AuditReport` as a JSON-serializable dict."""
    return _plain(
        {
            "passed": audit.passed,
            "requirements": [
                {
                    "requirement": report.requirement,
                    "passed": report.passed,
                    "score": report.score,
                    "message": report.message,
                    "details": report.details,
                }
                for report in audit.reports
            ],
        }
    )


def dump_json(artifact: Any, path) -> None:
    """Serialize a label / datasheet / audit (or plain dict) to *path*."""
    if isinstance(artifact, NutritionalLabel):
        payload = label_to_dict(artifact)
    elif isinstance(artifact, Datasheet):
        payload = datasheet_to_dict(artifact)
    elif isinstance(artifact, AuditReport):
        payload = audit_to_dict(artifact)
    else:
        payload = _plain(artifact)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
