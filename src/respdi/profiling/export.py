"""JSON export of transparency artifacts.

Nutritional labels, datasheets, and audit reports are only useful if
they travel with the data (§2.5).  These converters produce plain
JSON-serializable dictionaries — tuple keys become readable strings,
NumPy scalars become Python numbers — so artifacts can be persisted
next to a CSV export or attached to a catalog entry.

Every exported artifact carries a ``schema_version`` so the loaders in
:mod:`respdi.profiling.load` can reject payloads written by a future,
incompatible exporter instead of silently misreading them.  Files are
written atomically (tmp + ``os.replace``): a crashed audit never leaves
a truncated label on disk.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from respdi._fsutil import atomic_write_text
from respdi.profiling.datasheets import Datasheet
from respdi.profiling.labels import NutritionalLabel
from respdi.profiling.profiles import TableProfile
from respdi.requirements.base import AuditReport

#: Version stamped into every exported artifact dict.  Bump when a field
#: changes meaning or shape incompatibly; loaders reject higher versions.
EXPORT_SCHEMA_VERSION = 1


def _plain(value: Any) -> Any:
    """Recursively convert to JSON-serializable plain Python values."""
    if isinstance(value, dict):
        return {_key(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def profile_to_dict(profile: TableProfile) -> Dict[str, Any]:
    """A :class:`TableProfile` as a JSON-serializable dict (lossless up to
    the string flattening of categorical top values)."""
    return _plain(
        {
            "rows": profile.row_count,
            "complete_row_fraction": profile.complete_row_fraction,
            "columns": {
                name: {
                    "type": column.ctype,
                    "missing": column.missing_count,
                    "missing_rate": column.missing_rate,
                    "distinct": column.distinct_count,
                    "min": column.minimum,
                    "max": column.maximum,
                    "mean": column.mean,
                    "std": column.std,
                    "top_values": [
                        [value, count] for value, count in column.top_values
                    ],
                }
                for name, column in profile.columns.items()
            },
        }
    )


def label_to_dict(label: NutritionalLabel) -> Dict[str, Any]:
    """A :class:`NutritionalLabel` as a JSON-serializable dict."""
    profile_payload = profile_to_dict(label.profile)
    return _plain(
        {
            "schema_version": EXPORT_SCHEMA_VERSION,
            "artifact": "nutritional_label",
            "rows": label.profile.row_count,
            "complete_row_fraction": label.profile.complete_row_fraction,
            "sensitive_columns": list(label.sensitive_columns),
            "target_column": label.target_column,
            "columns": profile_payload["columns"],
            "feature_target_correlation": label.feature_target_correlation,
            "feature_sensitive_association": label.feature_sensitive_association,
            "sensitive_target_fds": [
                {"determinant": list(d), "dependent": dep, "violation_ratio": r}
                for d, dep, r in label.sensitive_target_fds
            ],
            "bias_rules": [
                {
                    "antecedent_column": rule.antecedent_column,
                    "antecedent_value": rule.antecedent_value,
                    "consequent_column": rule.consequent_column,
                    "consequent_value": rule.consequent_value,
                    "support": rule.support,
                    "confidence": rule.confidence,
                    "lift": rule.lift,
                }
                for rule in label.bias_rules
            ],
            "uncovered_patterns": list(label.uncovered_patterns),
            "label_parity_by_attribute": label.label_parity_by_attribute,
            "attribute_diversity": label.attribute_diversity,
            "group_missing_rates": label.group_missing_rates,
        }
    )


def datasheet_to_dict(sheet: Datasheet) -> Dict[str, Any]:
    """A :class:`Datasheet` as a JSON-serializable dict."""
    out: Dict[str, Any] = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "artifact": "datasheet",
        "title": sheet.title,
        "sections": {
            section: [
                {"question": question, "answer": answer}
                for question, answer in entries
            ]
            for section, entries in sheet.answers.items()
        },
        "known_limitations": list(sheet.known_limitations),
        "recommended_uses": list(sheet.recommended_uses),
        "discouraged_uses": list(sheet.discouraged_uses),
    }
    if sheet.composition_profile is not None:
        out["composition"] = profile_to_dict(sheet.composition_profile)
    return out


def audit_to_dict(audit: AuditReport) -> Dict[str, Any]:
    """An :class:`AuditReport` as a JSON-serializable dict."""
    return _plain(
        {
            "schema_version": EXPORT_SCHEMA_VERSION,
            "artifact": "audit",
            "passed": audit.passed,
            "requirements": [
                {
                    "requirement": report.requirement,
                    "passed": report.passed,
                    "score": report.score,
                    "message": report.message,
                    "details": report.details,
                }
                for report in audit.reports
            ],
        }
    )


def dump_json(artifact: Any, path) -> None:
    """Serialize a label / datasheet / audit (or plain dict) to *path*.

    The write is atomic (tmp file + fsync + rename, shared with the
    catalog writer): readers never observe a truncated artifact.
    """
    if isinstance(artifact, NutritionalLabel):
        payload = label_to_dict(artifact)
    elif isinstance(artifact, Datasheet):
        payload = datasheet_to_dict(artifact)
    elif isinstance(artifact, AuditReport):
        payload = audit_to_dict(artifact)
    else:
        payload = _plain(artifact)
    # Insertion order is meaningful (e.g. profile columns render in
    # schema order) and deterministic; do not sort keys away.
    atomic_write_text(path, json.dumps(payload, indent=2))
