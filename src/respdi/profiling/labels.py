"""MithraLabel-style nutritional labels (Sun et al., CIKM 2019).

A nutritional label augments a classical profile with
fitness-for-responsible-use widgets.  Following the tutorial's
description of MithraLabel, the label includes:

* correlations between attributes (feature ↔ target, feature ↔
  sensitive) — the §2.3 informativeness/bias widget;
* functional dependencies from sensitive attributes to the target;
* association rules that capture bias;
* maximal uncovered patterns — the under-represented subgroups;
* per-sensitive-attribute demographic parity of the label and the most
  diverse attributes over demographic groups;
* per-group missingness (feeding the §2.4 concern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from respdi.coverage.mups import CoverageAnalyzer
from respdi.coverage.patterns import format_pattern
from respdi.errors import SpecificationError
from respdi.profiling.association import AssociationRule, mine_association_rules
from respdi.profiling.dependencies import find_functional_dependencies
from respdi.profiling.profiles import TableProfile, profile_table
from respdi.stats.dependence import correlation_ratio, entropy, pearson_correlation
from respdi.table import Table


@dataclass
class NutritionalLabel:
    """The assembled label (see :func:`build_nutritional_label`)."""

    profile: TableProfile
    sensitive_columns: Tuple[str, ...]
    target_column: Optional[str]
    feature_target_correlation: Dict[str, float]
    feature_sensitive_association: Dict[Tuple[str, str], float]
    sensitive_target_fds: List[Tuple[Tuple[str, ...], str, float]]
    bias_rules: List[AssociationRule]
    uncovered_patterns: List[str]
    label_parity_by_attribute: Dict[str, float]
    attribute_diversity: Dict[str, float]
    group_missing_rates: Dict[str, Dict[Hashable, float]]

    def render(self) -> str:
        """Human-readable multi-line label."""
        lines: List[str] = []
        lines.append(f"rows: {self.profile.row_count}")
        lines.append(
            f"complete rows: {self.profile.complete_row_fraction:.1%}"
        )
        if self.feature_target_correlation:
            lines.append("feature informativeness (|corr with target|):")
            for name, value in sorted(
                self.feature_target_correlation.items(), key=lambda kv: -abs(kv[1])
            ):
                lines.append(f"  {name}: {value:+.3f}")
        if self.feature_sensitive_association:
            lines.append("feature bias (association with sensitive attributes):")
            for (feature, sensitive), value in sorted(
                self.feature_sensitive_association.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"  {feature} ~ {sensitive}: {value:.3f}")
        if self.sensitive_target_fds:
            lines.append("WARNING functional dependencies sensitive -> target:")
            for determinant, dependent, ratio in self.sensitive_target_fds:
                lines.append(
                    f"  {determinant[0]} -> {dependent} (violations {ratio:.3f})"
                )
        if self.bias_rules:
            lines.append("bias-capturing association rules:")
            for rule in self.bias_rules[:10]:
                lines.append(f"  {rule}")
        if self.uncovered_patterns:
            lines.append("maximal uncovered patterns (under-represented groups):")
            for pattern in self.uncovered_patterns:
                lines.append(f"  {pattern}")
        if self.label_parity_by_attribute:
            lines.append("label demographic parity spread by sensitive attribute:")
            for name, value in sorted(self.label_parity_by_attribute.items()):
                lines.append(f"  {name}: {value:.3f}")
        if self.group_missing_rates:
            lines.append("per-group missing rates (max over columns):")
            for column, rates in sorted(self.group_missing_rates.items()):
                worst = max(rates.items(), key=lambda kv: kv[1])
                lines.append(
                    f"  {column}: worst group {worst[0]!r} at {worst[1]:.1%}"
                )
        return "\n".join(lines)


def build_nutritional_label(
    table: Table,
    sensitive_columns: Sequence[str],
    target_column: Optional[str] = None,
    coverage_threshold: int = 10,
    fd_tolerance: float = 0.05,
) -> NutritionalLabel:
    """Assemble a :class:`NutritionalLabel` for *table*."""
    sensitive_columns = tuple(sensitive_columns)
    if not sensitive_columns:
        raise SpecificationError("a label needs at least one sensitive column")
    table.schema.require(list(sensitive_columns))
    profile = profile_table(table)

    feature_columns = [
        name
        for name in table.schema.numeric_names
        if name != target_column
    ]

    feature_target_correlation: Dict[str, float] = {}
    if target_column is not None and table.schema[target_column].is_numeric:
        target = np.asarray(table.column(target_column), dtype=float)
        for name in feature_columns:
            values = np.asarray(table.column(name), dtype=float)
            keep = ~np.isnan(values) & ~np.isnan(target)
            if keep.sum() >= 2:
                feature_target_correlation[name] = pearson_correlation(
                    values[keep], target[keep]
                )

    feature_sensitive_association: Dict[Tuple[str, str], float] = {}
    for feature in feature_columns:
        values = np.asarray(table.column(feature), dtype=float)
        for sensitive in sensitive_columns:
            sensitive_values = table.column(sensitive)
            keep = ~np.isnan(values) & ~table.missing_mask(sensitive)
            if keep.sum() >= 2:
                feature_sensitive_association[(feature, sensitive)] = (
                    correlation_ratio(
                        list(sensitive_values[keep]), values[keep]
                    )
                )

    sensitive_target_fds: List[Tuple[Tuple[str, ...], str, float]] = []
    if target_column is not None:
        sensitive_target_fds = find_functional_dependencies(
            table, list(sensitive_columns), [target_column], tolerance=fd_tolerance
        )

    rule_columns = [
        name for name in table.schema.categorical_names
    ]
    bias_rules: List[AssociationRule] = []
    if len(rule_columns) >= 2:
        bias_rules = [
            rule
            for rule in mine_association_rules(table, rule_columns)
            if rule.antecedent_column in sensitive_columns
            or rule.consequent_column in sensitive_columns
        ]

    analyzer = CoverageAnalyzer(table, sensitive_columns, coverage_threshold)
    report = analyzer.mups()
    uncovered = [format_pattern(report.attributes, p) for p in report.mups]

    label_parity: Dict[str, float] = {}
    if target_column is not None and table.schema[target_column].is_numeric:
        target = np.asarray(table.column(target_column), dtype=float)
        for sensitive in sensitive_columns:
            rates = []
            for _, idx in table.group_indices([sensitive]).items():
                values = target[idx]
                values = values[~np.isnan(values)]
                if values.size:
                    rates.append(float(values.mean()))
            if len(rates) >= 2:
                label_parity[sensitive] = max(rates) - min(rates)

    diversity: Dict[str, float] = {
        name: entropy(list(table.column(name)[~table.missing_mask(name)]))
        if (~table.missing_mask(name)).any()
        else 0.0
        for name in sensitive_columns
    }

    group_missing: Dict[str, Dict[Hashable, float]] = {}
    for column in table.column_names:
        if column in sensitive_columns:
            continue
        rates: Dict[Hashable, float] = {}
        missing = table.missing_mask(column)
        for key, idx in table.group_indices(list(sensitive_columns)).items():
            rates[key] = float(missing[idx].mean())
        if any(rate > 0 for rate in rates.values()):
            group_missing[column] = rates

    return NutritionalLabel(
        profile=profile,
        sensitive_columns=sensitive_columns,
        target_column=target_column,
        feature_target_correlation=feature_target_correlation,
        feature_sensitive_association=feature_sensitive_association,
        sensitive_target_fds=sensitive_target_fds,
        bias_rules=bias_rules,
        uncovered_patterns=uncovered,
        label_parity_by_attribute=label_parity,
        attribute_diversity=diversity,
        group_missing_rates=group_missing,
    )
