"""Classical single-column and whole-table profiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from respdi.table import Table


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one column."""

    name: str
    ctype: str
    row_count: int
    missing_count: int
    distinct_count: int
    # numeric-only (None for categorical)
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    mean: Optional[float] = None
    std: Optional[float] = None
    # categorical-only
    top_values: Tuple[Tuple[Hashable, int], ...] = ()

    @property
    def missing_rate(self) -> float:
        return self.missing_count / self.row_count if self.row_count else 0.0

    @property
    def is_constant(self) -> bool:
        return self.distinct_count <= 1

    @property
    def is_candidate_key(self) -> bool:
        """Every present value distinct and nothing missing."""
        return (
            self.missing_count == 0
            and self.row_count > 0
            and self.distinct_count == self.row_count
        )


@dataclass(frozen=True)
class TableProfile:
    """Profiles for every column plus table-level facts."""

    row_count: int
    columns: Dict[str, ColumnProfile]

    def column(self, name: str) -> ColumnProfile:
        return self.columns[name]

    @property
    def complete_row_fraction(self) -> float:
        """Approximation from column missing rates is wrong in general;
        this value is computed exactly at build time and stored here."""
        return self._complete_fraction

    _complete_fraction: float = 0.0


def profile_column(table: Table, name: str, top_k: int = 10) -> ColumnProfile:
    """Profile one column of *table*."""
    spec = table.schema[name]
    missing = table.missing_mask(name)
    values = table.column(name)
    present = values[~missing]
    if spec.is_numeric:
        present = np.asarray(present, dtype=float)
        has_values = present.size > 0
        return ColumnProfile(
            name=name,
            ctype=spec.ctype.value,
            row_count=len(table),
            missing_count=int(missing.sum()),
            distinct_count=len(np.unique(present)) if has_values else 0,
            minimum=float(present.min()) if has_values else None,
            maximum=float(present.max()) if has_values else None,
            mean=float(present.mean()) if has_values else None,
            std=float(present.std()) if has_values else None,
        )
    counts = table.value_counts(name)
    top = tuple(
        sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:top_k]
    )
    return ColumnProfile(
        name=name,
        ctype=spec.ctype.value,
        row_count=len(table),
        missing_count=int(missing.sum()),
        distinct_count=len(counts),
        top_values=top,
    )


def profile_table(table: Table, top_k: int = 10) -> TableProfile:
    """Profile every column of *table*."""
    columns = {name: profile_column(table, name, top_k) for name in table.column_names}
    if len(table) == 0:
        complete = 0.0
    else:
        any_missing = np.zeros(len(table), dtype=bool)
        for name in table.column_names:
            any_missing |= table.missing_mask(name)
        complete = float((~any_missing).mean())
    profile = TableProfile(row_count=len(table), columns=columns)
    object.__setattr__(profile, "_complete_fraction", complete)
    return profile
