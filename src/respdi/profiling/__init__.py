"""Data profiling and transparency artifacts (tutorial §3.2, §2.5).

* :mod:`respdi.profiling.profiles` — classical column/table profiles
  (Abedjan et al.'s survey scope: counts, missingness, distincts,
  moments, frequent values);
* :mod:`respdi.profiling.dependencies` — exact and approximate
  functional dependencies (in particular sensitive → target FDs, one of
  MithraLabel's bias flags);
* :mod:`respdi.profiling.association` — one-antecedent association
  rules with support/confidence/lift (MithraLabel's bias-capture rules);
* :mod:`respdi.profiling.labels` — MithraLabel-style nutritional labels
  (Sun et al., CIKM 2019): fitness-for-responsible-use widgets including
  maximal uncovered patterns, feature bias/informativeness, and per-group
  missingness;
* :mod:`respdi.profiling.datasheets` — Datasheets for Datasets (Gebru
  et al., CACM 2021) with auto-filled composition statistics;
* :mod:`respdi.profiling.export` / :mod:`respdi.profiling.load` —
  versioned, atomically-written JSON round-tripping for labels,
  datasheets, and audit reports.
"""

from respdi.profiling.association import AssociationRule, mine_association_rules
from respdi.profiling.datasheets import Datasheet, build_datasheet
from respdi.profiling.dependencies import (
    fd_holds,
    fd_violation_ratio,
    find_functional_dependencies,
)
from respdi.profiling.export import (
    EXPORT_SCHEMA_VERSION,
    audit_to_dict,
    datasheet_to_dict,
    dump_json,
    label_to_dict,
    profile_to_dict,
)
from respdi.profiling.labels import NutritionalLabel, build_nutritional_label
from respdi.profiling.load import (
    dict_to_audit,
    dict_to_datasheet,
    dict_to_label,
    dict_to_profile,
    load_artifact,
    load_json,
)
from respdi.profiling.profiles import ColumnProfile, TableProfile, profile_table

__all__ = [
    "ColumnProfile",
    "TableProfile",
    "profile_table",
    "fd_holds",
    "fd_violation_ratio",
    "find_functional_dependencies",
    "AssociationRule",
    "mine_association_rules",
    "NutritionalLabel",
    "build_nutritional_label",
    "Datasheet",
    "build_datasheet",
    "EXPORT_SCHEMA_VERSION",
    "label_to_dict",
    "datasheet_to_dict",
    "audit_to_dict",
    "profile_to_dict",
    "dump_json",
    "load_json",
    "load_artifact",
    "dict_to_label",
    "dict_to_datasheet",
    "dict_to_audit",
    "dict_to_profile",
]
