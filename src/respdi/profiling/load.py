"""Loaders mirroring :mod:`respdi.profiling.export`.

:func:`dump_json` made labels, datasheets, and audits travel; these
loaders bring them back, so a catalog (or any downstream consumer) can
rehydrate the artifact objects without the original table.  Every loader
checks the payload's ``schema_version`` and raises
:class:`~respdi.errors.SpecificationError` on versions this library does
not understand — misreading a future export silently would be worse
than failing.

Reconstruction caveats (inherent to the JSON form): tuple keys were
flattened with ``"|"`` and are split back on it, so column names and
group values containing ``"|"`` do not round-trip; non-string group
values come back as strings.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List, Tuple

from respdi.errors import SpecificationError
from respdi.profiling.association import AssociationRule
from respdi.profiling.datasheets import Datasheet
from respdi.profiling.export import EXPORT_SCHEMA_VERSION
from respdi.profiling.labels import NutritionalLabel
from respdi.profiling.profiles import ColumnProfile, TableProfile
from respdi.requirements.base import AuditReport, RequirementReport


def load_json(path) -> Dict[str, Any]:
    """Read one exported artifact payload (a plain dict) from *path*."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise SpecificationError(f"{path} does not hold a JSON object")
    return payload


def _check_version(payload: Dict[str, Any], artifact: str) -> None:
    version = payload.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise SpecificationError(
            f"payload has no integer schema_version; cannot load as {artifact}"
        )
    if not 1 <= version <= EXPORT_SCHEMA_VERSION:
        raise SpecificationError(
            f"unknown schema_version {version} (this library reads "
            f"1..{EXPORT_SCHEMA_VERSION})"
        )
    declared = payload.get("artifact")
    if declared is not None and declared != artifact:
        raise SpecificationError(
            f"payload declares artifact {declared!r}, expected {artifact!r}"
        )


def _split_key(flat: str) -> Tuple[str, ...]:
    return tuple(flat.split("|"))


def dict_to_profile(payload: Dict[str, Any]) -> TableProfile:
    """Rebuild a :class:`TableProfile` from :func:`profile_to_dict` output."""
    rows = int(payload["rows"])
    columns: Dict[str, ColumnProfile] = {}
    for name, column in payload.get("columns", {}).items():
        missing = column.get("missing")
        if missing is None:  # derived form: invert the exported rate
            missing = int(round(float(column.get("missing_rate", 0.0)) * rows))
        columns[name] = ColumnProfile(
            name=name,
            ctype=column["type"],
            row_count=rows,
            missing_count=int(missing),
            distinct_count=int(column.get("distinct", 0)),
            minimum=column.get("min"),
            maximum=column.get("max"),
            mean=column.get("mean"),
            std=column.get("std"),
            top_values=tuple(
                (value, int(count))
                for value, count in column.get("top_values", [])
            ),
        )
    profile = TableProfile(row_count=rows, columns=columns)
    object.__setattr__(
        profile, "_complete_fraction", float(payload.get("complete_row_fraction", 0.0))
    )
    return profile


def dict_to_label(payload: Dict[str, Any]) -> NutritionalLabel:
    """Rebuild a :class:`NutritionalLabel` from :func:`label_to_dict` output."""
    _check_version(payload, "nutritional_label")
    profile = dict_to_profile(payload)
    association: Dict[Tuple[str, str], float] = {}
    for flat, value in payload.get("feature_sensitive_association", {}).items():
        parts = _split_key(flat)
        if len(parts) != 2:
            raise SpecificationError(
                f"association key {flat!r} does not split into (feature, sensitive)"
            )
        association[parts] = float(value)
    fds: List[Tuple[Tuple[str, ...], str, float]] = [
        (tuple(fd["determinant"]), fd["dependent"], float(fd["violation_ratio"]))
        for fd in payload.get("sensitive_target_fds", [])
    ]
    rules: List[AssociationRule] = []
    for rule in payload.get("bias_rules", []):
        if not isinstance(rule, dict):
            raise SpecificationError(
                "bias_rules holds non-structured entries; the payload was "
                "written by an exporter this loader does not understand"
            )
        rules.append(
            AssociationRule(
                antecedent_column=rule["antecedent_column"],
                antecedent_value=rule["antecedent_value"],
                consequent_column=rule["consequent_column"],
                consequent_value=rule["consequent_value"],
                support=float(rule["support"]),
                confidence=float(rule["confidence"]),
                lift=float(rule["lift"]),
            )
        )
    group_missing: Dict[str, Dict[Hashable, float]] = {
        column: {_split_key(flat): float(rate) for flat, rate in rates.items()}
        for column, rates in payload.get("group_missing_rates", {}).items()
    }
    return NutritionalLabel(
        profile=profile,
        sensitive_columns=tuple(payload.get("sensitive_columns", ())),
        target_column=payload.get("target_column"),
        feature_target_correlation={
            name: float(value)
            for name, value in payload.get("feature_target_correlation", {}).items()
        },
        feature_sensitive_association=association,
        sensitive_target_fds=fds,
        bias_rules=rules,
        uncovered_patterns=list(payload.get("uncovered_patterns", [])),
        label_parity_by_attribute={
            name: float(value)
            for name, value in payload.get("label_parity_by_attribute", {}).items()
        },
        attribute_diversity={
            name: float(value)
            for name, value in payload.get("attribute_diversity", {}).items()
        },
        group_missing_rates=group_missing,
    )


def dict_to_datasheet(payload: Dict[str, Any]) -> Datasheet:
    """Rebuild a :class:`Datasheet` from :func:`datasheet_to_dict` output."""
    _check_version(payload, "datasheet")
    answers: Dict[str, List[Tuple[str, str]]] = {
        section: [(entry["question"], entry["answer"]) for entry in entries]
        for section, entries in payload.get("sections", {}).items()
    }
    sheet = Datasheet(
        title=payload["title"],
        answers=answers,
        known_limitations=list(payload.get("known_limitations", [])),
        recommended_uses=list(payload.get("recommended_uses", [])),
        discouraged_uses=list(payload.get("discouraged_uses", [])),
    )
    if "composition" in payload:
        sheet.composition_profile = dict_to_profile(payload["composition"])
    return sheet


def dict_to_audit(payload: Dict[str, Any]) -> AuditReport:
    """Rebuild an :class:`AuditReport` from :func:`audit_to_dict` output."""
    _check_version(payload, "audit")
    reports = [
        RequirementReport(
            requirement=entry["requirement"],
            passed=bool(entry["passed"]),
            score=float(entry["score"]),
            details=dict(entry.get("details", {})),
            message=entry.get("message", ""),
        )
        for entry in payload.get("requirements", [])
    ]
    return AuditReport(reports=reports)


def load_artifact(path):
    """Load an exported JSON file back into its artifact object.

    Dispatches on the payload's ``artifact`` tag (the inverse of
    :func:`~respdi.profiling.export.dump_json`).
    """
    payload = load_json(path)
    artifact = payload.get("artifact")
    loaders = {
        "nutritional_label": dict_to_label,
        "datasheet": dict_to_datasheet,
        "audit": dict_to_audit,
    }
    if artifact not in loaders:
        raise SpecificationError(
            f"{path} declares artifact {artifact!r}; expected one of "
            f"{sorted(loaders)}"
        )
    return loaders[artifact](payload)
