"""Functional dependencies, exact and approximate.

MithraLabel flags *functional dependencies between sensitive attributes
and target variables* — if race determines the label in your data, the
data set cannot support a race-blind model.  An FD ``X -> y`` holds when
no two rows agree on ``X`` but differ on ``y``; the *violation ratio* is
the minimum fraction of rows to delete for the FD to hold (g3 error of
Kivinen & Mannila), so ``fd_violation_ratio == 0`` iff the exact FD holds.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Sequence, Tuple

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


def fd_violation_ratio(
    table: Table, determinant: Sequence[str], dependent: str
) -> float:
    """g3 error of the FD ``determinant -> dependent`` in [0, 1].

    For each determinant value-combination, all rows except those with
    the majority dependent value violate the FD; the ratio is the total
    violation count over the row count.  Rows with a missing value in any
    involved column are excluded (an FD says nothing about NULLs).
    """
    determinant = list(determinant)
    if not determinant:
        raise SpecificationError("FD needs at least one determinant column")
    if dependent in determinant:
        raise SpecificationError("dependent column cannot also be a determinant")
    table.schema.require(determinant + [dependent])
    arrays = [table.column(name) for name in determinant]
    dependent_values = table.column(dependent)
    missing = table.missing_mask(dependent)
    for name in determinant:
        missing = missing | table.missing_mask(name)

    groups: Dict[Tuple, Counter] = defaultdict(Counter)
    considered = 0
    for i in range(len(table)):
        if missing[i]:
            continue
        considered += 1
        key = tuple(array[i] for array in arrays)
        groups[key][dependent_values[i]] += 1
    if considered == 0:
        raise EmptyInputError("no complete rows to evaluate the FD on")
    violations = sum(
        sum(counter.values()) - max(counter.values()) for counter in groups.values()
    )
    return violations / considered


def fd_holds(
    table: Table,
    determinant: Sequence[str],
    dependent: str,
    tolerance: float = 0.0,
) -> bool:
    """True when the FD holds up to *tolerance* violation ratio."""
    if tolerance < 0:
        raise SpecificationError("tolerance must be non-negative")
    return fd_violation_ratio(table, determinant, dependent) <= tolerance


def find_functional_dependencies(
    table: Table,
    determinant_candidates: Sequence[str],
    dependent_candidates: Sequence[str],
    tolerance: float = 0.0,
) -> List[Tuple[Tuple[str, ...], str, float]]:
    """All single-column (approximate) FDs between the candidate sets.

    Returns ``[(determinant, dependent, violation_ratio)]`` for every pair
    whose ratio is within *tolerance*, sorted by ratio.  Single-column
    determinants only — the MithraLabel widget cares about "does this
    sensitive attribute (alone) determine the target".
    """
    results: List[Tuple[Tuple[str, ...], str, float]] = []
    for determinant in determinant_candidates:
        for dependent in dependent_candidates:
            if determinant == dependent:
                continue
            ratio = fd_violation_ratio(table, [determinant], dependent)
            if ratio <= tolerance:
                results.append(((determinant,), dependent, ratio))
    results.sort(key=lambda item: (item[2], item[0], item[1]))
    return results
