"""One-antecedent association rules over categorical columns.

MithraLabel uses association rules "to capture bias": a rule like
``race=black -> y=0`` with high confidence and lift far from 1 is a
red flag worth surfacing on the label.  We mine rules of the form
``(column_a = value_a) -> (column_b = value_b)`` with the classical
support / confidence / lift thresholds; one antecedent is exactly what a
human-readable label can display.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, List, Sequence

from respdi.errors import SpecificationError
from respdi.table import Table


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent_column = antecedent_value -> consequent_column =
    consequent_value`` with its statistics."""

    antecedent_column: str
    antecedent_value: Hashable
    consequent_column: str
    consequent_value: Hashable
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        return (
            f"{self.antecedent_column}={self.antecedent_value!r} -> "
            f"{self.consequent_column}={self.consequent_value!r} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def mine_association_rules(
    table: Table,
    columns: Sequence[str],
    min_support: float = 0.05,
    min_confidence: float = 0.6,
    min_lift: float = 1.2,
) -> List[AssociationRule]:
    """All qualifying one-antecedent rules among *columns*.

    Rules are mined between distinct columns only (a column trivially
    "implies" itself).  Rows missing either value are excluded from that
    pair's counts.  Results are sorted by lift, descending.
    """
    columns = list(columns)
    if len(columns) < 2:
        raise SpecificationError("association mining needs at least two columns")
    table.schema.require(columns)
    for thresh, name in (
        (min_support, "min_support"),
        (min_confidence, "min_confidence"),
    ):
        if not 0.0 <= thresh <= 1.0:
            raise SpecificationError(f"{name} must be in [0, 1]")
    rules: List[AssociationRule] = []
    arrays = {name: table.column(name) for name in columns}
    missing = {name: table.missing_mask(name) for name in columns}
    for col_a in columns:
        for col_b in columns:
            if col_a == col_b:
                continue
            keep = ~(missing[col_a] | missing[col_b])
            n = int(keep.sum())
            if n == 0:
                continue
            a_values = arrays[col_a][keep]
            b_values = arrays[col_b][keep]
            count_a = Counter(a_values)
            count_b = Counter(b_values)
            count_ab = Counter(zip(a_values, b_values))
            for (va, vb), n_ab in count_ab.items():
                support = n_ab / n
                if support < min_support:
                    continue
                confidence = n_ab / count_a[va]
                if confidence < min_confidence:
                    continue
                consequent_rate = count_b[vb] / n
                lift = confidence / consequent_rate if consequent_rate > 0 else 0.0
                if lift < min_lift:
                    continue
                rules.append(
                    AssociationRule(
                        antecedent_column=col_a,
                        antecedent_value=va,
                        consequent_column=col_b,
                        consequent_value=vb,
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda r: (-r.lift, -r.confidence, repr(r)))
    return rules
