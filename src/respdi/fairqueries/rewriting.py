"""Coverage-based query rewriting (Accinelli et al., EDBT workshops).

Given a range selection whose output under-covers some groups, *relax*
(only widen, never narrow) the range minimally until every group reaches
a minimum count in the result.  "Minimal" is measured in added rows: at
each step the rewrite extends whichever boundary admits the next row at
the cheaper marginal cost toward covering a still-deficient group,
preferring extensions that actually contain deficient-group rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

import numpy as np

from respdi.errors import EmptyInputError, InfeasibleError, SpecificationError
from respdi.table import Range, Table


@dataclass(frozen=True)
class CoverageRewriteResult:
    """The relaxed range and its bookkeeping."""

    lo: float
    hi: float
    added_rows: int
    group_counts: Dict[Hashable, int]
    original_counts: Dict[Hashable, int]

    def predicate(self, column: str) -> Range:
        return Range(column, self.lo, self.hi)


def coverage_rewrite(
    table: Table,
    column: str,
    lo: float,
    hi: float,
    group_column: str,
    min_count: int,
) -> CoverageRewriteResult:
    """Minimally widen ``[lo, hi]`` until every group has *min_count* rows.

    Raises :class:`InfeasibleError` when the whole table cannot satisfy
    the requirement (some group simply lacks *min_count* rows anywhere).
    """
    table.schema.require([column, group_column])
    if not table.schema[column].is_numeric:
        raise SpecificationError("coverage rewriting needs a numeric column")
    if min_count < 1:
        raise SpecificationError("min_count must be >= 1")
    if lo > hi:
        raise SpecificationError("empty original range (lo > hi)")

    values = np.asarray(table.column(column), dtype=float)
    groups = table.column(group_column)
    keep = ~np.isnan(values) & ~table.missing_mask(group_column)
    values = values[keep]
    groups = groups[keep]
    if len(values) == 0:
        raise EmptyInputError("no complete (value, group) rows")

    all_groups = sorted(set(groups), key=repr)
    total_counts = {g: 0 for g in all_groups}
    for g in groups:
        total_counts[g] += 1
    short = {g for g, c in total_counts.items() if c < min_count}
    if short:
        raise InfeasibleError(
            f"groups {sorted(short, key=repr)} have fewer than {min_count} rows "
            "in the entire table; no rewrite can cover them"
        )

    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    sorted_groups = groups[order]
    n = len(sorted_values)

    left = int(np.searchsorted(sorted_values, lo, side="left"))
    right = int(np.searchsorted(sorted_values, hi, side="right"))  # exclusive
    counts = {g: 0 for g in all_groups}
    for g in sorted_groups[left:right]:
        counts[g] += 1
    original_counts = dict(counts)
    added = 0

    def deficient() -> bool:
        return any(counts[g] < min_count for g in all_groups)

    while deficient():
        # Cost of the next extension on each side = rows until (and
        # including) the next row of a *deficient* group.
        def side_cost(direction: int):
            """(rows_to_absorb, positions) or None when exhausted."""
            if direction < 0:
                position = left - 1
                step = -1
            else:
                position = right
                step = 1
            absorbed = 0
            while 0 <= position < n:
                absorbed += 1
                if counts[sorted_groups[position]] < min_count:
                    return absorbed, position
                position += step
            return None

        left_option = side_cost(-1)
        right_option = side_cost(+1)
        if left_option is None and right_option is None:
            raise InfeasibleError(
                "range exhausted the table without covering all groups"
            )  # pragma: no cover - guarded by the total-count check above
        go_left = right_option is None or (
            left_option is not None and left_option[0] <= right_option[0]
        )
        rows_to_absorb = left_option[0] if go_left else right_option[0]
        for _ in range(rows_to_absorb):
            if go_left:
                left -= 1
                counts[sorted_groups[left]] += 1
            else:
                counts[sorted_groups[right]] += 1
                right += 1
            added += 1

    new_lo = min(lo, float(sorted_values[left])) if right > left else lo
    new_hi = max(hi, float(sorted_values[right - 1])) if right > left else hi
    return CoverageRewriteResult(
        lo=new_lo,
        hi=new_hi,
        added_rows=added,
        group_counts=counts,
        original_counts=original_counts,
    )
