"""Fairness-aware query answering (tutorial §5).

* :mod:`respdi.fairqueries.rangequeries` — fairness-aware range queries
  (Shetiya, Swift, Asudeh, Das — ICDE 2022): given a range selection and
  a bound on the group-count disparity of its output, find the *most
  similar* range whose output satisfies the bound;
* :mod:`respdi.fairqueries.rewriting` — coverage-based query rewriting
  (Accinelli et al., EDBT workshops 2020/21): minimally relax a range
  selection until every group reaches a minimum count in the result.
"""

from respdi.fairqueries.rangequeries import (
    FairRangeResult,
    fair_range_refinement,
    range_disparity,
)
from respdi.fairqueries.rewriting import CoverageRewriteResult, coverage_rewrite

__all__ = [
    "FairRangeResult",
    "range_disparity",
    "fair_range_refinement",
    "CoverageRewriteResult",
    "coverage_rewrite",
]
