"""Fairness-aware range queries (Shetiya et al., ICDE 2022).

Setting: a user issues ``SELECT ... WHERE lo <= x <= hi`` but is flexible
about the exact boundaries; the system must return the *most similar*
range whose output satisfies a fairness constraint — here, that the
count difference between the largest and smallest group in the output is
at most ``max_disparity`` (optionally relative to output size).

Similarity between the original and candidate output sets is Jaccard
over selected rows, which for ranges over one attribute reduces to
interval-overlap counting and is computed from prefix sums.  The search
enumerates candidate boundaries at the distinct data values (no other
boundary changes the output), vectorized over right endpoints for each
left endpoint, so the exact optimum is found in O(m²) with small
constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Range, Table


def range_disparity(
    table: Table, column: str, lo: float, hi: float, group_column: str
) -> Tuple[int, Dict[Hashable, int]]:
    """Group counts inside ``[lo, hi]`` and their max-min disparity.

    Groups are all present values of *group_column* in the table; groups
    with no row in the range count as zero (their absence *is* the
    disparity the fairness constraint cares about).
    """
    selected = table.filter(Range(column, lo, hi))
    counts = {g: 0 for g in table.unique(group_column)}
    if not counts:
        raise EmptyInputError(f"group column {group_column!r} has no values")
    counts.update(selected.value_counts(group_column))
    return max(counts.values()) - min(counts.values()), counts


@dataclass(frozen=True)
class FairRangeResult:
    """The refined range and its properties."""

    lo: float
    hi: float
    similarity: float
    disparity: int
    group_counts: Dict[Hashable, int]
    original_disparity: int
    candidates_examined: int

    def predicate(self, column: str) -> Range:
        return Range(column, self.lo, self.hi)


def fair_range_refinement(
    table: Table,
    column: str,
    lo: float,
    hi: float,
    group_column: str,
    max_disparity: int,
    relative: bool = False,
    max_disparity_fraction: float = 0.2,
) -> FairRangeResult:
    """Most similar fair range to ``[lo, hi]``.

    With ``relative=False`` the constraint is
    ``max_count - min_count <= max_disparity`` (absolute counts); with
    ``relative=True`` it is ``<= max_disparity_fraction * output_size``.
    Raises :class:`~respdi.errors.InfeasibleError` when no candidate range
    (including the empty range) satisfies the constraint — which can only
    happen in the relative regime with a zero fraction, since the empty
    output always has zero absolute disparity.
    """
    from respdi.errors import InfeasibleError

    table.schema.require([column, group_column])
    if not table.schema[column].is_numeric:
        raise SpecificationError("fair range refinement needs a numeric column")
    if max_disparity < 0:
        raise SpecificationError("max_disparity must be non-negative")
    if lo > hi:
        raise SpecificationError("empty original range (lo > hi)")

    values = np.asarray(table.column(column), dtype=float)
    groups_column = table.column(group_column)
    keep = ~np.isnan(values) & ~table.missing_mask(group_column)
    values = values[keep]
    groups_column = groups_column[keep]
    if len(values) == 0:
        raise EmptyInputError("no complete (value, group) rows")

    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    sorted_groups = groups_column[order]
    group_list = sorted(set(sorted_groups), key=repr)
    group_index = {g: i for i, g in enumerate(group_list)}
    n = len(sorted_values)
    k = len(group_list)

    # Prefix counts: prefix[i, g] = count of group g among first i rows.
    prefix = np.zeros((n + 1, k), dtype=np.int64)
    for i in range(n):
        prefix[i + 1] = prefix[i]
        prefix[i + 1, group_index[sorted_groups[i]]] += 1

    in_original = (sorted_values >= lo) & (sorted_values <= hi)
    original_count = int(in_original.sum())
    original_prefix = np.concatenate([[0], np.cumsum(in_original)])
    original_group_counts = {
        g: int(
            prefix[np.searchsorted(sorted_values, hi, side="right"), group_index[g]]
            - prefix[np.searchsorted(sorted_values, lo, side="left"), group_index[g]]
        )
        for g in group_list
    }
    original_disparity = (
        max(original_group_counts.values()) - min(original_group_counts.values())
    )

    # Candidate boundaries: positions between sorted rows.  A candidate is
    # a pair (s, e) with 0 <= s <= e <= n selecting rows [s, e).
    distinct_starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_values)) + 1, [n]]
    )
    distinct_starts = np.unique(distinct_starts)

    best: Optional[Tuple[float, int, int, int]] = None  # (similarity, -size, s, e)
    examined = 0
    for s in distinct_starts:
        ends = distinct_starts[distinct_starts >= s]
        examined += len(ends)
        counts = prefix[ends] - prefix[s]  # (|ends|, k)
        disparity = counts.max(axis=1) - counts.min(axis=1)
        size = ends - s
        if relative:
            feasible = disparity <= max_disparity_fraction * size
        else:
            feasible = disparity <= max_disparity
        if not feasible.any():
            continue
        inter = original_prefix[ends] - original_prefix[s]
        union = original_count + size - inter
        with np.errstate(invalid="ignore", divide="ignore"):
            similarity = np.where(union > 0, inter / union, 1.0)
        similarity = np.where(feasible, similarity, -1.0)
        idx = int(np.argmax(similarity))
        if similarity[idx] < 0:
            continue
        candidate = (float(similarity[idx]), -int(size[idx]), int(s), int(ends[idx]))
        if best is None or candidate > best:
            best = candidate

    if best is None:
        raise InfeasibleError(
            "no candidate range satisfies the fairness constraint"
        )
    similarity, _, s, e = best
    if e > s:
        new_lo = float(sorted_values[s])
        new_hi = float(sorted_values[e - 1])
    else:
        # Empty refinement: a degenerate range below the data.
        new_lo = new_hi = float(sorted_values[0]) - 1.0
    disparity, group_counts = range_disparity(
        table, column, new_lo, new_hi, group_column
    )
    return FairRangeResult(
        lo=new_lo,
        hi=new_hi,
        similarity=float(similarity),
        disparity=disparity,
        group_counts=group_counts,
        original_disparity=original_disparity,
        candidates_examined=examined,
    )
