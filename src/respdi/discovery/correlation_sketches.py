"""Correlation sketches for join-correlation queries (Santos et al., 2021).

Feature discovery (tutorial §3.1) asks: *which table in the lake joins
with my table and carries a column correlated with my target?*  Computing
every join is out of the question, so Santos et al. summarize each
(key column, value column) pair with a **coordinated sample**: keys are
hashed with one shared hash function and the sketch keeps the ``n``
keys with the smallest hashes, each paired with its (aggregated) value.
Because all sketches keep the *same* hash-minimal keys, two sketches
overlap exactly on the hash-minimal keys of the true key intersection —
a uniform sample of the join — and correlation estimated on the paired
sketch values estimates the post-join correlation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.stats.dependence import pearson_correlation, spearman_correlation
from respdi.table.hashing import salted_hash64_list


def _key_hash(value: Hashable, seed: int) -> int:
    """Scalar reference; batch hashing goes through
    :func:`respdi.table.hashing.salted_hash64_list` (byte-identical)."""
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class CorrelationSketch:
    """Coordinated (key, value) sample for one key/value column pair."""

    entries: Tuple[Tuple[int, Hashable, float], ...]  # (hash, key, value)
    num_keys: int
    seed: int

    @classmethod
    def build(
        cls,
        keys: Sequence[Hashable],
        values: Sequence[float],
        size: int = 64,
        seed: int = 17,
    ) -> "CorrelationSketch":
        """Sketch the (keys, values) pairs, aggregating duplicates by mean.

        Rows whose value is missing (NaN) or whose key is missing (None)
        are skipped: they would never contribute to an equi-join result.
        """
        if size < 2:
            raise SpecificationError("sketch size must be >= 2")
        if len(keys) != len(values):
            raise SpecificationError(
                f"{len(keys)} keys vs {len(values)} values"
            )
        sums: Dict[Hashable, float] = {}
        counts: Dict[Hashable, int] = {}
        if (
            isinstance(keys, np.ndarray)
            and keys.dtype == object
            and isinstance(values, np.ndarray)
            and values.dtype == np.float64
        ):
            # Column fast path: mask NaN rows in one vectorized pass and
            # unbox in bounded chunks (transient memory stays flat on
            # long columns).  Accumulation stays a sequential dict loop
            # in row order — float addition is non-associative, so any
            # reordering would change the means bit-for-bit.
            present = ~np.isnan(values)
            kept_keys = keys[present]
            kept_values = values[present]
            for start in range(0, kept_keys.size, 8192):
                stop = start + 8192
                for key, value in zip(
                    kept_keys[start:stop].tolist(),
                    kept_values[start:stop].tolist(),
                ):
                    if key is None:
                        continue
                    sums[key] = sums.get(key, 0.0) + value
                    counts[key] = counts.get(key, 0) + 1
        else:
            for key, value in zip(keys, values):
                if key is None:
                    continue
                value = float(value)
                if np.isnan(value):
                    continue
                sums[key] = sums.get(key, 0.0) + value
                counts[key] = counts.get(key, 0) + 1
        if not sums:
            raise EmptyInputError("no present (key, value) pairs to sketch")
        distinct = list(sums)
        hashes = salted_hash64_list(distinct, seed)
        hashed = sorted(
            zip(hashes, distinct, (sums[key] / counts[key] for key in distinct))
        )
        return cls(entries=tuple(hashed[:size]), num_keys=len(sums), seed=seed)

    def paired_values(
        self, other: "CorrelationSketch"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aligned value pairs on the sketches' common hash-minimal keys.

        Only keys below *both* sketches' retention thresholds are valid
        coordinated samples; keys beyond either threshold may be missing
        from the other sketch for reasons other than absence.
        """
        if self.seed != other.seed:
            raise SpecificationError(
                "sketches built with different seeds are not comparable"
            )
        threshold = min(self.entries[-1][0], other.entries[-1][0])
        mine = {key: value for h, key, value in self.entries if h <= threshold}
        theirs = {key: value for h, key, value in other.entries if h <= threshold}
        common = sorted(set(mine) & set(theirs), key=repr)
        a = np.array([mine[key] for key in common])
        b = np.array([theirs[key] for key in common])
        return a, b

    def join_keys_estimate(self, other: "CorrelationSketch") -> float:
        """Estimated number of distinct join keys between the two columns
        (inclusion-estimator on the coordinated sample)."""
        threshold = min(self.entries[-1][0], other.entries[-1][0])
        mine = {key for h, key, _ in self.entries if h <= threshold}
        theirs = {key for h, key, _ in other.entries if h <= threshold}
        sample_union = mine | theirs
        if not sample_union:
            return 0.0
        overlap_fraction = len(mine & theirs) / len(sample_union)
        union_estimate = self.num_keys + other.num_keys
        # |A ∩ B| = J * |A ∪ B| and |A ∪ B| = |A| + |B| - |A ∩ B|.
        return overlap_fraction * union_estimate / (1.0 + overlap_fraction)

    def estimate_pearson(self, other: "CorrelationSketch") -> float:
        """Estimated post-join Pearson correlation (0 when the coordinated
        sample has fewer than 3 common keys — too little evidence)."""
        a, b = self.paired_values(other)
        if len(a) < 3:
            return 0.0
        return pearson_correlation(a, b)

    def estimate_spearman(self, other: "CorrelationSketch") -> float:
        """Estimated post-join Spearman correlation (same guard as Pearson)."""
        a, b = self.paired_values(other)
        if len(a) < 3:
            return 0.0
        return spearman_correlation(a, b)
