"""LSH Ensemble: containment-threshold domain search (Zhu et al., VLDB 2016).

Containment ``|Q ∩ X| / |Q|`` is the right relevance measure for finding
joinable/unionable domains, but plain MinHash LSH indexes Jaccard, whose
relationship to containment depends on the candidate's cardinality.  LSH
Ensemble fixes this by **partitioning the indexed domains by
cardinality**: within a partition whose largest domain has ``u`` values,
a containment threshold ``t`` for a query of size ``q`` translates to
the Jaccard threshold

    J(t, q, u) = t * q / (q + u - t * q)

so each partition runs an ordinary banded MinHash LSH tuned to its own
(stricter or looser) Jaccard threshold at query time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.errors import EmptyInputError, SpecificationError
from respdi.obs import counted, timed


def containment_to_jaccard(t: float, query_size: int, max_candidate_size: int) -> float:
    """The Jaccard threshold equivalent to containment *t* for a query of
    *query_size* against candidates no larger than *max_candidate_size*."""
    if not 0.0 <= t <= 1.0:
        raise SpecificationError(f"containment threshold {t} out of [0, 1]")
    if query_size < 1 or max_candidate_size < 1:
        raise SpecificationError("sizes must be positive")
    denominator = query_size + max_candidate_size - t * query_size
    return (t * query_size) / denominator if denominator > 0 else 1.0


def _choose_bands(num_hashes: int, jaccard_threshold: float) -> Tuple[int, int]:
    """Pick (bands, rows) with bands*rows <= num_hashes whose S-curve
    inflection ``(1/b)^(1/r)`` best matches the threshold."""
    best = (1, num_hashes)
    best_gap = float("inf")
    for rows in range(1, num_hashes + 1):
        bands = num_hashes // rows
        if bands < 1:
            break
        inflection = (1.0 / bands) ** (1.0 / rows)
        gap = abs(inflection - jaccard_threshold)
        if gap < best_gap:
            best_gap = gap
            best = (bands, rows)
    return best


@dataclass
class _Partition:
    """One cardinality partition: its domains and size bounds."""

    max_size: int
    keys: List[Hashable]
    signatures: Dict[Hashable, MinHashSignature]


class LSHEnsemble:
    """Containment search index over many value domains.

    Usage::

        ensemble = LSHEnsemble(num_hashes=128, num_partitions=4, rng=0)
        ensemble.index("tbl.col", values)        # repeat for all domains
        ensemble.freeze()
        hits = ensemble.query(query_values, containment_threshold=0.5)

    ``query`` returns candidate keys whose *estimated* containment of the
    query meets the threshold (LSH recall is probabilistic; the estimate
    used for final filtering is the signature-based one, so results are
    deterministic given the hasher seed).
    """

    def __init__(
        self,
        num_hashes: int = 128,
        num_partitions: int = 4,
        rng=None,
        hasher: Optional[MinHasher] = None,
    ) -> None:
        if num_partitions < 1:
            raise SpecificationError("num_partitions must be >= 1")
        self.hasher = hasher if hasher is not None else MinHasher(num_hashes, rng)
        self.num_partitions = num_partitions
        self._pending: Dict[Hashable, MinHashSignature] = {}
        self._partitions: List[_Partition] = []
        self._frozen = False

    @counted("discovery.lshensemble.domains_indexed")
    def index(self, key: Hashable, values: Iterable[Hashable]) -> None:
        """Add a domain under *key* (must be called before :meth:`freeze`)."""
        self.index_signature(key, self.hasher.signature(values))

    def index_signature(self, key: Hashable, signature: MinHashSignature) -> None:
        """Add a domain from an already-computed signature.

        This is the warm-start path: a catalog that persisted signatures
        can rebuild the ensemble without touching raw values.  The
        signature must come from this ensemble's own hasher.
        """
        if self._frozen:
            raise SpecificationError("cannot index after freeze()")
        if key in self._pending:
            raise SpecificationError(f"duplicate domain key {key!r}")
        if signature.hasher_id != self.hasher.hasher_id:
            raise SpecificationError(
                "signature comes from a different MinHasher than this ensemble's"
            )
        self._pending[key] = signature

    @property
    def signatures(self) -> Dict[Hashable, MinHashSignature]:
        """All indexed domain signatures, keyed as indexed (for persistence)."""
        return dict(self._pending)

    @timed("discovery.lshensemble.freeze")
    def freeze(self) -> None:
        """Partition indexed domains by cardinality; enables querying."""
        if not self._pending:
            raise EmptyInputError("nothing indexed")
        ordered = sorted(self._pending.items(), key=lambda kv: kv[1].cardinality)
        chunks = np.array_split(np.arange(len(ordered)), self.num_partitions)
        self._partitions = []
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            keys = [ordered[i][0] for i in chunk]
            signatures = {ordered[i][0]: ordered[i][1] for i in chunk}
            max_size = max(sig.cardinality for sig in signatures.values())
            self._partitions.append(
                _Partition(max_size=max_size, keys=keys, signatures=signatures)
            )
        self._frozen = True

    @timed("discovery.lshensemble.query")
    def query(
        self, values: Iterable[Hashable], containment_threshold: float
    ) -> List[Tuple[Hashable, float]]:
        """Keys whose estimated containment of the query >= threshold.

        Returns ``[(key, estimated_containment)]`` sorted by estimate,
        descending.
        """
        if not self._frozen:
            raise SpecificationError("call freeze() before query()")
        query_signature = self.hasher.signature(values)
        q = query_signature.cardinality
        results: List[Tuple[Hashable, float]] = []
        for partition in self._partitions:
            jaccard_threshold = containment_to_jaccard(
                containment_threshold, q, partition.max_size
            )
            bands, rows = _choose_bands(self.hasher.num_hashes, jaccard_threshold)
            candidates = self._banded_candidates(
                partition, query_signature, bands, rows
            )
            for key in candidates:
                signature = partition.signatures[key]
                jaccard = query_signature.jaccard(signature)
                union_bound = q + signature.cardinality
                intersection = (
                    jaccard * union_bound / (1.0 + jaccard) if jaccard > 0 else 0.0
                )
                intersection = min(intersection, float(q), float(signature.cardinality))
                containment = intersection / q
                if containment >= containment_threshold:
                    results.append((key, containment))
        results.sort(key=lambda item: (-item[1], repr(item[0])))
        return results

    @staticmethod
    def _banded_candidates(
        partition: _Partition,
        query_signature: MinHashSignature,
        bands: int,
        rows: int,
    ) -> Set[Hashable]:
        """Candidate keys sharing at least one LSH band with the query."""
        buckets: Dict[Tuple[int, bytes], List[Hashable]] = defaultdict(list)
        for key, signature in partition.signatures.items():
            for band in range(bands):
                chunk = signature.values[band * rows : (band + 1) * rows]
                buckets[(band, chunk.tobytes())].append(key)
        candidates: Set[Hashable] = set()
        for band in range(bands):
            chunk = query_signature.values[band * rows : (band + 1) * rows]
            candidates.update(buckets.get((band, chunk.tobytes()), ()))
        return candidates
