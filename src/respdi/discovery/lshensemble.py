"""LSH Ensemble: containment-threshold domain search (Zhu et al., VLDB 2016).

Containment ``|Q ∩ X| / |Q|`` is the right relevance measure for finding
joinable/unionable domains, but plain MinHash LSH indexes Jaccard, whose
relationship to containment depends on the candidate's cardinality.  LSH
Ensemble fixes this by **partitioning the indexed domains by
cardinality**: within a partition whose largest domain has ``u`` values,
a containment threshold ``t`` for a query of size ``q`` translates to
the Jaccard threshold

    J(t, q, u) = t * q / (q + u - t * q)

so each partition runs an ordinary banded MinHash LSH tuned to its own
(stricter or looser) Jaccard threshold at query time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.errors import EmptyInputError, SpecificationError
from respdi.obs import counted, timed


def containment_to_jaccard(t: float, query_size: int, max_candidate_size: int) -> float:
    """The Jaccard threshold equivalent to containment *t* for a query of
    *query_size* against candidates no larger than *max_candidate_size*."""
    if not 0.0 <= t <= 1.0:
        raise SpecificationError(f"containment threshold {t} out of [0, 1]")
    if query_size < 1 or max_candidate_size < 1:
        raise SpecificationError("sizes must be positive")
    denominator = query_size + max_candidate_size - t * query_size
    return (t * query_size) / denominator if denominator > 0 else 1.0


def _choose_bands(num_hashes: int, jaccard_threshold: float) -> Tuple[int, int]:
    """Pick (bands, rows) with bands*rows <= num_hashes whose S-curve
    inflection ``(1/b)^(1/r)`` best matches the threshold."""
    best = (1, num_hashes)
    best_gap = float("inf")
    for rows in range(1, num_hashes + 1):
        bands = num_hashes // rows
        if bands < 1:
            break
        inflection = (1.0 / bands) ** (1.0 / rows)
        gap = abs(inflection - jaccard_threshold)
        if gap < best_gap:
            best_gap = gap
            best = (bands, rows)
    return best


@dataclass
class _Partition:
    """One cardinality partition: its domains and size bounds."""

    max_size: int
    keys: List[Hashable]
    signatures: Dict[Hashable, MinHashSignature]


def partition_max_map(
    cardinalities: Mapping[Hashable, int], num_partitions: int
) -> Dict[Hashable, int]:
    """Map each domain key to the max cardinality of its partition.

    This is the ensemble's partitioning function factored out as a pure
    function of ``{key: cardinality}``: domains are ordered by
    ``(cardinality, repr(key))`` — a *total* order, so the layout never
    depends on insertion order — and split into ``num_partitions``
    near-equal chunks.  Because the layout is a pure function of the
    domain set, a sharded catalog can recompute the exact global
    partitioning from per-shard cardinality maps and score its local
    domains under it (:func:`scatter_containment_hits`), which is what
    makes scatter-gathered containment results byte-identical to a
    single ensemble over all domains.
    """
    if num_partitions < 1:
        raise SpecificationError("num_partitions must be >= 1")
    ordered = sorted(cardinalities, key=lambda key: (cardinalities[key], repr(key)))
    chunks = np.array_split(np.arange(len(ordered)), num_partitions)
    partition_max: Dict[Hashable, int] = {}
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        keys = [ordered[i] for i in chunk]
        max_size = max(cardinalities[key] for key in keys)
        for key in keys:
            partition_max[key] = max_size
    return partition_max


def _shares_band(
    signature: MinHashSignature,
    query_signature: MinHashSignature,
    bands: int,
    rows: int,
) -> bool:
    """True when the two signatures agree on at least one LSH band.

    One reshaped comparison over all bands at once — equivalent to the
    per-band byte compare (both ask whether every coordinate of some
    band agrees), without ``bands`` slice/tobytes round-trips.
    """
    used = bands * rows
    agree = (
        signature.values[:used].reshape(bands, rows)
        == query_signature.values[:used].reshape(bands, rows)
    )
    return bool(agree.all(axis=1).any())


def _containment_estimate(
    query_signature: MinHashSignature, signature: MinHashSignature, q: int
) -> float:
    """Signature-based containment estimate of the query in *signature*."""
    jaccard = query_signature.jaccard(signature)
    union_bound = q + signature.cardinality
    intersection = (
        jaccard * union_bound / (1.0 + jaccard) if jaccard > 0 else 0.0
    )
    intersection = min(intersection, float(q), float(signature.cardinality))
    return intersection / q


def scatter_containment_hits(
    signatures: Mapping[Hashable, MinHashSignature],
    query_signature: MinHashSignature,
    containment_threshold: float,
    partition_max: Mapping[Hashable, int],
    num_hashes: int,
) -> List[Tuple[Hashable, float]]:
    """Containment hits among *signatures* under a precomputed layout.

    *partition_max* assigns every key its partition's max cardinality
    (:func:`partition_max_map`); it may cover a superset of *signatures*
    — the scatter case, where the layout spans every shard's domains but
    each shard scores only its own.  Candidacy and estimation are
    per-key given the layout, so the union of per-shard results equals
    the single-ensemble result exactly.  Returns unsorted ``(key,
    estimate)`` pairs; callers order them (:class:`LSHEnsemble.query`'s
    sort is ``(-estimate, repr(key))``).
    """
    q = query_signature.cardinality
    by_max: Dict[int, List[Hashable]] = defaultdict(list)
    for key in signatures:
        by_max[partition_max[key]].append(key)
    results: List[Tuple[Hashable, float]] = []
    for max_size, keys in by_max.items():
        jaccard_threshold = containment_to_jaccard(
            containment_threshold, q, max_size
        )
        bands, rows = _choose_bands(num_hashes, jaccard_threshold)
        for key in keys:
            signature = signatures[key]
            if not _shares_band(signature, query_signature, bands, rows):
                continue
            containment = _containment_estimate(query_signature, signature, q)
            if containment >= containment_threshold:
                results.append((key, containment))
    return results


class LSHEnsemble:
    """Containment search index over many value domains.

    Usage::

        ensemble = LSHEnsemble(num_hashes=128, num_partitions=4, rng=0)
        ensemble.index("tbl.col", values)        # repeat for all domains
        ensemble.freeze()
        hits = ensemble.query(query_values, containment_threshold=0.5)

    ``query`` returns candidate keys whose *estimated* containment of the
    query meets the threshold (LSH recall is probabilistic; the estimate
    used for final filtering is the signature-based one, so results are
    deterministic given the hasher seed).
    """

    def __init__(
        self,
        num_hashes: int = 128,
        num_partitions: int = 4,
        rng=None,
        hasher: Optional[MinHasher] = None,
    ) -> None:
        if num_partitions < 1:
            raise SpecificationError("num_partitions must be >= 1")
        self.hasher = hasher if hasher is not None else MinHasher(num_hashes, rng)
        self.num_partitions = num_partitions
        self._pending: Dict[Hashable, MinHashSignature] = {}
        self._partitions: List[_Partition] = []
        self._frozen = False

    @counted("discovery.lshensemble.domains_indexed")
    def index(self, key: Hashable, values: Iterable[Hashable]) -> None:
        """Add a domain under *key* (must be called before :meth:`freeze`)."""
        self.index_signature(key, self.hasher.signature(values))

    def index_signature(self, key: Hashable, signature: MinHashSignature) -> None:
        """Add a domain from an already-computed signature.

        This is the warm-start path: a catalog that persisted signatures
        can rebuild the ensemble without touching raw values.  The
        signature must come from this ensemble's own hasher.
        """
        if self._frozen:
            raise SpecificationError("cannot index after freeze()")
        if key in self._pending:
            raise SpecificationError(f"duplicate domain key {key!r}")
        if signature.hasher_id != self.hasher.hasher_id:
            raise SpecificationError(
                "signature comes from a different MinHasher than this ensemble's"
            )
        self._pending[key] = signature

    @property
    def signatures(self) -> Dict[Hashable, MinHashSignature]:
        """All indexed domain signatures, keyed as indexed (for persistence)."""
        return dict(self._pending)

    @timed("discovery.lshensemble.freeze")
    def freeze(self) -> None:
        """Partition indexed domains by cardinality; enables querying.

        The layout comes from :func:`partition_max_map`, a pure function
        of ``{key: cardinality}`` with a total (insertion-order-free)
        ordering — the property that lets a sharded catalog reproduce
        this exact partitioning from per-shard metadata.
        """
        if not self._pending:
            raise EmptyInputError("nothing indexed")
        cardinalities = {
            key: signature.cardinality
            for key, signature in self._pending.items()
        }
        partition_max = partition_max_map(cardinalities, self.num_partitions)
        grouped: Dict[int, List[Hashable]] = defaultdict(list)
        for key, max_size in partition_max.items():
            grouped[max_size].append(key)
        self._partitions = [
            _Partition(
                max_size=max_size,
                keys=keys,
                signatures={key: self._pending[key] for key in keys},
            )
            for max_size, keys in sorted(grouped.items())
        ]
        self._frozen = True

    @timed("discovery.lshensemble.query")
    def query(
        self, values: Iterable[Hashable], containment_threshold: float
    ) -> List[Tuple[Hashable, float]]:
        """Keys whose estimated containment of the query >= threshold.

        Returns ``[(key, estimated_containment)]`` sorted by estimate,
        descending (ties broken by ``repr(key)``).
        """
        if not self._frozen:
            raise SpecificationError("call freeze() before query()")
        query_signature = self.hasher.signature(values)
        partition_max = {
            key: partition.max_size
            for partition in self._partitions
            for key in partition.keys
        }
        results = scatter_containment_hits(
            self._pending,
            query_signature,
            containment_threshold,
            partition_max,
            self.hasher.num_hashes,
        )
        results.sort(key=lambda item: (-item[1], repr(item[0])))
        return results
