"""IR-style keyword search over table metadata (tutorial §3.1).

The first formulation of dataset discovery the tutorial describes: the
query is a set of keywords and results are tables ranked by relevance.
We index each table's name, column names, and (a sample of) its
categorical values as a bag of tokens, and rank by TF-IDF cosine score —
the standard IR recipe Google Dataset Search popularized for tables.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercased alphanumeric tokens of *text*."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class KeywordHit:
    table_name: str
    score: float


@dataclass(frozen=True)
class CorpusStats:
    """Document-frequency statistics a TF-IDF score is computed against.

    Normally implicit (an index scores against its own corpus), made
    explicit so statistics can be *merged* across index shards —
    ``CorpusStats`` over a union of disjoint corpora is the sum of the
    per-shard stats (:meth:`merge`) — and *broadcast* back so each shard
    scores its local documents with global IDF.  A shard's score under
    the merged stats is bit-for-bit the score the single global index
    would compute, which is what makes scatter-gathered keyword results
    byte-identical to unsharded ones.
    """

    n_docs: int
    doc_freq: Counter

    @classmethod
    def merge(cls, parts: "list[CorpusStats]") -> "CorpusStats":
        """Sum per-shard statistics into the global corpus view."""
        doc_freq: Counter = Counter()
        n_docs = 0
        for part in parts:
            n_docs += part.n_docs
            doc_freq.update(part.doc_freq)
        return cls(n_docs=n_docs, doc_freq=doc_freq)


def table_token_counts(
    name: str,
    table: Table,
    description: Optional[str] = None,
    values_per_column: int = 50,
    unique_values: Optional[Dict[str, List]] = None,
) -> Counter:
    """The bag of tokens :class:`KeywordIndex` indexes for one table.

    Exposed separately so a catalog can compute (and persist) the token
    counts once at registration time and rehydrate the index later via
    :meth:`KeywordIndex.add_document` without re-reading the table.

    *unique_values* lets a caller that already holds each categorical
    column's sorted distinct values (``table.unique`` output — the
    artifact builder computes them for the joinability substrate anyway)
    share them instead of re-deriving per column.
    """
    tokens: List[str] = tokenize(name)
    if description:
        tokens += tokenize(description)
    for column in table.column_names:
        tokens += tokenize(column)
    for column in table.schema.categorical_names:
        if unique_values is not None and column in unique_values:
            distinct = unique_values[column]
        else:
            distinct = table.unique(column)
        for value in distinct[:values_per_column]:
            tokens += tokenize(str(value))
    return Counter(tokens)


class KeywordIndex:
    """TF-IDF index over table metadata."""

    def __init__(self, values_per_column: int = 50) -> None:
        if values_per_column < 0:
            raise SpecificationError("values_per_column must be >= 0")
        self.values_per_column = values_per_column
        self._docs: Dict[str, Counter] = {}
        self._doc_freq: Counter = Counter()

    def add_table(
        self, name: str, table: Table, description: Optional[str] = None
    ) -> None:
        """Index *table* under *name* with an optional free-text description."""
        self.add_document(
            name,
            table_token_counts(
                name, table, description, values_per_column=self.values_per_column
            ),
        )

    def add_document(self, name: str, token_counts: Counter) -> None:
        """Index precomputed token counts under *name* (warm path)."""
        if name in self._docs:
            raise SpecificationError(f"table {name!r} already indexed")
        counts = Counter(token_counts)
        self._docs[name] = counts
        for token in counts:
            self._doc_freq[token] += 1

    def remove_table(self, name: str) -> None:
        """Drop *name* and its document-frequency contributions."""
        if name not in self._docs:
            raise SpecificationError(f"table {name!r} is not indexed")
        for token in self._docs[name]:
            self._doc_freq[token] -= 1
            if self._doc_freq[token] <= 0:
                del self._doc_freq[token]
        del self._docs[name]

    def document(self, name: str) -> Counter:
        """The indexed token counts of *name* (for persistence)."""
        if name not in self._docs:
            raise SpecificationError(f"table {name!r} is not indexed")
        return Counter(self._docs[name])

    def corpus_stats(self) -> CorpusStats:
        """This index's document-frequency statistics (for scatter-gather)."""
        return CorpusStats(
            n_docs=len(self._docs), doc_freq=Counter(self._doc_freq)
        )

    def search(
        self, query: str, k: int = 10, stats: Optional[CorpusStats] = None
    ) -> List[KeywordHit]:
        """Top-*k* tables by TF-IDF cosine relevance to *query*.

        With *stats*, IDF comes from the given (e.g. merged-over-shards)
        corpus statistics instead of this index's own; each document's
        score is then exactly what a single index over the full corpus
        would compute for it.
        """
        if k < 1:
            raise SpecificationError("k must be >= 1")
        if not self._docs:
            raise EmptyInputError("no tables indexed")
        query_tokens = Counter(tokenize(query))
        if not query_tokens:
            raise SpecificationError("query contains no indexable tokens")
        if stats is None:
            n_docs, doc_freq = len(self._docs), self._doc_freq
        else:
            n_docs, doc_freq = stats.n_docs, stats.doc_freq
        results: List[KeywordHit] = []
        for name, doc in self._docs.items():
            score = 0.0
            doc_norm = 0.0
            for token, tf in doc.items():
                idf = math.log((1 + n_docs) / (1 + doc_freq[token])) + 1.0
                weight = (1 + math.log(tf)) * idf
                doc_norm += weight * weight
                if token in query_tokens:
                    query_weight = (1 + math.log(query_tokens[token])) * idf
                    score += weight * query_weight
            if score > 0 and doc_norm > 0:
                results.append(KeywordHit(name, score / math.sqrt(doc_norm)))
        results.sort(key=lambda hit: (-hit.score, hit.table_name))
        return results[:k]
