"""Table union search (Nargesian et al., VLDB 2018).

Two tables are unionable when their columns can be aligned so that each
aligned pair draws from the same domain.  We score column pairs by
(estimated or exact) Jaccard similarity of their value sets, then score a
table pair by the **optimal one-to-one column alignment** (assignment
problem over the pairwise scores, solved exactly with the Hungarian
algorithm) normalized by the query's column count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from respdi.discovery.lazo import LazoSketch
from respdi.discovery.minhash import MinHasher
from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


def column_unionability(a: set, b: set) -> float:
    """Exact Jaccard similarity of two value sets (0 when either empty)."""
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)


def table_unionability(
    query: Table,
    candidate: Table,
    columns: Optional[Sequence[str]] = None,
) -> Tuple[float, List[Tuple[str, str]]]:
    """Exact unionability score and the optimal column alignment.

    Only categorical columns participate (numeric columns union on type,
    which carries no evidence).  The score is the total Jaccard of the
    optimal alignment divided by the number of query columns considered,
    so it lies in [0, 1].
    """
    query_columns = list(columns) if columns else list(query.schema.categorical_names)
    candidate_columns = list(candidate.schema.categorical_names)
    if not query_columns:
        raise SpecificationError("query has no categorical columns to align")
    if not candidate_columns:
        return 0.0, []
    query_sets = {name: set(query.unique(name)) for name in query_columns}
    candidate_sets = {name: set(candidate.unique(name)) for name in candidate_columns}
    scores = np.zeros((len(query_columns), len(candidate_columns)))
    for i, qc in enumerate(query_columns):
        for j, cc in enumerate(candidate_columns):
            scores[i, j] = column_unionability(query_sets[qc], candidate_sets[cc])
    row_idx, col_idx = linear_sum_assignment(-scores)
    alignment = [
        (query_columns[i], candidate_columns[j])
        for i, j in zip(row_idx, col_idx)
        if scores[i, j] > 0
    ]
    total = float(scores[row_idx, col_idx].sum())
    return total / len(query_columns), alignment


@dataclass
class UnionCandidate:
    """One ranked result of a union search."""

    table_name: str
    score: float
    alignment: List[Tuple[str, str]]


class UnionSearch:
    """Sketch-based table union search over a registered corpus.

    Column value sets are summarized by :class:`LazoSketch`; candidate
    scoring mirrors :func:`table_unionability` but uses estimated Jaccard,
    so the index never rescans table contents at query time.
    """

    def __init__(
        self,
        num_hashes: int = 128,
        rng=None,
        hasher: Optional[MinHasher] = None,
    ) -> None:
        self.hasher = hasher if hasher is not None else MinHasher(num_hashes, rng)
        self._sketches: Dict[str, Dict[str, LazoSketch]] = {}

    def add_table(self, name: str, table: Table) -> None:
        sketches: Dict[str, LazoSketch] = {}
        for column in table.schema.categorical_names:
            values = table.unique(column)
            if values:
                sketches[column] = LazoSketch.build(values, self.hasher)
        self.add_sketches(name, sketches)

    def add_sketches(self, name: str, sketches: Dict[str, LazoSketch]) -> None:
        """Index *name* from already-built per-column sketches (warm path)."""
        if name in self._sketches:
            raise SpecificationError(f"table {name!r} already indexed")
        for column, sketch in sketches.items():
            if sketch.signature.hasher_id != self.hasher.hasher_id:
                raise SpecificationError(
                    f"sketch for column {column!r} comes from a different "
                    "MinHasher than this index's"
                )
        self._sketches[name] = dict(sketches)

    def remove_table(self, name: str) -> None:
        """Drop *name* from the index."""
        if name not in self._sketches:
            raise SpecificationError(f"table {name!r} is not indexed")
        del self._sketches[name]

    def column_sketches(self, name: str) -> Dict[str, LazoSketch]:
        """The per-column sketches indexed for *name* (for persistence)."""
        if name not in self._sketches:
            raise SpecificationError(f"table {name!r} is not indexed")
        return dict(self._sketches[name])

    def search(
        self, query: Table, k: int = 10, columns: Optional[Sequence[str]] = None
    ) -> List[UnionCandidate]:
        """Top-*k* unionable tables for *query*, scored by estimated
        optimal alignment."""
        if k < 1:
            raise SpecificationError("k must be >= 1")
        if not self._sketches:
            raise EmptyInputError("no tables indexed")
        query_columns = list(columns) if columns else list(query.schema.categorical_names)
        if not query_columns:
            raise SpecificationError("query has no categorical columns")
        query_sketches = {
            name: LazoSketch.build(query.unique(name), self.hasher)
            for name in query_columns
            if query.unique(name)
        }
        if not query_sketches:
            raise EmptyInputError("query columns are all empty")
        results: List[UnionCandidate] = []
        ordered_query = sorted(query_sketches)
        for table_name, column_sketches in self._sketches.items():
            if not column_sketches:
                continue
            ordered_candidate = sorted(column_sketches)
            scores = np.zeros((len(ordered_query), len(ordered_candidate)))
            for i, qc in enumerate(ordered_query):
                for j, cc in enumerate(ordered_candidate):
                    scores[i, j] = query_sketches[qc].estimate(
                        column_sketches[cc]
                    ).jaccard
            row_idx, col_idx = linear_sum_assignment(-scores)
            alignment = [
                (ordered_query[i], ordered_candidate[j])
                for i, j in zip(row_idx, col_idx)
                if scores[i, j] > 0
            ]
            score = float(scores[row_idx, col_idx].sum()) / len(query_columns)
            results.append(UnionCandidate(table_name, score, alignment))
        results.sort(key=lambda c: (-c.score, c.table_name))
        return results[:k]
