"""MinHash signatures for Jaccard estimation.

A :class:`MinHasher` owns ``k`` universal hash functions over the
Mersenne-prime field ``2^31 - 1``; :meth:`MinHasher.signature` maps a
value set to the elementwise minimum of each hash over the set.  For two
sets, the fraction of agreeing signature coordinates is an unbiased
estimator of their Jaccard similarity.  Signatures from the *same*
hasher are comparable; mixing hashers is a caller bug and is detected.

Values are first reduced to stable 32-bit integers with blake2b (the
builtin ``hash`` is salted per process, which would make signatures
non-reproducible across runs).  With 32-bit value hashes and 31-bit
coefficients every product fits in ``uint64``, so signing is fully
vectorized.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from respdi._rng import RngLike, ensure_rng
from respdi.errors import EmptyInputError, SpecificationError
from respdi.obs import timed
from respdi.table.hashing import minhash_mins, stable_hash32_array

_MERSENNE_PRIME = np.uint64((1 << 31) - 1)


def _stable_hash32(value: Hashable) -> int:
    """Deterministic 32-bit hash of a value (stable across processes).

    Scalar reference; batch signing goes through
    :func:`respdi.table.hashing.stable_hash32_array`, which is proven
    byte-identical to this by the differential suite.
    """
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class MinHashSignature:
    """A MinHash signature: coordinate minima plus the set cardinality."""

    values: np.ndarray
    cardinality: int
    hasher_id: int

    def __len__(self) -> int:
        return len(self.values)

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with *other*."""
        if self.hasher_id != other.hasher_id:
            raise SpecificationError(
                "signatures come from different MinHashers and are not comparable"
            )
        if len(self.values) != len(other.values):
            raise SpecificationError("signature lengths differ")
        return float((self.values == other.values).mean())


class MinHasher:
    """A family of ``num_hashes`` universal hash functions.

    ``h_i(x) = (a_i * stable32(x) + b_i) mod (2^31 - 1)``; coefficients
    are drawn from *rng* so experiments can fix a seed.
    """

    # itertools.count.__next__ is atomic under the GIL, so hashers built
    # concurrently (the threads backend) can never mint duplicate ids —
    # a duplicate would silently defeat the mixed-hasher comparison guard.
    _ids = itertools.count()

    def __init__(self, num_hashes: int = 128, rng: RngLike = None) -> None:
        if num_hashes < 1:
            raise SpecificationError("num_hashes must be >= 1")
        generator = ensure_rng(rng)
        self.num_hashes = num_hashes
        prime = int(_MERSENNE_PRIME)
        self._a = generator.integers(1, prime, size=num_hashes, dtype=np.uint64)
        self._b = generator.integers(0, prime, size=num_hashes, dtype=np.uint64)
        self.hasher_id = next(MinHasher._ids)

    @classmethod
    def from_coefficients(cls, a: np.ndarray, b: np.ndarray) -> "MinHasher":
        """Rebuild a hasher from persisted coefficient arrays.

        The reconstructed hasher produces signatures byte-identical to
        the original's, but carries a fresh ``hasher_id``: persisted
        signatures must be re-tagged with it on load (mixing ids is how
        cross-hasher comparison bugs are caught in memory).
        """
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.ndim != 1 or a.shape != b.shape or a.size < 1:
            raise SpecificationError(
                "coefficient arrays must be equal-length 1-D and non-empty"
            )
        prime = int(_MERSENNE_PRIME)
        if int(a.max()) >= prime or int(a.min()) < 1 or int(b.max()) >= prime:
            raise SpecificationError(
                "coefficients out of range for the 2^31 - 1 field"
            )
        hasher = cls.__new__(cls)
        hasher.num_hashes = int(a.size)
        hasher._a = a
        hasher._b = b
        hasher.hasher_id = next(MinHasher._ids)
        return hasher

    @property
    def coefficients(self) -> "tuple[np.ndarray, np.ndarray]":
        """Copies of the ``(a, b)`` coefficient arrays (for persistence)."""
        return self._a.copy(), self._b.copy()

    @property
    def fingerprint(self) -> str:
        """Stable blake2b hex digest of the coefficient arrays.

        Two hashers with equal fingerprints produce identical signatures
        for identical inputs, so persisted signatures are only loadable
        under a hasher whose fingerprint matches the one recorded at
        save time.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._a.tobytes())
        digest.update(self._b.tobytes())
        return digest.hexdigest()

    @timed("discovery.minhash.signature")
    def signature(self, values: Iterable[Hashable]) -> MinHashSignature:
        """Signature of the distinct values in *values*."""
        distinct = set(values)
        if not distinct:
            raise EmptyInputError("cannot sign an empty set")
        # Batched/memoized value hashing + chunked in-place transform;
        # a_i * h_j + b_i fits in uint64 (31 + 32 bits), and the minima
        # are bit-identical to the seed one-shot broadcast.
        hashes = stable_hash32_array(distinct)
        mins = minhash_mins(self._a, self._b, hashes)
        return MinHashSignature(
            mins, cardinality=len(distinct), hasher_id=self.hasher_id
        )
