"""Persistence for discovery sketches (``.npz``, byte-deterministic).

Persisted sketches must satisfy two properties a plain ``np.savez``
does not give:

* **determinism** — the catalog's integrity story is "blake2b checksums
  recorded in a manifest", which only works if the same arrays always
  produce the same bytes.  ``zipfile`` stamps the current mtime into
  every member, so :func:`save_npz` writes the zip container itself with
  a fixed timestamp (and ``np.load`` reads it back like any npz);
* **hasher binding** — a MinHash signature is meaningless without the
  hash family that produced it, so signature files embed the producing
  hasher's fingerprint and loading under a different hasher fails
  loudly instead of silently returning garbage similarities.

Keys (table/column identifiers) are JSON-encoded; tuples round-trip as
tuples.
"""

from __future__ import annotations

import io
import json
import zipfile
from typing import Dict, Hashable, Optional

import numpy as np

from respdi._fsutil import atomic_write_bytes
from respdi.discovery.lshensemble import LSHEnsemble
from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.errors import SpecificationError

#: Fixed ZIP member timestamp (the DOS-epoch floor) for reproducible bytes.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def save_npz(path, arrays: Dict[str, np.ndarray]) -> None:
    """Write *arrays* as a byte-deterministic, atomically-replaced ``.npz``.

    Members are written in sorted-name order with a fixed timestamp and
    no compression, so identical arrays yield identical file bytes in
    every process.  The result is readable with plain :func:`np.load`.
    """
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            member = io.BytesIO()
            np.lib.format.write_array(
                member, np.asarray(arrays[name]), allow_pickle=False
            )
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o644 << 16
            archive.writestr(info, member.getvalue())
    atomic_write_bytes(path, buffer.getvalue())


def load_npz(path) -> Dict[str, np.ndarray]:
    """Load every member of an ``.npz`` into a plain dict (no pickle)."""
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def _encode_keys(keys) -> str:
    """JSON-encode signature keys; tuples become tagged lists."""

    def encode(key: Hashable):
        if isinstance(key, tuple):
            return {"t": [encode(part) for part in key]}
        if key is None or isinstance(key, (str, int, float, bool)):
            return {"v": key}
        raise SpecificationError(
            f"signature key {key!r} is not JSON-serializable "
            "(expected str/int/float/bool/None or tuples thereof)"
        )

    return json.dumps([encode(key) for key in keys], sort_keys=True)


def _decode_keys(text: str) -> list:
    def decode(item):
        if "t" in item:
            return tuple(decode(part) for part in item["t"])
        return item["v"]

    return [decode(item) for item in json.loads(text)]


# -- MinHasher ---------------------------------------------------------------


def minhasher_to_npz(path, hasher: MinHasher) -> None:
    """Persist a hasher's coefficient arrays."""
    a, b = hasher.coefficients
    save_npz(path, {"a": a, "b": b})


def minhasher_from_npz(path) -> MinHasher:
    """Rebuild a hasher persisted by :func:`minhasher_to_npz`."""
    arrays = load_npz(path)
    if "a" not in arrays or "b" not in arrays:
        raise SpecificationError(f"{path} is not a persisted MinHasher")
    return MinHasher.from_coefficients(arrays["a"], arrays["b"])


# -- signatures --------------------------------------------------------------


def signatures_to_npz(
    path, signatures: Dict[Hashable, MinHashSignature], hasher: MinHasher
) -> None:
    """Persist a keyed family of signatures from one *hasher*."""
    save_npz(path, signatures_to_arrays(signatures, hasher))


def signatures_from_npz(path, hasher: MinHasher) -> Dict[Hashable, MinHashSignature]:
    """Load signatures, re-tagged with (and validated against) *hasher*."""
    arrays = load_npz(path)
    return signatures_from_arrays(arrays, hasher, source=str(path))


def signatures_from_arrays(
    arrays: Dict[str, np.ndarray], hasher: MinHasher, source: str = "<arrays>"
) -> Dict[Hashable, MinHashSignature]:
    """Rebuild signatures from the in-memory array dict of a signature npz."""
    try:
        keys = _decode_keys(str(arrays["keys_json"]))
        values = np.asarray(arrays["values"], dtype=np.uint64)
        cardinalities = np.asarray(arrays["cardinalities"], dtype=np.int64)
        fingerprint = str(arrays["hasher_fingerprint"])
    except KeyError as exc:
        raise SpecificationError(
            f"{source} is not a persisted signature family (missing {exc})"
        ) from None
    if fingerprint != hasher.fingerprint:
        raise SpecificationError(
            f"{source}: signatures were produced by a different MinHasher "
            f"(fingerprint {fingerprint} != {hasher.fingerprint})"
        )
    if values.ndim != 2 or values.shape[1] != hasher.num_hashes:
        raise SpecificationError(
            f"{source}: signature width {values.shape} does not match "
            f"num_hashes={hasher.num_hashes}"
        )
    if len(keys) != values.shape[0] or len(keys) != cardinalities.shape[0]:
        raise SpecificationError(f"{source}: key/signature count mismatch")
    return {
        key: MinHashSignature(
            values[i].copy(),
            cardinality=int(cardinalities[i]),
            hasher_id=hasher.hasher_id,
        )
        for i, key in enumerate(keys)
    }


def signatures_to_arrays(
    signatures: Dict[Hashable, MinHashSignature], hasher: MinHasher
) -> Dict[str, np.ndarray]:
    """The array dict :func:`signatures_to_npz` would write (for embedding
    signature families inside a larger npz, as catalog entries do)."""
    keys = list(signatures)
    for key in keys:
        if signatures[key].hasher_id != hasher.hasher_id:
            raise SpecificationError(
                f"signature {key!r} comes from a different MinHasher"
            )
    values = (
        np.stack([signatures[key].values for key in keys])
        if keys
        else np.empty((0, hasher.num_hashes), dtype=np.uint64)
    )
    return {
        "keys_json": np.array(_encode_keys(keys)),
        "values": values.astype(np.uint64),
        "cardinalities": np.array(
            [signatures[key].cardinality for key in keys], dtype=np.int64
        ),
        "hasher_fingerprint": np.array(hasher.fingerprint),
    }


# -- LSH Ensemble ------------------------------------------------------------


def lshensemble_to_npz(path, ensemble: LSHEnsemble) -> None:
    """Persist an ensemble: hasher coefficients, partitioning, signatures."""
    a, b = ensemble.hasher.coefficients
    arrays = signatures_to_arrays(ensemble.signatures, ensemble.hasher)
    arrays.update(
        {
            "a": a,
            "b": b,
            "num_partitions": np.array(ensemble.num_partitions, dtype=np.int64),
        }
    )
    save_npz(path, arrays)


def lshensemble_from_npz(path, hasher: Optional[MinHasher] = None) -> LSHEnsemble:
    """Rebuild (and freeze) a persisted ensemble.

    When *hasher* is given it must match the persisted coefficients;
    otherwise the embedded coefficients reconstruct the hasher.
    """
    arrays = load_npz(path)
    for required in ("a", "b", "num_partitions"):
        if required not in arrays:
            raise SpecificationError(f"{path} is not a persisted LSHEnsemble")
    if hasher is None:
        hasher = MinHasher.from_coefficients(arrays["a"], arrays["b"])
    signatures = signatures_from_arrays(arrays, hasher, source=str(path))
    ensemble = LSHEnsemble(
        hasher=hasher, num_partitions=int(arrays["num_partitions"])
    )
    for key, signature in signatures.items():
        ensemble.index_signature(key, signature)
    if signatures:
        ensemble.freeze()
    return ensemble
