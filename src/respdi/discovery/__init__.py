"""Dataset discovery over data lakes (tutorial §3.1).

Implements the search primitives the tutorial surveys:

* :mod:`respdi.discovery.minhash` — MinHash signatures and Jaccard
  estimation (the substrate for everything below);
* :mod:`respdi.discovery.lazo` — joint Jaccard + containment estimation
  from signatures and cardinalities (Fernandez et al., ICDE 2019);
* :mod:`respdi.discovery.lshensemble` — containment-threshold domain
  search with cardinality partitioning (Zhu et al., VLDB 2016);
* :mod:`respdi.discovery.unionsearch` — table union search by optimal
  column alignment (Nargesian et al., VLDB 2018);
* :mod:`respdi.discovery.joinability` — exact overlap top-k joinable
  column search via an inverted index (JOSIE-style, Zhu et al. 2019);
* :mod:`respdi.discovery.keyword` — IR-style keyword search over table
  metadata (Dataset-Search-style, Brickley et al. 2019);
* :mod:`respdi.discovery.correlation_sketches` — join-correlation
  estimation from coordinated key samples (Santos et al., SIGMOD 2021);
* :mod:`respdi.discovery.lake_index` — a facade combining the above,
  including *unbiased feature discovery* (§5): rank joinable features by
  target correlation while penalizing sensitive-attribute association;
* :mod:`respdi.discovery.serialize` — byte-deterministic ``.npz``
  persistence for hashers, signature families, and LSH ensembles (the
  substrate of :mod:`respdi.catalog` warm starts).
"""

from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.joinability import JoinabilityIndex
from respdi.discovery.keyword import KeywordIndex, table_token_counts
from respdi.discovery.lake_index import (
    DataLakeIndex,
    FeatureCandidate,
    TableArtifacts,
    build_table_artifacts,
)
from respdi.discovery.lazo import LazoEstimate, LazoSketch
from respdi.discovery.lshensemble import LSHEnsemble
from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.discovery.navigation import (
    LakeOrganization,
    NavigationResult,
    OrganizationNode,
)
from respdi.discovery.serialize import (
    load_npz,
    lshensemble_from_npz,
    lshensemble_to_npz,
    minhasher_from_npz,
    minhasher_to_npz,
    save_npz,
    signatures_from_npz,
    signatures_to_npz,
)
from respdi.discovery.unionsearch import (
    UnionSearch,
    column_unionability,
    table_unionability,
)

__all__ = [
    "MinHasher",
    "MinHashSignature",
    "LazoSketch",
    "LazoEstimate",
    "LSHEnsemble",
    "column_unionability",
    "table_unionability",
    "UnionSearch",
    "JoinabilityIndex",
    "KeywordIndex",
    "table_token_counts",
    "CorrelationSketch",
    "DataLakeIndex",
    "FeatureCandidate",
    "TableArtifacts",
    "build_table_artifacts",
    "LakeOrganization",
    "NavigationResult",
    "OrganizationNode",
    "save_npz",
    "load_npz",
    "minhasher_to_npz",
    "minhasher_from_npz",
    "signatures_to_npz",
    "signatures_from_npz",
    "lshensemble_to_npz",
    "lshensemble_from_npz",
]
