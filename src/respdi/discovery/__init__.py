"""Dataset discovery over data lakes (tutorial §3.1).

Implements the search primitives the tutorial surveys:

* :mod:`respdi.discovery.minhash` — MinHash signatures and Jaccard
  estimation (the substrate for everything below);
* :mod:`respdi.discovery.lazo` — joint Jaccard + containment estimation
  from signatures and cardinalities (Fernandez et al., ICDE 2019);
* :mod:`respdi.discovery.lshensemble` — containment-threshold domain
  search with cardinality partitioning (Zhu et al., VLDB 2016);
* :mod:`respdi.discovery.unionsearch` — table union search by optimal
  column alignment (Nargesian et al., VLDB 2018);
* :mod:`respdi.discovery.joinability` — exact overlap top-k joinable
  column search via an inverted index (JOSIE-style, Zhu et al. 2019);
* :mod:`respdi.discovery.keyword` — IR-style keyword search over table
  metadata (Dataset-Search-style, Brickley et al. 2019);
* :mod:`respdi.discovery.correlation_sketches` — join-correlation
  estimation from coordinated key samples (Santos et al., SIGMOD 2021);
* :mod:`respdi.discovery.lake_index` — a facade combining the above,
  including *unbiased feature discovery* (§5): rank joinable features by
  target correlation while penalizing sensitive-attribute association.
"""

from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.joinability import JoinabilityIndex
from respdi.discovery.keyword import KeywordIndex
from respdi.discovery.lake_index import DataLakeIndex, FeatureCandidate
from respdi.discovery.lazo import LazoEstimate, LazoSketch
from respdi.discovery.lshensemble import LSHEnsemble
from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.discovery.navigation import (
    LakeOrganization,
    NavigationResult,
    OrganizationNode,
)
from respdi.discovery.unionsearch import (
    UnionSearch,
    column_unionability,
    table_unionability,
)

__all__ = [
    "MinHasher",
    "MinHashSignature",
    "LazoSketch",
    "LazoEstimate",
    "LSHEnsemble",
    "column_unionability",
    "table_unionability",
    "UnionSearch",
    "JoinabilityIndex",
    "KeywordIndex",
    "CorrelationSketch",
    "DataLakeIndex",
    "FeatureCandidate",
    "LakeOrganization",
    "NavigationResult",
    "OrganizationNode",
]
