"""Lazo-style coupled estimation of Jaccard similarity and containment.

Fernandez et al. (ICDE 2019) observed that a MinHash signature plus the
exact set cardinality suffice to estimate *both* Jaccard similarity and
containment: from the Jaccard estimate ``J`` and cardinalities
``|A|, |B|`` the intersection is ``J * (|A| + |B|) / (1 + J)``, from
which containment in either direction follows.  This removes the need
for a separate containment sketch in data-lake search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from respdi.discovery.minhash import MinHasher, MinHashSignature
from respdi.errors import SpecificationError


@dataclass(frozen=True)
class LazoEstimate:
    """Joint similarity estimate between a query set A and candidate B."""

    jaccard: float
    intersection: float
    containment_of_query: float  # |A ∩ B| / |A|
    containment_of_candidate: float  # |A ∩ B| / |B|


@dataclass(frozen=True)
class LazoSketch:
    """MinHash signature plus exact cardinality for one value set."""

    signature: MinHashSignature
    cardinality: int

    @classmethod
    def build(cls, values: Iterable[Hashable], hasher: MinHasher) -> "LazoSketch":
        signature = hasher.signature(values)
        return cls(signature=signature, cardinality=signature.cardinality)

    def estimate(self, other: "LazoSketch") -> LazoEstimate:
        """Estimate Jaccard/containment between this sketch (query) and
        *other* (candidate)."""
        jaccard = self.signature.jaccard(other.signature)
        union_bound = self.cardinality + other.cardinality
        intersection = jaccard * union_bound / (1.0 + jaccard) if jaccard > 0 else 0.0
        # The estimator can slightly exceed the smaller cardinality due to
        # signature noise; clamp to the feasible region.
        intersection = min(
            intersection, float(self.cardinality), float(other.cardinality)
        )
        if self.cardinality <= 0 or other.cardinality <= 0:
            raise SpecificationError("sketch cardinalities must be positive")
        return LazoEstimate(
            jaccard=jaccard,
            intersection=intersection,
            containment_of_query=intersection / self.cardinality,
            containment_of_candidate=intersection / other.cardinality,
        )
