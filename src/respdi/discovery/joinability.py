"""Exact top-k joinable-column search via an inverted index (JOSIE-style).

Zhu et al. (SIGMOD 2019) search for joinable tables by exact overlap
between value sets, driven by an inverted index from values to the
columns containing them.  At our in-memory scale a full merge of the
query's posting lists is fast and exact, so we implement that directly:
the candidate scores arrive as exact intersection sizes, and top-k is a
partial sort.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table

ColumnRef = Tuple[str, str]  # (table name, column name)


@dataclass(frozen=True)
class JoinCandidate:
    """A joinable column and its exact overlap with the query set."""

    table_name: str
    column_name: str
    overlap: int
    containment_of_query: float


class JoinabilityIndex:
    """Inverted index ``value -> {column refs}`` over categorical columns."""

    def __init__(self) -> None:
        self._postings: Dict[Hashable, Set[ColumnRef]] = defaultdict(set)
        self._column_sizes: Dict[ColumnRef, int] = {}
        self._column_values: Dict[ColumnRef, Set[Hashable]] = {}

    def add_table(self, name: str, table: Table) -> None:
        """Index every categorical column of *table*."""
        for column in table.schema.categorical_names:
            self.add_column((name, column), set(table.unique(column)))

    def add_column(self, ref: ColumnRef, values: Iterable[Hashable]) -> None:
        """Index one column's distinct values under *ref* (warm path)."""
        if ref in self._column_sizes:
            raise SpecificationError(f"column {ref!r} already indexed")
        values = set(values)
        if not values:
            return
        self._column_sizes[ref] = len(values)
        self._column_values[ref] = values
        for value in values:
            self._postings[value].add(ref)

    def remove_table(self, name: str) -> None:
        """Drop every indexed column of table *name*."""
        refs = [ref for ref in self._column_sizes if ref[0] == name]
        for ref in refs:
            for value in self._column_values[ref]:
                postings = self._postings[value]
                postings.discard(ref)
                if not postings:
                    del self._postings[value]
            del self._column_sizes[ref]
            del self._column_values[ref]

    def column_values(self, ref: ColumnRef) -> Set[Hashable]:
        """The distinct values indexed under *ref* (for persistence)."""
        if ref not in self._column_values:
            raise SpecificationError(f"column {ref!r} is not indexed")
        return set(self._column_values[ref])

    @property
    def num_columns(self) -> int:
        return len(self._column_sizes)

    def query(
        self, values: Iterable[Hashable], k: int = 10, min_overlap: int = 1
    ) -> List[JoinCandidate]:
        """Top-*k* indexed columns by exact overlap with *values*."""
        if k < 1:
            raise SpecificationError("k must be >= 1")
        if min_overlap < 1:
            raise SpecificationError("min_overlap must be >= 1")
        query_set = set(values)
        if not query_set:
            raise EmptyInputError("query value set is empty")
        if not self._column_sizes:
            raise EmptyInputError("no columns indexed")
        overlap: Counter = Counter()
        for value in query_set:
            for ref in self._postings.get(value, ()):
                overlap[ref] += 1
        candidates = [
            JoinCandidate(
                table_name=ref[0],
                column_name=ref[1],
                overlap=count,
                containment_of_query=count / len(query_set),
            )
            for ref, count in overlap.items()
            if count >= min_overlap
        ]
        candidates.sort(
            key=lambda c: (-c.overlap, c.table_name, c.column_name)
        )
        return candidates[:k]
