"""A unified discovery facade over a registered data lake.

:class:`DataLakeIndex` combines the discovery primitives into the
interface a responsible-integration pipeline actually calls:

* keyword search over metadata;
* unionable-table search (sketch-based alignment);
* joinable-column search (exact overlap);
* containment-threshold domain search (LSH Ensemble);
* **unbiased feature discovery** (tutorial §5): rank joinable numeric
  features by estimated post-join correlation with the query's target
  while *penalizing* association with the query's sensitive attribute —
  "informative but not biased" made operational.

All sketch-based sub-indexes share one :class:`MinHasher`, so a table is
sketched exactly once.  The per-table sketch state is factored into
:class:`TableArtifacts` (built by :func:`build_table_artifacts`): the
cold path builds artifacts from a :class:`~respdi.table.Table` and
registers them; the warm path (:mod:`respdi.catalog`) deserializes the
same artifacts from disk and registers them without touching raw data —
which is what makes warm and cold query results identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, MutableMapping, Optional, Tuple

import numpy as np

from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.joinability import JoinabilityIndex, JoinCandidate
from respdi.discovery.keyword import KeywordHit, KeywordIndex, table_token_counts
from respdi.discovery.lazo import LazoSketch
from respdi.discovery.lshensemble import LSHEnsemble
from respdi.discovery.minhash import MinHasher
from respdi.discovery.unionsearch import UnionCandidate, UnionSearch
from respdi.errors import EmptyInputError, SpecificationError
from respdi.obs import counted, timed
from respdi.parallel import ExecutionContext, map_tables
from respdi.stats.dependence import correlation_ratio, pearson_correlation
from respdi.table import Table


@dataclass(frozen=True)
class FeatureCandidate:
    """A discovered joinable feature, scored for use and for bias."""

    table_name: str
    key_column: str
    feature_column: str
    estimated_target_correlation: float
    estimated_sensitive_association: float
    score: float
    sample_size: int


@dataclass
class TableArtifacts:
    """Everything the index keeps per registered table.

    ``column_values`` holds the distinct values of each non-empty
    categorical column (the exact joinability substrate);
    ``column_sketches`` the per-column Lazo sketches (union + containment
    search); ``token_counts`` the keyword document; ``feature_sketches``
    the per-(key column, feature column) correlation sketches.
    """

    name: str
    description: Optional[str]
    schema: List[Tuple[str, str]]
    row_count: int
    token_counts: Counter
    column_values: Dict[str, List[Hashable]]
    column_sketches: Dict[str, LazoSketch]
    feature_sketches: Dict[Tuple[str, str], CorrelationSketch] = field(
        default_factory=dict
    )


def build_table_artifacts(
    name: str,
    table: Table,
    description: Optional[str] = None,
    hasher: Optional[MinHasher] = None,
    sketch_size: int = 64,
    values_per_column: int = 50,
) -> TableArtifacts:
    """Sketch *table* once into the artifacts every sub-index consumes."""
    if hasher is None:
        raise SpecificationError("build_table_artifacts requires a hasher")
    # One `unique` pass per categorical column, shared by the keyword
    # document, the joinability substrate, and the Lazo sketches.
    unique_values: Dict[str, List[Hashable]] = {
        column: table.unique(column)
        for column in table.schema.categorical_names
    }
    token_counts = table_token_counts(
        name,
        table,
        description,
        values_per_column=values_per_column,
        unique_values=unique_values,
    )
    column_values: Dict[str, List[Hashable]] = {}
    column_sketches: Dict[str, LazoSketch] = {}
    for column, values in unique_values.items():
        if not values:
            continue
        column_values[column] = values
        column_sketches[column] = LazoSketch.build(values, hasher)
    feature_sketches: Dict[Tuple[str, str], CorrelationSketch] = {}
    for key_column in table.schema.categorical_names:
        keys = table.column(key_column)
        for feature_column in table.schema.numeric_names:
            values = table.column(feature_column)
            try:
                sketch = CorrelationSketch.build(keys, values, size=sketch_size)
            except EmptyInputError:
                continue
            feature_sketches[(key_column, feature_column)] = sketch
    return TableArtifacts(
        name=name,
        description=description,
        schema=[(spec.name, spec.ctype.value) for spec in table.schema],
        row_count=len(table),
        token_counts=token_counts,
        column_values=column_values,
        column_sketches=column_sketches,
        feature_sketches=feature_sketches,
    )


class _ArtifactTask:
    """Sketch one ``(name, table)`` pair into :class:`TableArtifacts`.

    A module-level class (not a closure) so the ``processes`` backend
    can pickle it; the shared hasher rides along by value, which is safe
    because signing only *reads* its coefficient arrays.
    """

    __slots__ = ("descriptions", "hasher", "sketch_size", "values_per_column")

    def __init__(self, descriptions, hasher, sketch_size, values_per_column):
        self.descriptions = descriptions
        self.hasher = hasher
        self.sketch_size = sketch_size
        self.values_per_column = values_per_column

    def __call__(self, name: str, table: Table) -> TableArtifacts:
        return build_table_artifacts(
            name,
            table,
            self.descriptions.get(name),
            hasher=self.hasher,
            sketch_size=self.sketch_size,
            values_per_column=self.values_per_column,
        )


class DataLakeIndex:
    """Register tables once; run every flavor of discovery against them."""

    def __init__(
        self,
        num_hashes: int = 128,
        sketch_size: int = 64,
        rng=None,
        num_partitions: int = 4,
        hasher: Optional[MinHasher] = None,
    ) -> None:
        self.hasher = hasher if hasher is not None else MinHasher(num_hashes, rng)
        self.keyword = KeywordIndex()
        self.joinability = JoinabilityIndex()
        self.union = UnionSearch(hasher=self.hasher)
        self.sketch_size = sketch_size
        self.num_partitions = num_partitions
        self.tables: MutableMapping[str, Table] = {}
        self._registered: Dict[str, TableArtifacts] = {}
        self._feature_sketches: Dict[Tuple[str, str, str], CorrelationSketch] = {}
        self._domain_signatures: Dict[Tuple[str, str], object] = {}
        self._containment: Optional[LSHEnsemble] = None

    @property
    def table_names(self) -> List[str]:
        """Registered table names, in registration order."""
        return list(self._registered)

    @property
    def domain_signatures(self) -> Dict[Tuple[str, str], object]:
        """``{(table, column): MinHashSignature}`` for every indexed domain.

        The substrate scatter-gather containment search scores shard-
        locally under a globally computed partition layout (see
        :func:`respdi.discovery.lshensemble.scatter_containment_hits`).
        """
        return dict(self._domain_signatures)

    def artifacts(self, name: str) -> TableArtifacts:
        """The artifacts registered for *name* (for persistence)."""
        if name not in self._registered:
            raise SpecificationError(f"table {name!r} is not registered")
        return self._registered[name]

    @timed("discovery.lake_index.register")
    def register(
        self, name: str, table: Table, description: Optional[str] = None
    ) -> None:
        """Add *table* to every sub-index (cold path: sketches it now)."""
        if name in self._registered:
            raise SpecificationError(f"table {name!r} already registered")
        artifacts = build_table_artifacts(
            name,
            table,
            description,
            hasher=self.hasher,
            sketch_size=self.sketch_size,
            values_per_column=self.keyword.values_per_column,
        )
        self.register_artifacts(artifacts, table=table)

    @timed("discovery.lake_index.register_tables")
    def register_tables(
        self,
        tables: Dict[str, Table],
        descriptions: Optional[Dict[str, str]] = None,
        context: Optional[ExecutionContext] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        """Bulk cold registration: sketch every table, fanning out per table.

        Sketching — the expensive part — runs under the resolved
        :class:`~respdi.parallel.ExecutionContext`; registration itself
        happens serially in input order, so the resulting index is
        identical to calling :meth:`register` in a loop whatever the
        backend (the engine's serial-equivalence contract).
        """
        descriptions = dict(descriptions or {})
        for name in tables:
            if name in self._registered:
                raise SpecificationError(f"table {name!r} already registered")
        task = _ArtifactTask(
            descriptions,
            self.hasher,
            self.sketch_size,
            self.keyword.values_per_column,
        )
        artifacts = map_tables(
            task,
            tables,
            context=context,
            n_jobs=n_jobs,
            label="discovery.lake_index.register_tables",
        )
        for name, table in tables.items():
            self.register_artifacts(artifacts[name], table=table)

    def register_artifacts(
        self, artifacts: TableArtifacts, table: Optional[Table] = None
    ) -> None:
        """Add a table from precomputed :class:`TableArtifacts` (warm path).

        When *table* is omitted the index serves every sketch-backed
        query; only :attr:`tables` (raw-data access) stays empty for it.
        """
        name = artifacts.name
        if name in self._registered:
            raise SpecificationError(f"table {name!r} already registered")
        self.keyword.add_document(name, artifacts.token_counts)
        for column, values in artifacts.column_values.items():
            self.joinability.add_column((name, column), values)
        self.union.add_sketches(name, artifacts.column_sketches)
        for column, sketch in artifacts.column_sketches.items():
            self._domain_signatures[(name, column)] = sketch.signature
        for (key_column, feature_column), sketch in artifacts.feature_sketches.items():
            self._feature_sketches[(name, key_column, feature_column)] = sketch
        self._registered[name] = artifacts
        self._containment = None
        if table is not None:
            self.tables[name] = table

    def unregister(self, name: str) -> None:
        """Remove *name* from every sub-index."""
        if name not in self._registered:
            raise SpecificationError(f"table {name!r} is not registered")
        artifacts = self._registered.pop(name)
        self.keyword.remove_table(name)
        self.joinability.remove_table(name)
        self.union.remove_table(name)
        for column in artifacts.column_sketches:
            del self._domain_signatures[(name, column)]
        for key_column, feature_column in artifacts.feature_sketches:
            del self._feature_sketches[(name, key_column, feature_column)]
        self._containment = None
        self.tables.pop(name, None)

    # -- search modes --------------------------------------------------------

    @counted("discovery.lake_index.keyword_queries")
    def keyword_search(self, query: str, k: int = 10) -> List[KeywordHit]:
        return self.keyword.search(query, k)

    @timed("discovery.lake_index.union_query")
    def unionable_tables(self, query: Table, k: int = 10) -> List[UnionCandidate]:
        return self.union.search(query, k)

    @timed("discovery.lake_index.join_query")
    def joinable_columns(
        self, values, k: int = 10, min_overlap: int = 1
    ) -> List[JoinCandidate]:
        return self.joinability.query(values, k, min_overlap)

    @timed("discovery.lake_index.containment_query")
    def containment_search(
        self, values, containment_threshold: float, k: Optional[int] = None
    ) -> List[Tuple[Tuple[str, str], float]]:
        """Columns whose domains contain the query set above the threshold.

        Returns ``[((table, column), estimated_containment)]`` sorted by
        estimate, descending.  The LSH Ensemble is rebuilt lazily from
        the shared-hasher domain signatures when the registered set has
        changed — partitioning is cheap, sketching is not, and the
        signatures are already in hand.
        """
        if not self._domain_signatures:
            raise EmptyInputError("no tables registered")
        if self._containment is None:
            ensemble = LSHEnsemble(
                hasher=self.hasher, num_partitions=self.num_partitions
            )
            for key, signature in self._domain_signatures.items():
                ensemble.index_signature(key, signature)
            ensemble.freeze()
            self._containment = ensemble
        hits = self._containment.query(values, containment_threshold)
        return hits[:k] if k is not None else hits

    @timed("discovery.lake_index.feature_query")
    def discover_features(
        self,
        query: Table,
        key_column: str,
        target_column: str,
        sensitive_column: Optional[str] = None,
        k: int = 10,
        bias_penalty: float = 1.0,
        min_sample: int = 3,
    ) -> List[FeatureCandidate]:
        """Unbiased feature discovery.

        For every registered (table, key, numeric feature) sketch, the
        candidate's retained keys are joined against the *local* query
        table (fully known, no sketching needed on the query side) to
        estimate, on that coordinated sample:

        * Pearson correlation between the feature and ``target_column``;
        * correlation ratio between the feature and ``sensitive_column``.

        Candidates are ranked by
        ``|target correlation| - bias_penalty * sensitive association``
        — the §5 "informative but not biased" objective.
        """
        query.schema.require([key_column, target_column])
        if not query.schema[target_column].is_numeric:
            raise SpecificationError("target_column must be numeric")
        if sensitive_column is not None:
            query.schema.require([sensitive_column])
        if bias_penalty < 0:
            raise SpecificationError("bias_penalty must be non-negative")

        target_by_key: Dict[Hashable, float] = {}
        sensitive_by_key: Dict[Hashable, Hashable] = {}
        key_values = query.column(key_column)
        target_values = np.asarray(query.column(target_column), dtype=float)
        sensitive_values = (
            query.column(sensitive_column) if sensitive_column else None
        )
        for i, key in enumerate(key_values):
            if key is None or np.isnan(target_values[i]):
                continue
            if key not in target_by_key:
                target_by_key[key] = target_values[i]
                if sensitive_values is not None:
                    sensitive_by_key[key] = sensitive_values[i]

        if not target_by_key:
            raise EmptyInputError("query has no usable (key, target) pairs")

        results: List[FeatureCandidate] = []
        for (name, cand_key, cand_feature), sketch in self._feature_sketches.items():
            pairs = [
                (key, value)
                for _, key, value in sketch.entries
                if key in target_by_key
            ]
            if len(pairs) < min_sample:
                continue
            feature_sample = np.array([value for _, value in pairs])
            target_sample = np.array([target_by_key[key] for key, _ in pairs])
            correlation = pearson_correlation(feature_sample, target_sample)
            if sensitive_column is not None:
                categories = [sensitive_by_key.get(key) for key, _ in pairs]
                association = correlation_ratio(categories, feature_sample)
            else:
                association = 0.0
            score = abs(correlation) - bias_penalty * association
            results.append(
                FeatureCandidate(
                    table_name=name,
                    key_column=cand_key,
                    feature_column=cand_feature,
                    estimated_target_correlation=correlation,
                    estimated_sensitive_association=association,
                    score=score,
                    sample_size=len(pairs),
                )
            )
        results.sort(key=lambda c: (-c.score, c.table_name, c.feature_column))
        return results[:k]
