"""A unified discovery facade over a registered data lake.

:class:`DataLakeIndex` combines the discovery primitives into the
interface a responsible-integration pipeline actually calls:

* keyword search over metadata;
* unionable-table search (sketch-based alignment);
* joinable-column search (exact overlap);
* **unbiased feature discovery** (tutorial §5): rank joinable numeric
  features by estimated post-join correlation with the query's target
  while *penalizing* association with the query's sensitive attribute —
  "informative but not biased" made operational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from respdi.discovery.correlation_sketches import CorrelationSketch
from respdi.discovery.joinability import JoinabilityIndex, JoinCandidate
from respdi.discovery.keyword import KeywordHit, KeywordIndex
from respdi.discovery.unionsearch import UnionCandidate, UnionSearch
from respdi.errors import EmptyInputError, SpecificationError
from respdi.obs import counted, timed
from respdi.stats.dependence import correlation_ratio, pearson_correlation
from respdi.table import Table


@dataclass(frozen=True)
class FeatureCandidate:
    """A discovered joinable feature, scored for use and for bias."""

    table_name: str
    key_column: str
    feature_column: str
    estimated_target_correlation: float
    estimated_sensitive_association: float
    score: float
    sample_size: int


class DataLakeIndex:
    """Register tables once; run every flavor of discovery against them."""

    def __init__(
        self,
        num_hashes: int = 128,
        sketch_size: int = 64,
        rng=None,
    ) -> None:
        self.keyword = KeywordIndex()
        self.joinability = JoinabilityIndex()
        self.union = UnionSearch(num_hashes=num_hashes, rng=rng)
        self.sketch_size = sketch_size
        self.tables: Dict[str, Table] = {}
        self._feature_sketches: Dict[Tuple[str, str, str], CorrelationSketch] = {}

    @timed("discovery.lake_index.register")
    def register(
        self, name: str, table: Table, description: Optional[str] = None
    ) -> None:
        """Add *table* to every sub-index."""
        if name in self.tables:
            raise SpecificationError(f"table {name!r} already registered")
        self.tables[name] = table
        self.keyword.add_table(name, table, description)
        self.joinability.add_table(name, table)
        self.union.add_table(name, table)
        for key_column in table.schema.categorical_names:
            keys = list(table.column(key_column))
            for feature_column in table.schema.numeric_names:
                values = list(table.column(feature_column))
                try:
                    sketch = CorrelationSketch.build(
                        keys, values, size=self.sketch_size
                    )
                except EmptyInputError:
                    continue
                self._feature_sketches[(name, key_column, feature_column)] = sketch

    # -- search modes --------------------------------------------------------

    @counted("discovery.lake_index.keyword_queries")
    def keyword_search(self, query: str, k: int = 10) -> List[KeywordHit]:
        return self.keyword.search(query, k)

    @timed("discovery.lake_index.union_query")
    def unionable_tables(self, query: Table, k: int = 10) -> List[UnionCandidate]:
        return self.union.search(query, k)

    @timed("discovery.lake_index.join_query")
    def joinable_columns(
        self, values, k: int = 10, min_overlap: int = 1
    ) -> List[JoinCandidate]:
        return self.joinability.query(values, k, min_overlap)

    @timed("discovery.lake_index.feature_query")
    def discover_features(
        self,
        query: Table,
        key_column: str,
        target_column: str,
        sensitive_column: Optional[str] = None,
        k: int = 10,
        bias_penalty: float = 1.0,
        min_sample: int = 3,
    ) -> List[FeatureCandidate]:
        """Unbiased feature discovery.

        For every registered (table, key, numeric feature) sketch, the
        candidate's retained keys are joined against the *local* query
        table (fully known, no sketching needed on the query side) to
        estimate, on that coordinated sample:

        * Pearson correlation between the feature and ``target_column``;
        * correlation ratio between the feature and ``sensitive_column``.

        Candidates are ranked by
        ``|target correlation| - bias_penalty * sensitive association``
        — the §5 "informative but not biased" objective.
        """
        query.schema.require([key_column, target_column])
        if not query.schema[target_column].is_numeric:
            raise SpecificationError("target_column must be numeric")
        if sensitive_column is not None:
            query.schema.require([sensitive_column])
        if bias_penalty < 0:
            raise SpecificationError("bias_penalty must be non-negative")

        target_by_key: Dict[Hashable, float] = {}
        sensitive_by_key: Dict[Hashable, Hashable] = {}
        key_values = query.column(key_column)
        target_values = np.asarray(query.column(target_column), dtype=float)
        sensitive_values = (
            query.column(sensitive_column) if sensitive_column else None
        )
        for i, key in enumerate(key_values):
            if key is None or np.isnan(target_values[i]):
                continue
            if key not in target_by_key:
                target_by_key[key] = target_values[i]
                if sensitive_values is not None:
                    sensitive_by_key[key] = sensitive_values[i]

        if not target_by_key:
            raise EmptyInputError("query has no usable (key, target) pairs")

        results: List[FeatureCandidate] = []
        for (name, cand_key, cand_feature), sketch in self._feature_sketches.items():
            pairs = [
                (key, value)
                for _, key, value in sketch.entries
                if key in target_by_key
            ]
            if len(pairs) < min_sample:
                continue
            feature_sample = np.array([value for _, value in pairs])
            target_sample = np.array([target_by_key[key] for key, _ in pairs])
            correlation = pearson_correlation(feature_sample, target_sample)
            if sensitive_column is not None:
                categories = [sensitive_by_key.get(key) for key, _ in pairs]
                association = correlation_ratio(categories, feature_sample)
            else:
                association = 0.0
            score = abs(correlation) - bias_penalty * association
            results.append(
                FeatureCandidate(
                    table_name=name,
                    key_column=cand_key,
                    feature_column=cand_feature,
                    estimated_target_correlation=correlation,
                    estimated_sensitive_association=association,
                    score=score,
                    sample_size=len(pairs),
                )
            )
        results.sort(key=lambda c: (-c.score, c.table_name, c.feature_column))
        return results[:k]
