"""Data-lake organization for navigation (Nargesian et al., SIGMOD 2020).

The tutorial's §3.1 lists, as the complement to point-query search,
*navigation in a hierarchical structure*: organize the lake's tables
into a tree of progressively narrower topics so a user (or an agent)
can find relevant tables by descending a few levels instead of scanning
everything.

Implementation: each table is summarized by the value-set of its
categorical columns; tables are grouped bottom-up by average-linkage
agglomerative clustering under Jaccard distance; internal nodes carry
the union of their descendants' values.  Navigation greedily descends
toward the child whose value set best contains the query — the expected
number of *table signatures touched* is the efficiency metric, compared
against the linear scan a flat lake requires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Table


@dataclass
class OrganizationNode:
    """One node of the navigation tree."""

    node_id: int
    values: Set[Hashable]
    table_name: Optional[str] = None  # set on leaves
    children: List["OrganizationNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.table_name is not None

    def leaves(self) -> List["OrganizationNode"]:
        if self.is_leaf:
            return [self]
        out: List["OrganizationNode"] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


def _jaccard(a: Set, b: Set) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass
class NavigationResult:
    """Outcome of one navigation session."""

    found: Optional[str]
    nodes_touched: int
    path: List[int]


class LakeOrganization:
    """A navigable (binary) hierarchy over registered tables.

    A binary merge tree keeps every navigation step at two signature
    comparisons, so a session touches ``O(log n)`` signatures versus the
    flat scan's ``n`` — the organization benefit the paper measures.
    """

    def __init__(self) -> None:
        self._signatures: Dict[str, Set[Hashable]] = {}
        self.root: Optional[OrganizationNode] = None

    def register(self, name: str, table: Table) -> None:
        if name in self._signatures:
            raise SpecificationError(f"table {name!r} already registered")
        values: Set[Hashable] = set()
        for column in table.schema.categorical_names:
            values.update(table.unique(column))
        if not values:
            raise SpecificationError(
                f"table {name!r} has no categorical values to organize by"
            )
        self._signatures[name] = values
        self.root = None  # invalidate any built tree

    def build(self) -> OrganizationNode:
        """Agglomerative clustering into a binary merge tree.

        Repeatedly merges the closest pair of clusters (Jaccard of their
        value unions), so topically related tables end up under shared
        ancestors whose value sets summarize the subtree.
        """
        if not self._signatures:
            raise EmptyInputError("no tables registered")
        counter = itertools.count()
        clusters: List[OrganizationNode] = [
            OrganizationNode(next(counter), set(values), table_name=name)
            for name, values in sorted(self._signatures.items())
        ]
        while len(clusters) > 1:
            best_pair: Optional[Tuple[int, int]] = None
            best_similarity = -1.0
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    similarity = _jaccard(clusters[i].values, clusters[j].values)
                    if similarity > best_similarity:
                        best_similarity = similarity
                        best_pair = (i, j)
            i, j = best_pair  # type: ignore[misc]
            merged = OrganizationNode(
                next(counter),
                clusters[i].values | clusters[j].values,
                children=[clusters[i], clusters[j]],
            )
            clusters = (
                [c for k, c in enumerate(clusters) if k not in (i, j)] + [merged]
            )
        self.root = clusters[0]
        return self.root

    # -- navigation ------------------------------------------------------------

    def navigate(
        self, query_values: Sequence[Hashable], min_overlap: float = 0.05
    ) -> NavigationResult:
        """Greedy descent toward the leaf best containing the query.

        At each internal node, the child with the highest containment of
        the query is entered (touching one signature per child
        considered); descent stops at a leaf, or early when no child
        reaches *min_overlap* containment.
        """
        if self.root is None:
            self.build()
        query = set(query_values)
        if not query:
            raise SpecificationError("query values must be non-empty")
        node = self.root
        touched = 1
        path = [node.node_id]
        while not node.is_leaf:
            scored = []
            for child in node.children:
                touched += 1
                containment = len(query & child.values) / len(query)
                scored.append((containment, child))
            scored.sort(key=lambda item: (-item[0], item[1].node_id))
            best_containment, best_child = scored[0]
            if best_containment < min_overlap:
                return NavigationResult(found=None, nodes_touched=touched, path=path)
            node = best_child
            path.append(node.node_id)
        return NavigationResult(
            found=node.table_name, nodes_touched=touched, path=path
        )

    def linear_scan(self, query_values: Sequence[Hashable]) -> Tuple[str, int]:
        """Baseline: check every table; returns (best table, tables touched)."""
        query = set(query_values)
        if not query:
            raise SpecificationError("query values must be non-empty")
        if not self._signatures:
            raise EmptyInputError("no tables registered")
        best_name = None
        best_containment = -1.0
        for name, values in sorted(self._signatures.items()):
            containment = len(query & values) / len(query)
            if containment > best_containment:
                best_containment = containment
                best_name = name
        return best_name, len(self._signatures)
