"""Sample debiasing for open-world / unbiased query answering (§5).

The tutorial's §5 highlights *fairness-aware query answering*: "in the
open-world query answering, the database is considered as a sample ...
aggregates and approximate results are calculated as if the queries were
issued on the true population" (Themis; Orr, Balazinska, Suciu 2020).
This package implements the survey-statistics machinery that makes that
possible when population margins are known:

* :func:`post_stratification_weights` — exact reweighting when the full
  joint population distribution over the strata is known;
* :func:`raking_weights` — iterative proportional fitting (raking) when
  only *marginal* population distributions are known, the standard
  remedy for unit non-response the tutorial cites in §2.1;
* :class:`WeightedQuery` — COUNT/SUM/AVG/fraction aggregates under row
  weights, so debiased answers drop out of ordinary queries.
"""

from respdi.debiasing.queries import WeightedQuery
from respdi.debiasing.weights import (
    effective_sample_size,
    post_stratification_weights,
    raking_weights,
)

__all__ = [
    "post_stratification_weights",
    "raking_weights",
    "effective_sample_size",
    "WeightedQuery",
]
