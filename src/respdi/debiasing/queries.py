"""Weighted aggregate queries over a debiased table."""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from respdi.errors import EmptyInputError, SpecificationError
from respdi.table import Predicate, Table


class WeightedQuery:
    """Aggregates under row weights: population estimates from a biased
    sample.

    ``COUNT``/``fraction`` answer "how much of the population satisfies
    this predicate"; ``SUM``/``AVG`` estimate population totals and means
    of a numeric column, optionally restricted by a predicate.
    """

    def __init__(self, table: Table, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(table),):
            raise SpecificationError(
                f"{len(weights)} weights for {len(table)} rows"
            )
        if (weights < 0).any():
            raise SpecificationError("weights must be non-negative")
        if weights.sum() <= 0:
            raise SpecificationError("weights sum to zero")
        self.table = table
        self.weights = weights

    def _mask(self, predicate: Optional[Predicate]) -> np.ndarray:
        if predicate is None:
            return np.ones(len(self.table), dtype=bool)
        return predicate.mask(self.table)

    def fraction(self, predicate: Predicate) -> float:
        """Estimated population fraction satisfying *predicate*."""
        mask = self._mask(predicate)
        return float(self.weights[mask].sum() / self.weights.sum())

    def count(self, predicate: Optional[Predicate] = None) -> float:
        """Estimated population count, scaled to the sample size (i.e.
        ``fraction * len(table)``; callers knowing the true population
        size N can multiply by ``N / len(table)``)."""
        mask = self._mask(predicate)
        return float(self.weights[mask].sum() / self.weights.mean())

    def sum(self, column: str, predicate: Optional[Predicate] = None) -> float:
        """Estimated (sample-scaled) population total of *column*."""
        values = np.asarray(self.table.column(column), dtype=float)
        mask = self._mask(predicate) & ~np.isnan(values)
        return float((self.weights[mask] * values[mask]).sum() / self.weights.mean())

    def avg(self, column: str, predicate: Optional[Predicate] = None) -> float:
        """Estimated population mean of *column* (weighted mean)."""
        values = np.asarray(self.table.column(column), dtype=float)
        mask = self._mask(predicate) & ~np.isnan(values)
        weight_total = self.weights[mask].sum()
        if weight_total <= 0:
            raise EmptyInputError("no weighted rows satisfy the predicate")
        return float((self.weights[mask] * values[mask]).sum() / weight_total)

    def group_avg(
        self, column: str, group_columns: Sequence[str]
    ) -> Dict[Tuple[Hashable, ...], float]:
        """Per-group weighted means (for group-fair reporting)."""
        out: Dict[Tuple[Hashable, ...], float] = {}
        for key, idx in self.table.group_indices(list(group_columns)).items():
            values = np.asarray(self.table.column(column), dtype=float)[idx]
            weights = self.weights[idx]
            present = ~np.isnan(values)
            weight_total = weights[present].sum()
            if weight_total > 0:
                out[key] = float(
                    (weights[present] * values[present]).sum() / weight_total
                )
        return out
