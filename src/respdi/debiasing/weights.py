"""Debiasing weights: post-stratification and raking.

Both methods assign each row a weight such that the *weighted* empirical
distribution of chosen categorical attributes matches a known population
distribution.  Aggregates computed under these weights estimate
population aggregates even though the sample itself is skewed — the
mechanism behind Themis-style open-world query answering and the survey
non-response corrections the tutorial cites (Holt & Elliot 1991).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence, Tuple

import numpy as np

from respdi.errors import ConvergenceError, EmptyInputError, SpecificationError
from respdi.stats.divergence import normalize_distribution
from respdi.table import Table

Group = Tuple[Hashable, ...]


def post_stratification_weights(
    table: Table,
    attributes: Sequence[str],
    population: Mapping[Group, float],
) -> np.ndarray:
    """Weights making the weighted joint distribution over *attributes*
    equal the *population* joint distribution.

    Each row of stratum ``g`` gets weight ``P_pop(g) / P_sample(g)``
    (normalized to mean 1).  Requires every population stratum with
    positive mass to appear in the sample — a stratum with no sampled
    rows cannot be reweighted into existence (callers should collect
    more data instead; see :mod:`respdi.tailoring`).
    """
    attributes = list(attributes)
    if not attributes:
        raise SpecificationError("need at least one stratification attribute")
    population = normalize_distribution(dict(population))
    counts = table.group_counts(attributes)
    n = len(table)
    if n == 0:
        raise EmptyInputError("cannot weight an empty table")
    missing = [g for g, p in population.items() if p > 0 and g not in counts]
    if missing:
        raise SpecificationError(
            f"population strata absent from the sample: "
            f"{sorted(missing, key=repr)[:5]}; reweighting cannot fix "
            "zero support — collect data for them first"
        )
    ratio: Dict[Group, float] = {}
    for group, count in counts.items():
        sample_share = count / n
        ratio[group] = population.get(group, 0.0) / sample_share
    arrays = [table.column(name) for name in attributes]
    weights = np.empty(n)
    for i in range(n):
        weights[i] = ratio[tuple(array[i] for array in arrays)]
    mean = weights.mean()
    if mean <= 0:
        raise SpecificationError(
            "population assigns zero mass to every sampled stratum"
        )
    return weights / mean


def raking_weights(
    table: Table,
    marginals: Mapping[str, Mapping[Hashable, float]],
    max_iterations: int = 200,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Iterative proportional fitting: weights whose *marginal* weighted
    distributions match each attribute's population marginal.

    Classic raking: cycle over the attributes, each time rescaling the
    weights within each value class so that class's weighted share equals
    its population share; repeat until every marginal matches within
    *tolerance* (total variation).  Converges whenever a feasible joint
    exists (the sample supports every positive-mass value).
    """
    if not marginals:
        raise SpecificationError("need at least one marginal")
    n = len(table)
    if n == 0:
        raise EmptyInputError("cannot weight an empty table")
    targets: Dict[str, Dict[Hashable, float]] = {}
    columns: Dict[str, np.ndarray] = {}
    for attribute, marginal in marginals.items():
        table.schema.require([attribute])
        targets[attribute] = normalize_distribution(dict(marginal))
        columns[attribute] = table.column(attribute)
        observed = set(table.unique(attribute))
        missing = [
            value
            for value, share in targets[attribute].items()
            if share > 0 and value not in observed
        ]
        if missing:
            raise SpecificationError(
                f"marginal values absent from the sample for "
                f"{attribute!r}: {sorted(missing, key=repr)[:5]}"
            )

    weights = np.ones(n)
    for _ in range(max_iterations):
        for attribute, target in targets.items():
            column = columns[attribute]
            total = weights.sum()
            for value, share in target.items():
                mask = column == value
                current = weights[mask].sum() / total
                if current > 0 and share > 0:
                    weights[mask] *= share / current
                elif share == 0:
                    weights[mask] = 0.0
        # Convergence is judged on ALL marginals after the full cycle:
        # updating a later attribute perturbs the earlier ones.
        total = weights.sum()
        worst_gap = 0.0
        for attribute, target in targets.items():
            column = columns[attribute]
            gap = sum(
                abs(weights[column == value].sum() / total - share)
                for value, share in target.items()
            )
            worst_gap = max(worst_gap, gap)
        if worst_gap < tolerance:
            return weights / weights.mean()
    raise ConvergenceError(
        f"raking did not converge in {max_iterations} iterations "
        f"(residual {worst_gap:.3g}); marginals may be jointly infeasible"
    )


def effective_sample_size(weights: Sequence[float]) -> float:
    """Kish effective sample size ``(Σw)² / Σw²``.

    Heavily skewed weights mean the debiased estimate behaves like one
    from a much smaller sample — the variance cost of debiasing, worth
    surfacing on any nutritional label.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        raise EmptyInputError("no weights")
    if (weights < 0).any():
        raise SpecificationError("weights must be non-negative")
    denominator = float((weights**2).sum())
    if denominator == 0:
        raise SpecificationError("all weights are zero")
    return float(weights.sum() ** 2 / denominator)
