"""Compatibility shim: the library lives in :mod:`respdi`.

The distribution is named ``repro`` (pre-existing scaffold); importing
``repro`` re-exports the :mod:`respdi` public API.
"""

from respdi import *  # noqa: F401,F403
from respdi import __version__  # noqa: F401
