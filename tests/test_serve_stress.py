"""Concurrency stress for the socket serve path: shed load, stay fair.

Many clients, several tenants, one server with per-tenant quotas and a
bounded inflight gate.  The contracts under load:

* **ledger balance** — admitted + rejected == received, per tenant and
  globally: whatever the interleaving, no request is lost or
  double-counted;
* **quota enforcement** — the throttled tenant actually sees
  ``overloaded`` rejections with usable ``retry_after_ms`` hints, while
  unthrottled tenants are *never* quota-rejected;
* **fairness/latency** — well-behaved tenants keep a bounded p99 while
  the noisy tenant hammers (a generous gate that catches convoys, not
  scheduler jitter);
* **correctness under load** — every successful response is one of the
  known-good rendered answers, bad lines stay in-band, and the server
  survives to answer a final ``stats``.

The ≥100-client matrix is ``slow``-marked; a short smoke version runs
in the default suite.
"""

import json
import socket
import threading
import time

import pytest

from respdi.catalog import CatalogStore
from respdi.service import (
    AdmissionController,
    QueryService,
    SocketQueryServer,
    handle_request,
)
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)

#: Catches a well-behaved tenant blocked behind the noisy one (convoy),
#: not scheduler noise.
P99_GATE_SECONDS = 2.0

QUERIES = [
    {"op": "keyword", "text": "alpha", "k": 3},
    {"op": "keyword", "text": "beta", "k": 3},
    {"op": "join", "values": ["a_1", "b_2"], "k": 3},
]


def _tables():
    out = {}
    for tag in ("alpha", "beta", "gamma"):
        rows = [(f"{tag[0]}_{i}", float(i)) for i in range(8)]
        out[tag] = Table.from_rows(SCHEMA, rows)
    return out


def _known_good(catalog_dir):
    service = QueryService(catalog_dir, cache_size=0)
    return {
        json.dumps(
            handle_request(service, query)["results"], sort_keys=True
        )
        for query in QUERIES
    }


def _client(address, tenant, requests, outcomes, latencies, errors):
    try:
        with socket.create_connection(address, timeout=30) as conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for index in range(requests):
                request = dict(QUERIES[index % len(QUERIES)], tenant=tenant)
                started = time.perf_counter()
                writer.write(json.dumps(request) + "\n")
                writer.flush()
                response = json.loads(reader.readline())
                latencies.append(time.perf_counter() - started)
                if response.get("ok"):
                    outcomes.append(("ok", response))
                elif response.get("error") == "overloaded":
                    assert response["retry_after_ms"] >= 1
                    outcomes.append(("shed", response))
                    time.sleep(
                        min(response["retry_after_ms"], 20) / 1000.0
                    )
                else:
                    raise AssertionError(f"unexpected response: {response}")
    except Exception as exc:  # noqa: BLE001 - collected for the assert
        errors.append(exc)


def _run_stress(tmp_path, clients, requests_each, noisy_share):
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _tables(), **OPTS)
    known_good = _known_good(catalog_dir)

    service = QueryService(catalog_dir, cache_size=64)
    admission = AdmissionController(
        max_inflight=16,
        quotas={"noisy": (50.0, 5.0)},  # tight enough to shed under load
    )
    server = SocketQueryServer(service, admission=admission)
    server.start()

    per_tenant_outcomes = {"noisy": [], "polite": []}
    per_tenant_latencies = {"noisy": [], "polite": []}
    errors = []
    threads = []
    for index in range(clients):
        tenant = "noisy" if index < clients * noisy_share else "polite"
        threads.append(
            threading.Thread(
                target=_client,
                args=(
                    server.address,
                    tenant,
                    requests_each,
                    per_tenant_outcomes[tenant],
                    per_tenant_latencies[tenant],
                    errors,
                ),
            )
        )
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []

        # Ledger balance, per tenant and globally.
        stats = admission.stats()
        for tenant, row in stats["tenants"].items():
            assert (
                row["admitted"]
                + row["rejected_quota"]
                + row["rejected_inflight"]
                == row["received"]
            ), tenant
        totals = stats["totals"]
        assert (
            totals["admitted"]
            + totals["rejected_quota"]
            + totals["rejected_inflight"]
            == totals["received"]
        )
        # Every request a client sent was received by admission.
        sent = sum(
            len(outcomes) for outcomes in per_tenant_outcomes.values()
        )
        assert totals["received"] == sent

        # The noisy tenant was actually shed; polite never quota-shed.
        assert stats["tenants"]["noisy"]["rejected_quota"] > 0
        assert stats["tenants"]["polite"]["rejected_quota"] == 0

        # Correctness under load: every ok answer is a known-good one.
        for outcomes in per_tenant_outcomes.values():
            for kind, response in outcomes:
                if kind == "ok":
                    rendered = json.dumps(
                        response["results"], sort_keys=True
                    )
                    assert rendered in known_good

        # Fairness: the polite tenant's p99 stays bounded.
        polite = sorted(per_tenant_latencies["polite"])
        assert polite, "polite tenant never completed a request"
        p99 = polite[max(1, -(-99 * len(polite) // 100)) - 1]
        assert p99 < P99_GATE_SECONDS, f"polite p99 {p99:.3f}s"

        # The server is still healthy enough to answer stats in-band.
        with socket.create_connection(server.address, timeout=10) as conn:
            conn.sendall(b'{"op": "stats"}\n')
            report = json.loads(
                conn.makefile("r", encoding="utf-8").readline()
            )
        assert report["ok"]
        assert report["stats"]["admission"]["totals"]["received"] == sent
        assert report["stats"]["latency"]["tenant.polite"]["count"] > 0
        assert server.connections_accepted >= clients  # + the stats conn
    finally:
        server.stop()
    return stats


def test_serve_stress_smoke(tmp_path):
    _run_stress(tmp_path, clients=12, requests_each=6, noisy_share=0.5)


@pytest.mark.slow
def test_serve_stress_hundred_clients(tmp_path):
    stats = _run_stress(
        tmp_path, clients=100, requests_each=8, noisy_share=0.4
    )
    # At this scale the inflight gate engages too (16 slots, 100 clients):
    # both shedding mechanisms are exercised, not just quotas.
    assert stats["totals"]["received"] >= 800
    assert stats["peak_inflight"] <= 16
