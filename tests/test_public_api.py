"""Public API integrity: every subpackage imports, __all__ resolves."""

import importlib

import pytest

SUBPACKAGES = [
    "respdi",
    "respdi.table",
    "respdi.stats",
    "respdi.datagen",
    "respdi.requirements",
    "respdi.catalog",
    "respdi.discovery",
    "respdi.profiling",
    "respdi.coverage",
    "respdi.cleaning",
    "respdi.sampling",
    "respdi.tailoring",
    "respdi.entitycollection",
    "respdi.acquisition",
    "respdi.fairqueries",
    "respdi.debiasing",
    "respdi.linkage",
    "respdi.ml",
    "respdi.faults",
    "respdi.parallel",
    "respdi.pipeline",
    "respdi.service",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_imports_and_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version_exposed():
    import respdi

    assert isinstance(respdi.__version__, str)
    assert respdi.__version__.count(".") == 2


def test_repro_shim_reexports():
    import repro
    import respdi

    assert repro.__version__ == respdi.__version__
    assert repro.Table is respdi.Table
    assert repro.ResponsibleIntegrationPipeline is (
        respdi.ResponsibleIntegrationPipeline
    )


def test_every_public_callable_has_a_docstring():
    """Deliverable (e): doc comments on every public item."""
    missing = []
    for module_name in SUBPACKAGES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            item = getattr(module, name)
            if not callable(item):
                continue
            if not getattr(item, "__module__", "").startswith("respdi"):
                continue  # typing aliases and re-exported builtins
            if not (item.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
    assert missing == [], f"public items without docstrings: {missing}"
