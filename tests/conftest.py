"""Shared fixtures for the respdi test suite."""

import numpy as np
import pytest

from respdi.datagen.population import default_health_population
from respdi.table import Schema, Table


@pytest.fixture
def small_schema():
    return Schema([("race", "categorical"), ("gender", "categorical"), ("age", "numeric")])


@pytest.fixture
def small_table(small_schema):
    rows = [
        ("white", "F", 34.0),
        ("white", "M", 51.0),
        ("black", "F", 28.0),
        ("black", "M", 45.0),
        ("white", "F", 62.0),
        ("black", "F", None),
        (None, "M", 40.0),
    ]
    return Table.from_rows(small_schema, rows)


@pytest.fixture
def health_population():
    return default_health_population(minority_fraction=0.2)


@pytest.fixture
def health_table(health_population):
    return health_population.sample(600, rng=np.random.default_rng(11))


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
