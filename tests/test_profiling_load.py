"""profiling.load: JSON artifacts round-trip back into objects."""

import json

import pytest

from respdi.profiling import (
    EXPORT_SCHEMA_VERSION,
    build_datasheet,
    build_nutritional_label,
    dict_to_audit,
    dict_to_datasheet,
    dict_to_label,
    dict_to_profile,
    dump_json,
    label_to_dict,
    load_artifact,
    load_json,
    profile_to_dict,
    profile_table,
)
from respdi.errors import SpecificationError
from respdi.profiling.datasheets import Datasheet
from respdi.profiling.labels import NutritionalLabel
from respdi.requirements import (
    AuditReport,
    CompletenessCorrectnessRequirement,
    audit_requirements,
)


@pytest.fixture
def label(small_table):
    return build_nutritional_label(small_table, ["race"], target_column="age")


def test_profile_roundtrip(small_table):
    profile = profile_table(small_table)
    loaded = dict_to_profile(profile_to_dict(profile))
    assert loaded.row_count == profile.row_count
    assert list(loaded.columns) == list(profile.columns)
    for name in profile.columns:
        original, restored = profile.columns[name], loaded.columns[name]
        assert restored.ctype == original.ctype
        assert restored.missing_count == original.missing_count
        assert restored.distinct_count == original.distinct_count
        assert restored.top_values == original.top_values
    assert loaded.complete_row_fraction == profile.complete_row_fraction


def test_label_roundtrip_renders_identically(tmp_path, label):
    path = tmp_path / "label.json"
    dump_json(label, path)
    loaded = dict_to_label(load_json(path))
    assert isinstance(loaded, NutritionalLabel)
    assert loaded.render() == label.render()
    assert loaded.sensitive_columns == label.sensitive_columns
    assert loaded.feature_sensitive_association == (
        label.feature_sensitive_association
    )
    assert loaded.bias_rules == label.bias_rules
    # Documented caveat: group values pass through string keys, so None
    # comes back as "None"; rates themselves are preserved exactly.
    stringified = {
        column: {
            tuple(str(part) for part in key): rate for key, rate in rates.items()
        }
        for column, rates in label.group_missing_rates.items()
    }
    assert loaded.group_missing_rates == stringified


def test_datasheet_roundtrip_renders_identically(tmp_path, small_table):
    sheet = build_datasheet(
        title="demo",
        table=small_table,
        motivation="round-trip test",
        collection_process="synthetic",
        recommended_uses=["testing"],
        known_limitations=["tiny"],
    )
    path = tmp_path / "sheet.json"
    dump_json(sheet, path)
    loaded = dict_to_datasheet(load_json(path))
    assert isinstance(loaded, Datasheet)
    assert loaded.render() == sheet.render()


def test_audit_roundtrip(tmp_path, small_table):
    audit = audit_requirements(
        small_table,
        [
            CompletenessCorrectnessRequirement(
                ["race", "gender", "age"], ("race",), max_missing_rate=0.5
            )
        ],
    )
    path = tmp_path / "audit.json"
    dump_json(audit, path)
    loaded = dict_to_audit(load_json(path))
    assert isinstance(loaded, AuditReport)
    assert loaded.passed == audit.passed
    assert loaded.render() == audit.render()


def test_load_artifact_dispatches_on_tag(tmp_path, label, small_table):
    dump_json(label, tmp_path / "label.json")
    assert isinstance(load_artifact(tmp_path / "label.json"), NutritionalLabel)
    sheet = build_datasheet(
        title="x", table=small_table, motivation="m", collection_process="c"
    )
    dump_json(sheet, tmp_path / "sheet.json")
    assert isinstance(load_artifact(tmp_path / "sheet.json"), Datasheet)
    dump_json({"artifact": "mystery", "schema_version": 1}, tmp_path / "odd.json")
    with pytest.raises(SpecificationError, match="mystery"):
        load_artifact(tmp_path / "odd.json")


def test_unknown_schema_version_rejected(tmp_path, label):
    payload = label_to_dict(label)
    payload["schema_version"] = EXPORT_SCHEMA_VERSION + 1
    with pytest.raises(SpecificationError, match="unknown schema_version"):
        dict_to_label(payload)
    payload["schema_version"] = "1"  # wrong type, not just wrong value
    with pytest.raises(SpecificationError, match="schema_version"):
        dict_to_label(payload)


def test_wrong_artifact_tag_rejected(label):
    payload = label_to_dict(label)
    payload["artifact"] = "datasheet"
    with pytest.raises(SpecificationError, match="declares artifact"):
        dict_to_label(payload)


def test_load_json_rejects_non_object(tmp_path):
    path = tmp_path / "arr.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(SpecificationError, match="JSON object"):
        load_json(path)


def test_dump_json_is_atomic(tmp_path, label):
    """No temp debris, and the target is complete valid JSON."""
    path = tmp_path / "label.json"
    dump_json(label, path)
    dump_json(label, path)  # overwrite goes through the same rename
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []
    assert json.loads(path.read_text())["artifact"] == "nutritional_label"
