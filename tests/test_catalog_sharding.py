"""Unit and property tests for :mod:`respdi.catalog.sharding`.

The routing function is the sharded catalog's load-bearing contract:
every process must send every table name to the same shard, forever,
with no coordination.  The property tests here pin that down (pure
function of the name bytes, stable across processes and
``PYTHONHASHSEED`` values); the unit tests cover the facade's lifecycle,
shard-map validation, per-shard routing of single-table operations, and
resharding via entry adoption.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.catalog import (
    CatalogStore,
    ShardedCatalogStore,
    is_sharded,
    open_catalog,
    reshard,
    shard_for,
)
from respdi.catalog.sharding import (
    SHARDS_FILENAME,
    read_shard_spec,
    shard_dirname,
)
from respdi.errors import CatalogCorruptError, SpecificationError
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
SRC = str(Path(__file__).resolve().parent.parent / "src")


def _table(tag, n=8, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {f"table{t}": _table(f"t{t}") for t in range(6)}


# -- routing ------------------------------------------------------------------


@given(
    name=st.text(min_size=0, max_size=40),
    num_shards=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200, deadline=None)
def test_shard_for_is_a_pure_total_function(name, num_shards):
    route = shard_for(name, num_shards)
    assert 0 <= route < num_shards
    # Pure: recomputing (and recomputing from an equal-but-distinct
    # string object) never moves the table.
    assert shard_for(name, num_shards) == route
    assert shard_for(str(name.encode("utf-8"), "utf-8"), num_shards) == route


def test_shard_for_rejects_nonpositive_counts():
    with pytest.raises(SpecificationError):
        shard_for("table0", 0)
    with pytest.raises(SpecificationError):
        shard_for("table0", -3)


def test_one_shard_routes_everything_to_zero():
    assert {shard_for(name, 1) for name in TABLES} == {0}


_ROUTE_SCRIPT = r"""
import json, sys
from respdi.catalog import shard_for
names = json.loads(sys.stdin.read())
print(json.dumps({n: [shard_for(n, k) for k in (1, 2, 4, 7, 16)] for n in names}))
"""


def _routes_in_subprocess(names, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _ROUTE_SCRIPT],
        input=json.dumps(names),
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def test_routing_stable_across_processes_and_hash_seeds():
    """Same name -> same shard in every process, whatever the hash seed.

    ``hash()`` on strings is salted per process; the router must not be.
    Two fresh interpreters with different ``PYTHONHASHSEED`` values must
    route an adversarial name set (unicode, empty-ish, collision-prone)
    exactly like this process does.
    """
    names = sorted(TABLES) + ["", " ", "café", "データ", "a" * 64, "table0 "]
    local = {n: [shard_for(n, k) for k in (1, 2, 4, 7, 16)] for n in names}
    for seed in ("0", "1", "424242"):
        assert _routes_in_subprocess(names, seed) == local, (
            f"routing diverged under PYTHONHASHSEED={seed}"
        )


def test_routing_spreads_tables_over_shards():
    """blake2b routing should not degenerate to one hot shard on a
    realistic name population (a sanity floor, not a uniformity proof)."""
    names = [f"lake_table_{i}" for i in range(256)]
    used = {shard_for(name, 4) for name in names}
    assert used == {0, 1, 2, 3}


# -- lifecycle ----------------------------------------------------------------


def test_create_layout_and_shard_map(tmp_path):
    store = ShardedCatalogStore.create(tmp_path / "cat", num_shards=3, **OPTS)
    assert is_sharded(tmp_path / "cat")
    assert store.num_shards == 3
    assert len(store.shards) == 3
    spec = read_shard_spec(tmp_path / "cat")
    assert spec["num_shards"] == 3
    assert spec["shards"] == [shard_dirname(i) for i in range(3)]
    assert spec["seed"] == OPTS["rng"]
    # Every shard is a complete plain catalog sharing one hash family.
    for index in range(3):
        shard = CatalogStore.open(tmp_path / "cat" / shard_dirname(index))
        assert shard.hasher.fingerprint == spec["hasher_fingerprint"]
        assert shard.verify() == []


def test_create_refuses_existing_catalogs(tmp_path):
    ShardedCatalogStore.create(tmp_path / "sharded", num_shards=2, **OPTS)
    with pytest.raises(SpecificationError):
        ShardedCatalogStore.create(tmp_path / "sharded", num_shards=2, **OPTS)
    CatalogStore.create(tmp_path / "plain", **OPTS)
    with pytest.raises(SpecificationError):
        ShardedCatalogStore.create(tmp_path / "plain", num_shards=2, **OPTS)


def test_open_rejects_missing_or_torn_shard_map(tmp_path):
    with pytest.raises(SpecificationError):
        ShardedCatalogStore.open(tmp_path / "nowhere")
    CatalogStore.build(tmp_path / "plain", TABLES, **OPTS)
    with pytest.raises(SpecificationError):
        ShardedCatalogStore.open(tmp_path / "plain")
    torn = tmp_path / "torn"
    torn.mkdir()
    (torn / SHARDS_FILENAME).write_text('{"schema_version": 1, "sha')
    with pytest.raises(CatalogCorruptError):
        ShardedCatalogStore.open(torn)


def test_open_rejects_future_schema_version(tmp_path):
    ShardedCatalogStore.create(tmp_path / "cat", num_shards=2, **OPTS)
    spec_path = tmp_path / "cat" / SHARDS_FILENAME
    spec = json.loads(spec_path.read_text())
    spec["schema_version"] = 99
    spec_path.write_text(json.dumps(spec))
    with pytest.raises(SpecificationError):
        ShardedCatalogStore.open(tmp_path / "cat")


def test_open_detects_mixed_hasher_state(tmp_path):
    """A shard rebuilt under a different hash family is corruption:
    its sketches are not comparable with its siblings'."""
    import shutil

    ShardedCatalogStore.build(tmp_path / "cat", TABLES, num_shards=2, **OPTS)
    rogue = tmp_path / "cat" / shard_dirname(1)
    shutil.rmtree(rogue)
    CatalogStore.create(rogue, rng=99, num_hashes=16, sketch_size=16)
    with pytest.raises(CatalogCorruptError, match="mixed-hasher"):
        ShardedCatalogStore.open(tmp_path / "cat")


def test_open_catalog_dispatches_on_flavor(tmp_path):
    CatalogStore.build(tmp_path / "plain", TABLES, **OPTS)
    ShardedCatalogStore.build(tmp_path / "sharded", TABLES, num_shards=2, **OPTS)
    assert isinstance(open_catalog(tmp_path / "plain"), CatalogStore)
    assert isinstance(open_catalog(tmp_path / "sharded"), ShardedCatalogStore)


# -- routing of operations ----------------------------------------------------


def test_build_places_every_table_on_its_routed_shard(tmp_path):
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=4, **OPTS
    )
    assert len(store) == len(TABLES)
    assert sorted(store.names) == sorted(TABLES)
    for name in TABLES:
        index = shard_for(name, 4)
        assert name in store.shards[index]
        for other in range(4):
            if other != index:
                assert name not in store.shards[other]
    assert store.verify() == []


def test_single_table_operations_route_and_roundtrip(tmp_path):
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=3, **OPTS
    )
    extra = _table("extra", n=5)
    store.add_table("extra", extra)
    assert "extra" in store
    assert "extra" in store.shards[shard_for("extra", 3)].names
    assert store.meta("extra")["fingerprint"]

    assert store.refresh("extra", extra) is False  # unchanged: no-op
    assert store.refresh("extra", _table("extra", n=5, offset=9.0)) is True

    store.remove_table("extra")
    assert "extra" not in store
    assert len(store) == len(TABLES)


def test_refresh_many_validates_membership_before_any_commit(tmp_path):
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=2, **OPTS
    )
    before = store.generations
    with pytest.raises(SpecificationError, match="'ghost' is not cataloged"):
        store.refresh_many(
            {"table0": _table("t0", offset=50.0), "ghost": _table("g")}
        )
    store.reload()
    assert store.generations == before  # nothing committed anywhere


def test_refresh_many_fans_out_and_merges_flags(tmp_path):
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=3, **OPTS
    )
    updates = {
        "table0": TABLES["table0"],  # unchanged
        "table3": _table("t3", offset=77.0),  # changed
        "table5": _table("t5", offset=88.0),  # changed
    }
    flags = store.refresh_many(updates)
    assert flags == {"table0": False, "table3": True, "table5": True}
    assert list(flags) == list(updates)  # input order preserved
    assert store.verify() == []


def test_verify_prefixes_shard_and_isolates_corruption(tmp_path):
    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=4, **OPTS
    )
    # Corrupt exactly one committed file in exactly one non-empty shard.
    victim_index = shard_for("table0", 4)
    victim_dir = tmp_path / "cat" / shard_dirname(victim_index)
    target = next((victim_dir / "entries").glob("table0-*/meta.json"))
    target.write_bytes(target.read_bytes() + b" ")

    problems = ShardedCatalogStore.open(tmp_path / "cat").verify()
    assert problems != []
    assert all(p.startswith(shard_dirname(victim_index)) for p in problems)
    # The siblings stay healthy — individually, as plain catalogs.
    for index in range(4):
        if index != victim_index:
            shard = CatalogStore.open(tmp_path / "cat" / shard_dirname(index))
            assert shard.verify() == []


# -- resharding ---------------------------------------------------------------


@pytest.mark.parametrize("source_shards", [None, 4], ids=["plain", "sharded"])
def test_reshard_adopts_every_entry_verbatim(tmp_path, source_shards):
    if source_shards is None:
        source = CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    else:
        source = ShardedCatalogStore.build(
            tmp_path / "src", TABLES, num_shards=source_shards, **OPTS
        )
    dest = reshard(tmp_path / "src", tmp_path / "dst", num_shards=2)
    assert dest.num_shards == 2
    assert sorted(dest.names) == sorted(TABLES)
    assert dest.verify() == []
    for name in TABLES:
        assert name in dest.shards[shard_for(name, 2)]
        assert dest.meta(name)["fingerprint"] == source.meta(name)["fingerprint"]
    # Source untouched: a reshard is abortable by deleting the dest.
    assert sorted(open_catalog(tmp_path / "src").names) == sorted(TABLES)


def test_adopt_entries_rejects_foreign_hash_family(tmp_path):
    CatalogStore.build(tmp_path / "a", TABLES, **OPTS)
    foreign = CatalogStore.build(
        tmp_path / "b", TABLES, rng=99, num_hashes=16, sketch_size=16
    )
    dest = CatalogStore.open(tmp_path / "a")
    with pytest.raises(SpecificationError, match="hash famil"):
        dest.adopt_entries(foreign, ["table0"])


def test_reshard_refuses_a_non_empty_or_file_destination(tmp_path):
    """Reshard writes a NEW directory: refusing to write into anything
    that already has contents is what makes it abortable-by-delete and
    keeps it from silently interleaving with an existing catalog."""
    CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    occupied = tmp_path / "occupied"
    occupied.mkdir()
    (occupied / "junk.txt").write_text("not a catalog")
    with pytest.raises(SpecificationError, match="not empty"):
        reshard(tmp_path / "src", occupied, num_shards=2)
    assert (occupied / "junk.txt").read_text() == "not a catalog"

    plain_file = tmp_path / "a-file"
    plain_file.write_text("x")
    with pytest.raises(SpecificationError, match="NEW directory"):
        reshard(tmp_path / "src", plain_file, num_shards=2)

    # An existing-but-empty directory is fine (mkdir -p then reshard).
    empty = tmp_path / "empty"
    empty.mkdir()
    dest = reshard(tmp_path / "src", empty, num_shards=2)
    assert sorted(dest.names) == sorted(TABLES)


def test_reshard_without_dest_requires_in_place(tmp_path):
    CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    with pytest.raises(SpecificationError, match="destination"):
        reshard(tmp_path / "src", num_shards=2)


@pytest.mark.parametrize("source_shards", [None, 4], ids=["plain", "sharded"])
def test_reshard_in_place_swaps_onto_the_source_path(tmp_path, source_shards):
    if source_shards is None:
        source = CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    else:
        source = ShardedCatalogStore.build(
            tmp_path / "src", TABLES, num_shards=source_shards, **OPTS
        )
    fingerprints = {name: source.meta(name)["fingerprint"] for name in TABLES}

    store = reshard(tmp_path / "src", num_shards=2, in_place=True)

    assert store.directory == tmp_path / "src"
    assert store.num_shards == 2
    assert sorted(store.names) == sorted(TABLES)
    assert store.verify() == []
    for name in TABLES:
        assert store.meta(name)["fingerprint"] == fingerprints[name]
    # The swap cleaned up after itself: no temp build, no backup left.
    assert not (tmp_path / "src.reshard.tmp").exists()
    assert not (tmp_path / "src.reshard.old").exists()
    # The swapped-in catalog is a normal sharded catalog for open_catalog.
    assert isinstance(open_catalog(tmp_path / "src"), ShardedCatalogStore)


def test_reshard_in_place_accepts_an_explicit_temp_dir(tmp_path):
    CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    tmp_build = tmp_path / "scratch" / "build"
    store = reshard(
        tmp_path / "src", tmp_build, num_shards=3, in_place=True
    )
    assert store.directory == tmp_path / "src" and store.num_shards == 3
    assert not tmp_build.exists()  # consumed by the swap


def test_reshard_in_place_refuses_leftovers_from_interrupted_swaps(tmp_path):
    """A leftover backup means an earlier swap was interrupted between
    its two renames; it holds the complete pre-reshard catalog, so the
    next in-place reshard must stop and make the operator look."""
    CatalogStore.build(tmp_path / "src", TABLES, **OPTS)

    backup = tmp_path / "src.reshard.old"
    backup.mkdir()
    with pytest.raises(SpecificationError, match="interrupted"):
        reshard(tmp_path / "src", num_shards=2, in_place=True)
    backup.rmdir()

    stale_tmp = tmp_path / "src.reshard.tmp"
    stale_tmp.mkdir()
    (stale_tmp / "half-built").write_text("x")
    with pytest.raises(SpecificationError, match="temp build"):
        reshard(tmp_path / "src", num_shards=2, in_place=True)
    # Both refusals left the source catalog fully usable.
    assert sorted(open_catalog(tmp_path / "src").names) == sorted(TABLES)


def test_reshard_in_place_query_results_are_unchanged(tmp_path):
    from respdi.service import KeywordQuery, QueryService
    from respdi.service.sharded import ShardedQueryService

    CatalogStore.build(tmp_path / "src", TABLES, **OPTS)
    query = KeywordQuery(text="table0", k=3)
    before = query.render(QueryService(tmp_path / "src").query(query))
    reshard(tmp_path / "src", num_shards=2, in_place=True)
    after = query.render(ShardedQueryService(tmp_path / "src").query(query))
    assert json.dumps(before, sort_keys=True) == json.dumps(
        after, sort_keys=True
    )


def test_sharded_refresh_many_noop_schedules_zero_sketch_calls(
    tmp_path, monkeypatch
):
    """The fingerprint short-circuit holds through the shard fan-out: a
    no-op refresh of every table must never schedule sketch work on any
    shard (serial context keeps the fan-out in-process so the
    monkeypatch is visible to every shard worker)."""
    from respdi.catalog import store as store_module
    from respdi.parallel import ExecutionContext

    store = ShardedCatalogStore.build(
        tmp_path / "cat", TABLES, num_shards=2, **OPTS
    )

    def _forbidden(*args, **kwargs):
        raise AssertionError("sketching was scheduled on a no-op refresh")

    monkeypatch.setattr(store_module, "build_table_artifacts", _forbidden)
    results = store.refresh_many(dict(TABLES), context=ExecutionContext())
    assert results == {name: False for name in TABLES}
    assert store.generations == tuple(
        shard.generation for shard in store.shards
    )
