"""The exception hierarchy contract."""

import pytest

from respdi import errors


def test_all_errors_derive_from_respdi_error():
    exception_types = [
        errors.SchemaError,
        errors.TypeMismatchError,
        errors.EmptyInputError,
        errors.SpecificationError,
        errors.InfeasibleError,
        errors.ExhaustedSourceError,
        errors.BudgetExceededError,
        errors.ConvergenceError,
        errors.NotFittedError,
    ]
    for exc_type in exception_types:
        assert issubclass(exc_type, errors.RespdiError)
        assert issubclass(exc_type, Exception)


def test_type_mismatch_is_a_schema_error():
    assert issubclass(errors.TypeMismatchError, errors.SchemaError)


def test_one_except_clause_guards_a_pipeline():
    """The documented pattern: catch RespdiError around any library call."""
    from respdi.table import Schema, Table

    with pytest.raises(errors.RespdiError):
        Table.from_rows(Schema([("a", "numeric")]), [("not-a-number",)])
    with pytest.raises(errors.RespdiError):
        Schema([("a", "numeric"), ("a", "numeric")])
    from respdi.stats import normalize_distribution

    with pytest.raises(errors.RespdiError):
        normalize_distribution({})
