"""Generic chain-join sampling (Zhao et al.)."""

import numpy as np
import pytest

from respdi.errors import EmptyInputError, SpecificationError
from respdi.sampling import ChainJoinSampler, ChainJoinSpec, full_join
from respdi.stats import chi_square_goodness_of_fit
from respdi.table import Schema, Table


def three_tables(seed=0, n=80):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(8)]

    def table(prefix):
        schema = Schema([("k", "categorical"), (prefix, "numeric")])
        return Table.from_rows(
            schema,
            [
                (keys[min(int(rng.zipf(1.7)) - 1, 7)], float(i))
                for i in range(n)
            ],
        )

    return table("a"), table("b"), table("c")


def oracle_join_size(tables):
    t1, t2, t3 = tables
    j12 = full_join(t1, t2.rename({"b": "b2"}), ["k"])
    j123 = full_join(j12, t3.rename({"c": "c2"}), ["k"])
    return len(j123)


def test_exact_counts_match_oracle():
    tables = three_tables()
    spec = ChainJoinSpec(list(tables), [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(spec, rng=1)
    assert sampler.join_size == oracle_join_size(tables)


def test_exact_sampling_never_rejects():
    tables = three_tables(seed=2)
    spec = ChainJoinSpec(list(tables), [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(spec, rng=3)
    sampler.sample(500)
    assert sampler.stats.acceptance_rate == 1.0


def test_exact_sampling_is_uniform_over_keys():
    tables = three_tables(seed=4)
    t1, t2, t3 = tables
    spec = ChainJoinSpec([t1, t2, t3], [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(spec, rng=5)
    paths = sampler.sample(6000)
    # Per-key share of samples vs per-key share of the join (key is shared).
    t1_keys = t1.column("k")
    observed = {}
    for path in paths:
        key = t1_keys[path[0]]
        observed[key] = observed.get(key, 0) + 1
    # Oracle per-key join sizes.
    def count_key(table, key):
        return sum(1 for v in table.column("k") if v == key)

    join_per_key = {
        key: count_key(t1, key) * count_key(t2, key) * count_key(t3, key)
        for key in set(t1_keys)
    }
    total = sum(join_per_key.values())
    keys = sorted(k for k, v in join_per_key.items() if v > 0)
    observed_vector = [observed.get(k, 0) for k in keys]
    expected_vector = [join_per_key[k] / total for k in keys]
    _, p_value = chi_square_goodness_of_fit(observed_vector, expected_vector)
    assert p_value > 0.001


def test_bounded_regime_uniformity_matches_exact():
    tables = three_tables(seed=6)
    spec = ChainJoinSpec(list(tables), [("k", "k"), ("k", "k")])
    exact = ChainJoinSampler(spec, rng=7)
    bounded = ChainJoinSampler(spec, statistics="upper_bound", rng=7)
    exact_paths = exact.sample(3000)
    bounded_paths = bounded.sample(3000)
    assert bounded.stats.acceptance_rate < 1.0
    t1_keys = tables[0].column("k")

    def shares(paths):
        counts = {}
        for path in paths:
            key = t1_keys[path[0]]
            counts[key] = counts.get(key, 0) + 1
        return {k: v / len(paths) for k, v in counts.items()}

    exact_shares = shares(exact_paths)
    bounded_shares = shares(bounded_paths)
    for key, share in exact_shares.items():
        assert bounded_shares.get(key, 0.0) == pytest.approx(share, abs=0.05)


def test_materialize_renames_clashes():
    tables = three_tables(seed=8)
    spec = ChainJoinSpec(list(tables), [("k", "k"), ("k", "k")])
    sampler = ChainJoinSampler(spec, rng=9)
    table = sampler.materialize(sampler.sample(10))
    assert len(table) == 10
    assert "k" in table.schema and "k_t1" in table.schema and "k_t2" in table.schema


def test_two_table_instantiation_equals_chaudhuri_setting():
    tables = three_tables(seed=10)
    spec = ChainJoinSpec(list(tables[:2]), [("k", "k")])
    sampler = ChainJoinSampler(spec, rng=11)
    joined = full_join(tables[0], tables[1].rename({"b": "b2"}), ["k"])
    assert sampler.join_size == len(joined)


def test_empty_join_detected():
    schema = Schema([("k", "categorical")])
    a = Table.from_rows(schema, [("x",)])
    b = Table.from_rows(schema, [("y",)])
    spec = ChainJoinSpec([a, b], [("k", "k")])
    with pytest.raises(EmptyInputError):
        ChainJoinSampler(spec, rng=0)


def test_spec_validations():
    schema = Schema([("k", "categorical")])
    table = Table.from_rows(schema, [("x",)])
    with pytest.raises(SpecificationError):
        ChainJoinSpec([table], [])
    with pytest.raises(SpecificationError):
        ChainJoinSpec([table, table], [])
    with pytest.raises(SpecificationError):
        ChainJoinSampler(
            ChainJoinSpec([table, table], [("k", "k")]), statistics="weird"
        )
