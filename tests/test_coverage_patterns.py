"""Pattern primitives."""

import pytest

from respdi.coverage import (
    WILDCARD,
    pattern_dominates,
    pattern_level,
    pattern_matches_mask,
    pattern_parents,
)
from respdi.coverage.patterns import format_pattern
from respdi.errors import SpecificationError

X = WILDCARD


def test_wildcard_is_singleton():
    from respdi.coverage.patterns import _Wildcard

    assert _Wildcard() is WILDCARD
    assert repr(WILDCARD) == "X"


def test_pattern_level():
    assert pattern_level((X, X)) == 0
    assert pattern_level(("a", X)) == 1
    assert pattern_level(("a", "b")) == 2


def test_pattern_parents():
    parents = list(pattern_parents(("a", "b")))
    assert parents == [(X, "b"), ("a", X)]
    assert list(pattern_parents((X, X))) == []


def test_pattern_dominates():
    assert pattern_dominates((X, X), ("a", "b"))
    assert pattern_dominates(("a", X), ("a", "b"))
    assert not pattern_dominates(("a", X), ("b", "b"))
    assert pattern_dominates(("a", "b"), ("a", "b"))
    with pytest.raises(SpecificationError):
        pattern_dominates((X,), ("a", "b"))


def test_matches_mask_and_missing(small_table):
    mask = pattern_matches_mask(small_table, ["race", "gender"], ("black", X))
    assert mask.sum() == 3
    mask = pattern_matches_mask(small_table, ["race", "gender"], ("black", "F"))
    assert mask.sum() == 2
    # Row with missing race never matches an instantiated race position.
    mask = pattern_matches_mask(small_table, ["race", "gender"], (X, "M"))
    assert mask.sum() == 3


def test_matches_mask_width_check(small_table):
    with pytest.raises(SpecificationError):
        pattern_matches_mask(small_table, ["race"], ("a", "b"))


def test_format_pattern():
    rendered = format_pattern(["g", "r"], ("F", X))
    assert rendered == "{g: 'F', r: X}"
