"""respdi.ingest.watcher unit coverage: content-diff change detection.

The watcher's load-bearing claims: diffs are computed from table
*content* (a touched-but-identical file is a no-op, an in-place edit
that preserves size and mtime is a change), change-sets are
deterministic (sorted by name, independent of enumeration order),
source-to-stem mapping is unambiguous (duplicate stems rejected), and
the committed-fingerprint baseline is shard-transparent.
"""

import os

import pytest

from respdi.catalog import CatalogStore, ShardedCatalogStore
from respdi.catalog.store import table_fingerprint
from respdi.errors import SpecificationError
from respdi.ingest import ChangeSet, SourceWatcher, committed_fingerprints
from respdi.table import Schema, Table, write_csv

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)


def _table(tag, n=6, offset=0.0):
    rows = [(f"{tag}_{i}", float(i) + offset) for i in range(n)]
    return Table.from_rows(SCHEMA, rows)


TABLES = {"alpha": _table("a"), "beta": _table("b"), "gamma": _table("g")}


def _write_lake(lake, tables):
    lake.mkdir(parents=True, exist_ok=True)
    for name, table in tables.items():
        write_csv(table, lake / f"{name}.csv")
    return lake


# -- enumeration ---------------------------------------------------------------


def test_discover_merges_directories_and_globs_sorted(tmp_path):
    _write_lake(tmp_path / "lake", {"beta": TABLES["beta"]})
    _write_lake(
        tmp_path / "extra",
        {"part-alpha": TABLES["alpha"], "other": TABLES["gamma"]},
    )
    watcher = SourceWatcher(
        [tmp_path / "lake", str(tmp_path / "extra" / "part-*.csv")]
    )
    found = watcher.discover()
    assert list(found) == ["beta", "part-alpha"]  # sorted; glob filtered
    assert found["beta"] == tmp_path / "lake" / "beta.csv"


def test_discover_rejects_two_files_for_one_stem(tmp_path):
    _write_lake(tmp_path / "a", {"alpha": TABLES["alpha"]})
    _write_lake(tmp_path / "b", {"alpha": TABLES["beta"]})
    watcher = SourceWatcher([tmp_path / "a", tmp_path / "b"])
    with pytest.raises(SpecificationError, match="two files"):
        watcher.discover()


def test_watcher_requires_at_least_one_source():
    with pytest.raises(SpecificationError, match="at least one source"):
        SourceWatcher([])


# -- the diff ------------------------------------------------------------------


def test_scan_needs_exactly_one_baseline(tmp_path):
    lake = _write_lake(tmp_path / "lake", TABLES)
    watcher = SourceWatcher(lake)
    with pytest.raises(SpecificationError, match="exactly one"):
        watcher.scan()
    with pytest.raises(SpecificationError, match="exactly one"):
        watcher.scan(fingerprints={}, directory=tmp_path)


def test_scan_diffs_by_content_not_mtime(tmp_path):
    lake = _write_lake(tmp_path / "lake", TABLES)
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, TABLES, **OPTS)
    baseline = committed_fingerprints(catalog_dir)
    watcher = SourceWatcher(lake)

    # Same content, new mtime: must be a no-op, not a refresh.
    write_csv(TABLES["alpha"], lake / "alpha.csv")
    os.utime(lake / "alpha.csv")
    # Changed content, mtime pinned back to the past: must be a change.
    old_stat = (lake / "beta.csv").stat()
    write_csv(_table("b", offset=100.0), lake / "beta.csv")
    os.utime(lake / "beta.csv", (old_stat.st_atime, old_stat.st_mtime))
    (lake / "gamma.csv").unlink()
    write_csv(_table("d"), lake / "delta.csv")

    changes = watcher.scan(baseline)
    assert list(changes.added) == ["delta"]
    assert list(changes.changed) == ["beta"]
    assert changes.removed == ("gamma",)
    assert changes.scanned == 3
    assert not changes.empty
    assert changes.summary() == "+1 ~1 -1 (scanned 3)"


def test_scan_is_deterministic_and_noop_when_lake_matches(tmp_path):
    lake = _write_lake(tmp_path / "lake", TABLES)
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, TABLES, **OPTS)
    watcher = SourceWatcher(lake)
    first = watcher.scan(directory=catalog_dir)
    second = watcher.scan(directory=catalog_dir)
    assert first.empty and second.empty
    assert first.scanned == second.scanned == 3
    assert first.summary() == second.summary() == "+0 ~0 -0 (scanned 3)"
    assert ChangeSet().empty  # the zero value is an empty change-set


def test_remove_missing_false_leaves_out_of_band_tables_alone(tmp_path):
    lake = _write_lake(tmp_path / "lake", {"alpha": TABLES["alpha"]})
    catalog_dir = tmp_path / "cat"
    # ``beta`` lives only in the catalog (registered out-of-band).
    CatalogStore.build(
        catalog_dir,
        {"alpha": TABLES["alpha"], "beta": TABLES["beta"]},
        **OPTS,
    )
    keeper = SourceWatcher(lake, remove_missing=False)
    assert keeper.scan(directory=catalog_dir).empty
    remover = SourceWatcher(lake)
    assert remover.scan(directory=catalog_dir).removed == ("beta",)


# -- the committed baseline ----------------------------------------------------


def test_committed_fingerprints_match_content_plain_and_sharded(tmp_path):
    CatalogStore.build(tmp_path / "plain", TABLES, **OPTS)
    ShardedCatalogStore.build(tmp_path / "sharded", TABLES, num_shards=2, **OPTS)
    expected = {name: table_fingerprint(table) for name, table in TABLES.items()}
    assert committed_fingerprints(tmp_path / "plain") == expected
    # Sharded: every shard's manifest merges into one baseline.
    assert committed_fingerprints(tmp_path / "sharded") == expected
