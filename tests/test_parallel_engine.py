"""Unit tests for the execution engine itself (contexts, retries, fallbacks)."""

import threading
import time

import pytest

from respdi import obs
from respdi.errors import SpecificationError
from respdi.parallel import (
    BACKENDS,
    DEFAULT_JOBS_ENV,
    ExecutionContext,
    default_jobs,
    map_chunked,
    map_tables,
)

_MAIN_THREAD = threading.main_thread()


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _main_thread_only(x):
    """Fails off the main thread: pool attempts fail, serial fallback works."""
    if threading.current_thread() is not _MAIN_THREAD:
        raise RuntimeError("injected worker fault")
    return 2 * x


def _slow_off_main_thread(x):
    if threading.current_thread() is not _MAIN_THREAD:
        time.sleep(0.5)
    return 2 * x


# -- context validation and resolution ----------------------------------------


def test_context_validation():
    with pytest.raises(SpecificationError):
        ExecutionContext(backend="gpu")
    with pytest.raises(SpecificationError):
        ExecutionContext(n_jobs=0)
    with pytest.raises(SpecificationError):
        ExecutionContext(chunksize=0)
    with pytest.raises(SpecificationError):
        ExecutionContext(timeout=0.0)
    assert set(BACKENDS) == {"serial", "threads", "processes"}


def test_resolve_precedence(monkeypatch):
    explicit = ExecutionContext(backend="processes", n_jobs=2)
    assert ExecutionContext.resolve(explicit, None) is explicit
    with pytest.raises(SpecificationError):
        ExecutionContext.resolve(explicit, 2)
    assert ExecutionContext.resolve(None, 3) == ExecutionContext(
        backend="threads", n_jobs=3
    )
    assert ExecutionContext.resolve(None, 1).is_serial

    monkeypatch.delenv(DEFAULT_JOBS_ENV, raising=False)
    assert default_jobs() == 1
    assert ExecutionContext.resolve(None, None).is_serial
    monkeypatch.setenv(DEFAULT_JOBS_ENV, "4")
    assert default_jobs() == 4
    assert ExecutionContext.resolve(None, None) == ExecutionContext(
        backend="threads", n_jobs=4
    )
    monkeypatch.setenv(DEFAULT_JOBS_ENV, "not-a-number")
    assert default_jobs() == 1


def test_resolved_chunksize():
    assert ExecutionContext(chunksize=7).resolved_chunksize(100) == 7
    auto = ExecutionContext(backend="threads", n_jobs=4)
    # Auto-sizing targets about four chunks per worker.
    assert auto.resolved_chunksize(160) == 10
    assert auto.resolved_chunksize(1) == 1


# -- mapping primitives --------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_map_chunked_preserves_order(backend):
    context = ExecutionContext(backend=backend, n_jobs=2, chunksize=3)
    assert map_chunked(_double, range(17), context) == [2 * i for i in range(17)]


def test_map_chunked_empty_and_single_chunk():
    assert map_chunked(_double, [], n_jobs=8) == []
    context = ExecutionContext(backend="threads", n_jobs=4, chunksize=100)
    assert map_chunked(_double, range(5), context) == [0, 2, 4, 6, 8]


def test_map_tables_preserves_input_order():
    tables = {"b": 1, "a": 2, "c": 3}
    out = map_tables(lambda name, v: f"{name}:{v}", tables, n_jobs=2)
    assert list(out) == ["b", "a", "c"]
    assert out == {"b": "b:1", "a": "a:2", "c": "c:3"}


def test_deterministic_exception_propagates_from_every_backend():
    for backend in BACKENDS:
        context = ExecutionContext(backend=backend, n_jobs=2, chunksize=1)
        with pytest.raises(ValueError, match="boom"):
            map_chunked(_boom, range(4), context)


# -- retry, fallback, and instrumentation -------------------------------------


def test_worker_fault_retries_once_then_falls_back_serially():
    obs.enable()
    obs.reset()
    try:
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=10)
        result = map_chunked(_main_thread_only, range(10), context)
        assert result == [2 * i for i in range(10)]
        # One chunk (len(items) <= chunksize) -> single-chunk short
        # circuit runs serially with no pool at all.
        registry = obs.global_registry()
        assert registry.counter_value("parallel.retries") == 0

        obs.reset()
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=5)
        result = map_chunked(_main_thread_only, range(10), context)
        assert result == [2 * i for i in range(10)]
        counters = obs.global_registry().snapshot()["counters"]
        # Both chunks fail in the pool, are retried exactly once each,
        # then complete via the serial fallback.
        assert counters["parallel.retries"] == 2.0
        assert counters["parallel.fallbacks"] == 2.0
        assert counters["parallel.tasks"] == 2.0
        assert counters["parallel.items"] == 10.0
    finally:
        obs.disable()


def test_timeout_triggers_retry_then_serial_fallback():
    obs.enable()
    obs.reset()
    try:
        context = ExecutionContext(
            backend="threads", n_jobs=2, chunksize=3, timeout=0.05
        )
        result = map_chunked(_slow_off_main_thread, range(6), context)
        assert result == [2 * i for i in range(6)]
        counters = obs.global_registry().snapshot()["counters"]
        assert counters["parallel.retries"] >= 1.0
    finally:
        obs.disable()


def test_unpicklable_function_falls_back_to_serial_under_processes():
    context = ExecutionContext(backend="processes", n_jobs=2, chunksize=2)
    assert map_chunked(lambda x: x + 1, range(6), context) == list(range(1, 7))


def test_chunk_spans_emitted_per_chunk():
    obs.enable()
    obs.reset()
    exporter = obs.InMemoryExporter()
    previous = obs.get_exporter()
    obs.set_exporter(exporter)
    try:
        context = ExecutionContext(backend="threads", n_jobs=2, chunksize=2)
        map_chunked(_double, range(8), context, label="test.map")
        spans = [s for s in exporter.spans if s["name"] == "test.map.chunk"]
        assert len(spans) == 4
        assert sorted(s["attributes"]["index"] for s in spans) == [0, 1, 2, 3]
        assert {s["attributes"]["backend"] for s in spans} == {"threads"}
    finally:
        obs.set_exporter(previous)
        obs.disable()
        obs.reset()
