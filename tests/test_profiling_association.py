"""Association rule mining."""

import pytest

from respdi.errors import SpecificationError
from respdi.profiling import mine_association_rules
from respdi.table import Schema, Table


def biased_table():
    """race=b strongly implies outcome=deny."""
    schema = Schema([("race", "categorical"), ("outcome", "categorical")])
    rows = (
        [("w", "grant")] * 40
        + [("w", "deny")] * 10
        + [("b", "deny")] * 18
        + [("b", "grant")] * 2
    )
    return Table.from_rows(schema, rows)


def test_bias_rule_detected():
    rules = mine_association_rules(
        biased_table(), ["race", "outcome"], min_support=0.05,
        min_confidence=0.6, min_lift=1.2,
    )
    # Lift is symmetric, so b->deny and deny->b tie at the top; the
    # bias-capturing direction must be among the found rules with the
    # right statistics.
    bias_rules = [
        r for r in rules
        if r.antecedent_column == "race" and r.antecedent_value == "b"
    ]
    assert bias_rules, f"b->deny missing from {rules}"
    rule = bias_rules[0]
    assert rule.consequent_value == "deny"
    assert rule.confidence == pytest.approx(0.9)
    assert rule.lift == pytest.approx(0.9 / 0.4)
    # Nothing outranks the tied top lift.
    assert rules[0].lift == pytest.approx(rule.lift)


def test_thresholds_filter():
    rules = mine_association_rules(
        biased_table(), ["race", "outcome"], min_support=0.5
    )
    assert all(rule.support >= 0.5 for rule in rules)
    strict = mine_association_rules(
        biased_table(), ["race", "outcome"], min_confidence=0.95
    )
    assert all(rule.confidence >= 0.95 for rule in strict)


def test_rules_sorted_by_lift():
    rules = mine_association_rules(biased_table(), ["race", "outcome"])
    lifts = [rule.lift for rule in rules]
    assert lifts == sorted(lifts, reverse=True)


def test_independent_columns_produce_no_rules():
    schema = Schema([("a", "categorical"), ("b", "categorical")])
    rows = [(x, y) for x in ("p", "q") for y in ("r", "s")] * 10
    table = Table.from_rows(schema, rows)
    rules = mine_association_rules(table, ["a", "b"], min_lift=1.1)
    assert rules == []


def test_missing_values_excluded():
    schema = Schema([("a", "categorical"), ("b", "categorical")])
    rows = [("x", "y")] * 10 + [(None, "y")] * 5 + [("x", None)] * 5
    table = Table.from_rows(schema, rows)
    rules = mine_association_rules(
        table, ["a", "b"], min_support=0.1, min_confidence=0.5, min_lift=0.0
    )
    for rule in rules:
        assert rule.support == pytest.approx(1.0)


def test_str_rendering():
    rules = mine_association_rules(biased_table(), ["race", "outcome"])
    assert "->" in str(rules[0])
    assert "lift" in str(rules[0])


def test_validations():
    table = biased_table()
    with pytest.raises(SpecificationError):
        mine_association_rules(table, ["race"])
    with pytest.raises(SpecificationError):
        mine_association_rules(table, ["race", "outcome"], min_support=1.5)
