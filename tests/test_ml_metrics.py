"""Fairness metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.errors import EmptyInputError, SpecificationError
from respdi.ml import (
    accuracy,
    demographic_parity_difference,
    disparate_impact,
    equal_opportunity_difference,
    equalized_odds_difference,
    evaluate_fairness,
    group_accuracy,
    selection_rates,
)


def test_accuracy():
    assert accuracy([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)
    with pytest.raises(EmptyInputError):
        accuracy([], [])
    with pytest.raises(SpecificationError):
        accuracy([1], [1, 0])


def test_selection_rates_and_dp():
    y_pred = [1, 1, 0, 0, 1, 0]
    groups = ["a", "a", "a", "b", "b", "b"]
    rates = selection_rates(y_pred, groups)
    assert rates["a"] == pytest.approx(2 / 3)
    assert rates["b"] == pytest.approx(1 / 3)
    assert demographic_parity_difference(y_pred, groups) == pytest.approx(1 / 3)


def test_disparate_impact_edge_cases():
    assert disparate_impact([1, 1, 1, 1], ["a", "a", "b", "b"]) == 1.0
    assert disparate_impact([0, 0, 0, 0], ["a", "a", "b", "b"]) == 1.0
    assert disparate_impact([1, 1, 0, 0], ["a", "a", "b", "b"]) == 0.0


def test_equal_opportunity():
    y_true = [1, 1, 1, 1]
    y_pred = [1, 1, 1, 0]
    groups = ["a", "a", "b", "b"]
    # TPR(a)=1.0, TPR(b)=0.5
    assert equal_opportunity_difference(y_true, y_pred, groups) == pytest.approx(0.5)


def test_equal_opportunity_skips_groups_without_positives():
    y_true = [1, 1, 0, 0]
    y_pred = [1, 0, 0, 0]
    groups = ["a", "a", "b", "b"]
    # Group b has no positives: excluded; single group left -> spread 0.
    assert equal_opportunity_difference(y_true, y_pred, groups) == 0.0


def test_equalized_odds_uses_fpr_too():
    y_true = [1, 0, 1, 0]
    y_pred = [1, 1, 1, 0]
    groups = ["a", "a", "b", "b"]
    # TPRs both 1.0; FPR(a)=1.0, FPR(b)=0.0.
    assert equalized_odds_difference(y_true, y_pred, groups) == pytest.approx(1.0)


def test_group_accuracy():
    out = group_accuracy([1, 0, 1, 0], [1, 1, 1, 0], ["a", "a", "b", "b"])
    assert out["a"] == 0.5 and out["b"] == 1.0


def test_fairness_report_aggregates():
    y_true = [1, 0, 1, 0, 1, 0]
    y_pred = [1, 0, 1, 1, 0, 0]
    groups = ["a", "a", "a", "b", "b", "b"]
    report = evaluate_fairness(y_true, y_pred, groups)
    assert report.accuracy == pytest.approx(4 / 6)
    assert set(report.group_accuracy) == {"a", "b"}
    assert 0.0 <= report.disparate_impact <= 1.0
    assert report.accuracy_parity_difference == pytest.approx(
        abs(report.group_accuracy["a"] - report.group_accuracy["b"])
    )


labels = st.lists(st.integers(0, 1), min_size=2, max_size=40)


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_metric_bounds_property(data):
    n = data.draw(st.integers(2, 40))
    y_true = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    y_pred = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    groups = data.draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    assert 0.0 <= demographic_parity_difference(y_pred, groups) <= 1.0
    assert 0.0 <= disparate_impact(y_pred, groups) <= 1.0
    assert 0.0 <= equal_opportunity_difference(y_true, y_pred, groups) <= 1.0
    assert 0.0 <= equalized_odds_difference(y_true, y_pred, groups) <= 1.0


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_single_group_has_no_disparity(data):
    n = data.draw(st.integers(2, 30))
    y_pred = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    groups = ["only"] * n
    assert demographic_parity_difference(y_pred, groups) == 0.0
    assert disparate_impact(y_pred, groups) == 1.0
