"""Column and table profiles."""

import pytest

from respdi.profiling import profile_table
from respdi.profiling.profiles import profile_column
from respdi.table import Schema, Table


def test_numeric_profile(small_table):
    profile = profile_column(small_table, "age")
    assert profile.ctype == "numeric"
    assert profile.row_count == 7
    assert profile.missing_count == 1
    assert profile.missing_rate == pytest.approx(1 / 7)
    assert profile.minimum == 28.0
    assert profile.maximum == 62.0
    assert profile.distinct_count == 6
    assert profile.top_values == ()


def test_categorical_profile(small_table):
    profile = profile_column(small_table, "race")
    assert profile.ctype == "categorical"
    assert profile.distinct_count == 2
    assert dict(profile.top_values) == {"white": 3, "black": 3}
    assert profile.mean is None


def test_profile_flags():
    schema = Schema([("key", "categorical"), ("const", "categorical")])
    table = Table.from_rows(schema, [("a", "z"), ("b", "z"), ("c", "z")])
    profile = profile_table(table)
    assert profile.column("key").is_candidate_key
    assert profile.column("const").is_constant
    assert not profile.column("const").is_candidate_key


def test_complete_row_fraction(small_table):
    profile = profile_table(small_table)
    # Two rows have a missing value (one age, one race).
    assert profile.complete_row_fraction == pytest.approx(5 / 7)


def test_empty_table_profile():
    schema = Schema([("a", "numeric")])
    profile = profile_table(Table.empty(schema))
    assert profile.row_count == 0
    assert profile.column("a").distinct_count == 0
    assert profile.complete_row_fraction == 0.0


def test_top_k_truncation():
    schema = Schema([("c", "categorical")])
    table = Table.from_rows(schema, [(f"v{i}",) for i in range(30)])
    profile = profile_column(table, "c", top_k=5)
    assert len(profile.top_values) == 5
