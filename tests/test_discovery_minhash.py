"""MinHash signatures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.discovery import MinHasher
from respdi.errors import EmptyInputError, SpecificationError


def exact_jaccard(a, b):
    a, b = set(a), set(b)
    return len(a & b) / len(a | b) if a | b else 0.0


def test_identical_sets_agree_fully():
    hasher = MinHasher(64, rng=0)
    a = hasher.signature(range(100))
    b = hasher.signature(range(100))
    assert a.jaccard(b) == 1.0


def test_disjoint_sets_rarely_agree():
    hasher = MinHasher(128, rng=0)
    a = hasher.signature(range(0, 500))
    b = hasher.signature(range(1000, 1500))
    assert a.jaccard(b) < 0.05


def test_estimate_close_to_truth():
    hasher = MinHasher(256, rng=1)
    a_values = set(range(0, 300))
    b_values = set(range(150, 450))
    estimate = hasher.signature(a_values).jaccard(hasher.signature(b_values))
    assert estimate == pytest.approx(exact_jaccard(a_values, b_values), abs=0.1)


def test_cardinality_recorded():
    hasher = MinHasher(16, rng=2)
    sig = hasher.signature(["a", "a", "b"])
    assert sig.cardinality == 2
    assert len(sig) == 16


def test_signatures_deterministic_across_hashers_with_same_seed():
    a = MinHasher(32, rng=7).signature(["x", "y", "z"])
    b = MinHasher(32, rng=7).signature(["x", "y", "z"])
    assert np.array_equal(a.values, b.values)


def test_cross_hasher_comparison_rejected():
    a = MinHasher(32, rng=0).signature(["x"])
    b = MinHasher(32, rng=0).signature(["x"])
    with pytest.raises(SpecificationError, match="different MinHashers"):
        a.jaccard(b)


def test_empty_set_rejected():
    with pytest.raises(EmptyInputError):
        MinHasher(8, rng=0).signature([])


def test_invalid_num_hashes():
    with pytest.raises(SpecificationError):
        MinHasher(0)


@given(
    overlap=st.integers(0, 50),
    extra_a=st.integers(1, 50),
    extra_b=st.integers(1, 50),
)
@settings(max_examples=30, deadline=None)
def test_estimate_within_tolerance_property(overlap, extra_a, extra_b):
    a_values = {f"s{i}" for i in range(overlap)} | {f"a{i}" for i in range(extra_a)}
    b_values = {f"s{i}" for i in range(overlap)} | {f"b{i}" for i in range(extra_b)}
    hasher = MinHasher(256, rng=3)
    estimate = hasher.signature(a_values).jaccard(hasher.signature(b_values))
    truth = exact_jaccard(a_values, b_values)
    # 256 hashes: standard error ~ sqrt(j(1-j)/256) <= 0.032; 5 sigma.
    assert abs(estimate - truth) < 0.16


def test_concurrent_construction_mints_unique_ids():
    """Regression: the id counter was an unsynchronized class attribute
    (``MinHasher._next_id += 1``), so hashers built concurrently could
    share an id — silently defeating the mixed-hasher comparison guard.
    ``itertools.count`` makes allocation atomic."""
    import threading

    ids = []
    coeff_a = np.arange(1, 9, dtype=np.uint64)
    coeff_b = np.arange(0, 8, dtype=np.uint64)
    barrier = threading.Barrier(16)

    def build(out):
        barrier.wait()
        for _ in range(50):
            out.append(MinHasher(num_hashes=2, rng=0).hasher_id)
            out.append(MinHasher.from_coefficients(coeff_a, coeff_b).hasher_id)

    buckets = [[] for _ in range(16)]
    threads = [
        threading.Thread(target=build, args=(bucket,)) for bucket in buckets
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for bucket in buckets:
        ids.extend(bucket)
    assert len(ids) == 16 * 100
    assert len(set(ids)) == len(ids)
