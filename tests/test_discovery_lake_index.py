"""The DataLakeIndex facade, including unbiased feature discovery."""

import numpy as np
import pytest

from respdi.datagen import LakeSpec, generate_lake
from respdi.discovery import DataLakeIndex
from respdi.errors import SpecificationError
from respdi.table import ColumnType, Schema, Table


@pytest.fixture(scope="module")
def indexed_lake():
    lake = generate_lake(LakeSpec(n_distractors=15), rng=8)
    index = DataLakeIndex(rng=0)
    for name, table in lake.tables.items():
        index.register(name, table)
    return lake, index


def test_register_rejects_duplicates(indexed_lake):
    lake, index = indexed_lake
    with pytest.raises(SpecificationError, match="already registered"):
        index.register("query", lake.tables["query"])


def test_unionable_search_recovers_planted_partners(indexed_lake):
    lake, index = indexed_lake
    query = lake.tables[lake.query_table].project([lake.query_column])
    hits = index.unionable_tables(query, k=8)
    names = [h.table_name for h in hits]
    # The strongest non-self hit should be the 0.9-containment partner.
    non_self = [n for n in names if n != "query"]
    assert non_self[0] == "union_0"


def test_joinable_search(indexed_lake):
    lake, index = indexed_lake
    query_values = lake.tables[lake.query_table].unique(lake.query_column)
    hits = index.joinable_columns(query_values, k=5)
    assert hits[0].table_name == "query"  # self-match has full overlap
    assert any(h.table_name == "union_0" for h in hits)


def test_feature_discovery_ranks_by_correlation(indexed_lake):
    lake, index = indexed_lake
    query = lake.tables[lake.query_table]
    hits = index.discover_features(query, "key", "target", k=10)
    joinable_hits = [h for h in hits if h.table_name.startswith("joinable")]
    estimated = {h.table_name: abs(h.estimated_target_correlation) for h in joinable_hits}
    assert estimated["joinable_0"] > estimated["joinable_2"]
    assert estimated["joinable_0"] > 0.6


def test_feature_discovery_bias_penalty():
    # Build a tiny lake where one feature is a proxy for the sensitive
    # attribute and another is informative but group-independent.
    rng = np.random.default_rng(1)
    n = 200
    keys = [f"k{i}" for i in range(n)]
    sensitive = ["a" if i % 2 == 0 else "b" for i in range(n)]
    target = rng.normal(size=n)
    query = Table(
        Schema(
            [
                ("key", ColumnType.CATEGORICAL),
                ("grp", ColumnType.CATEGORICAL),
                ("target", ColumnType.NUMERIC),
            ]
        ),
        {"key": keys, "grp": sensitive, "target": target},
    )
    proxy_feature = np.where(np.array(sensitive) == "a", 5.0, -5.0) + 0.5 * target
    clean_feature = 0.5 * target + 0.1 * rng.normal(size=n)
    index = DataLakeIndex(rng=0, sketch_size=128)
    index.register(
        "proxy",
        Table(
            Schema([("key", ColumnType.CATEGORICAL), ("f", ColumnType.NUMERIC)]),
            {"key": keys, "f": proxy_feature},
        ),
    )
    index.register(
        "clean",
        Table(
            Schema([("key", ColumnType.CATEGORICAL), ("f", ColumnType.NUMERIC)]),
            {"key": keys, "f": clean_feature},
        ),
    )
    hits = index.discover_features(
        query, "key", "target", sensitive_column="grp", k=5, bias_penalty=1.0
    )
    by_name = {h.table_name: h for h in hits}
    assert by_name["proxy"].estimated_sensitive_association > 0.8
    assert by_name["clean"].estimated_sensitive_association < 0.4
    # With the penalty, the clean feature must outrank the proxy.
    names = [h.table_name for h in hits]
    assert names.index("clean") < names.index("proxy")


def test_feature_discovery_validations(indexed_lake):
    lake, index = indexed_lake
    query = lake.tables[lake.query_table]
    with pytest.raises(SpecificationError):
        index.discover_features(query, "key", lake.query_column)  # non-numeric target
    with pytest.raises(SpecificationError):
        index.discover_features(query, "key", "target", bias_penalty=-1)


def test_keyword_facade(indexed_lake):
    lake, index = indexed_lake
    hits = index.keyword_search("target key")
    assert hits
