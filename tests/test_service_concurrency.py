"""Readers on snapshot handles vs. a writer looping commits: zero tears.

The isolation claim under test: a reader that pins a snapshot sees
exactly one committed generation — never a mix of two — no matter how
many refreshes a concurrent writer lands.  The stress matrix drives N
reader threads (pin, check cross-table version agreement, query through
the cache) against a writer that rebuilds *every* table per cycle, so
any torn read would pair tables from different versions.  The suite
also closes the cache-coherence loop (every surviving cache key sits at
the final generation) and the accounting identity
``hits + misses == cached queries``.

The full ≥200-cycle matrix is ``slow``-marked; a short smoke version
runs in the default suite.
"""

import threading

import pytest

from respdi import obs
from respdi.catalog import CatalogStore
from respdi.catalog.store import table_fingerprint
from respdi.service import KeywordQuery, QueryService
from respdi.table import Schema, Table

SCHEMA = Schema([("key", "categorical"), ("value", "numeric")])
OPTS = dict(rng=7, num_hashes=16, sketch_size=16)
TABLE_NAMES = ("alpha", "beta")


def _version_tables(version):
    """Every table rebuilt for *version*: a consistent snapshot must
    report the same version for all of them."""
    out = {}
    for name in TABLE_NAMES:
        rows = [
            (f"{name}_v{version}_{i}", float(i) + version) for i in range(6)
        ]
        out[name] = Table.from_rows(SCHEMA, rows)
    return out


def _fingerprint_versions(n_versions):
    """``{content fingerprint: version}`` for every table at every version."""
    mapping = {}
    for version in range(n_versions):
        for table in _version_tables(version).values():
            mapping[table_fingerprint(table)] = version
    return mapping


class _TornReadMonitor:
    """Collects per-snapshot observations from the reader threads."""

    def __init__(self, fingerprint_versions):
        self.fingerprint_versions = fingerprint_versions
        self.lock = threading.Lock()
        self.torn = []
        self.errors = []
        self.cached_queries = 0
        self.snapshots = 0

    def observe(self, snapshot):
        versions = {
            name: self.fingerprint_versions[fingerprint]
            for name, fingerprint in snapshot.entry_fingerprints().items()
        }
        with self.lock:
            self.snapshots += 1
            if len(set(versions.values())) != 1:
                self.torn.append((snapshot.generation, versions))

    def count_queries(self, n):
        with self.lock:
            self.cached_queries += n


def _run_stress(tmp_path, cycles, readers, versions):
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _version_tables(0), **OPTS)
    service = QueryService(catalog_dir, cache_size=64)
    monitor = _TornReadMonitor(_fingerprint_versions(versions))
    done = threading.Event()

    def writer():
        store = CatalogStore.open(catalog_dir)
        try:
            for cycle in range(1, cycles + 1):
                # Alternate versions so every cycle rebuilds every table
                # (same version twice in a row would fingerprint-match
                # and commit nothing).
                rebuilt = store.refresh_many(
                    _version_tables(cycle % versions)
                )
                assert all(rebuilt.values()), rebuilt
        except BaseException as exc:  # pragma: no cover - only on bug
            monitor.errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            queries = 0
            while not done.is_set() or queries == 0:
                snapshot = service.snapshot()
                monitor.observe(snapshot)
                # Every query runs against some single committed
                # generation and flows through the cache.
                service.query(KeywordQuery(text="alpha", k=3))
                service.query(
                    KeywordQuery(text=f"v{snapshot.generation % versions}", k=3)
                )
                queries += 2
            monitor.count_queries(queries)
        except BaseException as exc:  # pragma: no cover - only on bug
            monitor.errors.append(exc)
            done.set()

    obs.enable()
    obs.reset()
    try:
        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert monitor.errors == [], monitor.errors
        assert monitor.torn == [], (
            f"{len(monitor.torn)} torn read(s): {monitor.torn[:3]}"
        )
        assert monitor.snapshots >= readers  # every reader really read

        # Cache coherence after the dust settles: one more pin evicts
        # anything stale, so every surviving key sits at the final
        # committed generation.
        final = service.snapshot()
        stale = [
            key for key in service.cache.keys() if key[0] != final.generation
        ]
        assert stale == [], f"stale cache keys survived: {stale}"

        # Accounting identity: each cached query is exactly one cache
        # lookup — a hit or a miss, never both, never neither.
        counters = obs.global_registry().snapshot()["counters"]
        hits = counters.get("service.cache.hit", 0.0)
        misses = counters.get("service.cache.miss", 0.0)
        assert hits + misses == float(monitor.cached_queries)
        assert counters["service.queries"] == float(monitor.cached_queries)
        assert hits > 0  # the cache actually served something
    finally:
        obs.disable()
        obs.reset()
    return monitor


def test_snapshot_readers_see_no_torn_state_smoke(tmp_path):
    _run_stress(tmp_path, cycles=12, readers=2, versions=3)


@pytest.mark.slow
def test_snapshot_readers_see_no_torn_state_200_cycles(tmp_path):
    """The full matrix: ≥200 refresh cycles under 4 concurrent readers."""
    monitor = _run_stress(tmp_path, cycles=200, readers=4, versions=4)
    assert monitor.snapshots >= 4


def test_single_snapshot_is_safe_for_concurrent_readers(tmp_path):
    """Many threads querying ONE snapshot handle race only on the lazily
    built containment ensemble — results must still be identical."""
    catalog_dir = tmp_path / "cat"
    CatalogStore.build(catalog_dir, _version_tables(0), **OPTS)
    service = QueryService(catalog_dir)
    snapshot = service.snapshot()
    from respdi.service import ContainmentQuery

    query = ContainmentQuery(values=("alpha_v0_1", "alpha_v0_2"), threshold=0.1)
    results = [None] * 8
    barrier = threading.Barrier(len(results))

    def probe(slot):
        barrier.wait()  # maximize the double-build race window
        results[slot] = snapshot.query(query)

    threads = [
        threading.Thread(target=probe, args=(slot,))
        for slot in range(len(results))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    reference = snapshot.query(query)
    assert all(repr(result) == repr(reference) for result in results)
