"""Table operations: constructors, row ops, grouping, joins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from respdi.errors import EmptyInputError, SchemaError, SpecificationError
from respdi.table import Eq, Schema, Table


def test_from_rows_and_accessors(small_table):
    assert len(small_table) == 7
    assert small_table.num_rows == 7
    assert small_table.row(0) == ("white", "F", 34.0)
    assert small_table.row(-1) == (None, "M", 40.0)


def test_row_index_out_of_range(small_table):
    with pytest.raises(IndexError):
        small_table.row(7)


def test_from_rows_validates_width(small_schema):
    with pytest.raises(SchemaError, match="row 0"):
        Table.from_rows(small_schema, [("a", "b")])


def test_from_dicts_fills_missing(small_schema):
    table = Table.from_dicts(small_schema, [{"race": "white", "age": 30}])
    assert table.row(0) == ("white", None, 30.0)


def test_numeric_coercion_error(small_schema):
    with pytest.raises(SchemaError, match="non-numeric"):
        Table.from_rows(small_schema, [("white", "F", "old")])


def test_column_length_mismatch(small_schema):
    with pytest.raises(SchemaError, match="lengths disagree"):
        Table(small_schema, {"race": ["a"], "gender": ["b", "c"], "age": [1.0]})


def test_columns_must_match_schema(small_schema):
    with pytest.raises(SchemaError, match="missing"):
        Table(small_schema, {"race": []})


def test_missing_mask(small_table):
    assert small_table.missing_mask("age").tolist() == [
        False, False, False, False, False, True, False,
    ]
    assert small_table.missing_mask("race").sum() == 1


def test_filter_and_take(small_table):
    black = small_table.filter(Eq("race", "black"))
    assert len(black) == 3
    first_two = small_table.take([0, 1])
    assert first_two.row(1) == ("white", "M", 51.0)
    duplicated = small_table.take([0, 0, 0])
    assert len(duplicated) == 3


def test_filter_mask_length_check(small_table):
    with pytest.raises(SpecificationError):
        small_table.filter_mask(np.array([True]))


def test_project_drop_rename(small_table):
    projected = small_table.project(["age", "race"])
    assert projected.column_names == ("age", "race")
    dropped = small_table.drop(["gender"])
    assert "gender" not in dropped.schema
    renamed = small_table.rename({"age": "years"})
    assert "years" in renamed.schema


def test_with_column_add_and_replace(small_table):
    extended = small_table.with_column("idx", "numeric", range(7))
    assert extended.column_names[-1] == "idx"
    replaced = extended.with_column("idx", "numeric", [0.0] * 7)
    assert replaced.aggregate("idx", "sum") == 0.0
    # Replacement keeps position.
    assert replaced.column_names == extended.column_names


def test_concat_requires_union_compatibility(small_table):
    both = small_table.concat(small_table)
    assert len(both) == 14
    other = Table.empty(Schema([("x", "numeric")]))
    with pytest.raises(SchemaError):
        small_table.concat(other)


def test_distinct(small_table):
    distinct = small_table.distinct(["gender"])
    assert len(distinct) == 2
    full = small_table.concat(small_table).distinct()
    assert len(full) == len(small_table)


def test_sample_and_shuffle(small_table, rng):
    sample = small_table.sample(3, rng)
    assert len(sample) == 3
    with pytest.raises(EmptyInputError):
        small_table.sample(100, rng)
    with_replacement = small_table.sample(100, rng, replace=True)
    assert len(with_replacement) == 100
    shuffled = small_table.shuffle(rng)
    assert sorted(map(repr, shuffled.iter_rows())) == sorted(
        map(repr, small_table.iter_rows())
    )


def test_sort_by_numeric_missing_last(small_table):
    table = small_table.sort_by("age")
    ages = [row[2] for row in table.iter_rows()]
    assert ages[:-1] == sorted(a for a in ages if a is not None and a == a)
    assert np.isnan(ages[-1])


def test_sort_by_descending(small_table):
    table = small_table.sort_by("age", descending=True)
    assert table.row(0)[2] == 62.0


def test_group_counts_and_indices(small_table):
    counts = small_table.group_counts(["gender"])
    assert counts[("F",)] == 4
    assert counts[("M",)] == 3
    indices = small_table.group_indices(["race"])
    assert len(indices[("black",)]) == 3


def test_value_counts_excludes_missing(small_table):
    counts = small_table.value_counts("race")
    assert counts == {"white": 3, "black": 3}
    assert small_table.unique("gender") == ["F", "M"]


def test_aggregates(small_table):
    assert small_table.aggregate("age", "count") == 6.0
    assert small_table.aggregate("age", "min") == 28.0
    assert small_table.aggregate("age", "max") == 62.0
    assert small_table.aggregate("age", "mean") == pytest.approx(43.333333, rel=1e-5)
    with pytest.raises(SpecificationError, match="unknown aggregate"):
        small_table.aggregate("age", "p99")
    with pytest.raises(SpecificationError, match="numeric"):
        small_table.aggregate("race", "mean")


def test_aggregate_empty_raises(small_schema):
    table = Table.empty(small_schema)
    with pytest.raises(EmptyInputError):
        table.aggregate("age", "mean")


def test_group_aggregate(small_table):
    means = small_table.group_aggregate(["gender"], "age", "mean")
    assert means[("M",)] == pytest.approx((51 + 45 + 40) / 3)


def test_inner_join_semantics():
    left = Table.from_rows(
        Schema([("k", "categorical"), ("a", "numeric")]),
        [("x", 1.0), ("y", 2.0), (None, 3.0)],
    )
    right = Table.from_rows(
        Schema([("k", "categorical"), ("b", "numeric")]),
        [("x", 10.0), ("x", 11.0), ("z", 12.0), (None, 13.0)],
    )
    joined = left.join(right, on=["k"])
    assert len(joined) == 2  # x matches twice; missing keys never join
    assert set(joined.column_names) == {"k", "a", "b"}


def test_left_join_fills_missing():
    left = Table.from_rows(
        Schema([("k", "categorical"), ("a", "numeric")]), [("x", 1.0), ("w", 2.0)]
    )
    right = Table.from_rows(
        Schema([("k", "categorical"), ("b", "numeric")]), [("x", 10.0)]
    )
    joined = left.join(right, on=["k"], how="left")
    assert len(joined) == 2
    values = dict(zip(joined.column("k"), joined.column("b")))
    assert values["x"] == 10.0
    assert np.isnan(values["w"])


def test_join_name_clash_gets_suffix():
    left = Table.from_rows(
        Schema([("k", "categorical"), ("v", "numeric")]), [("x", 1.0)]
    )
    right = Table.from_rows(
        Schema([("k", "categorical"), ("v", "numeric")]), [("x", 2.0)]
    )
    joined = left.join(right, on=["k"])
    assert set(joined.column_names) == {"k", "v", "v_r"}


def test_join_validations():
    left = Table.from_rows(Schema([("k", "categorical")]), [("x",)])
    right = Table.from_rows(Schema([("k", "numeric")]), [(1.0,)])
    with pytest.raises(SchemaError, match="different types"):
        left.join(right, on=["k"])
    with pytest.raises(SpecificationError):
        left.join(left, on=[])
    with pytest.raises(SpecificationError, match="unsupported"):
        left.join(left, on=["k"], how="outer")


def test_equals(small_table):
    assert small_table.equals(small_table.take(range(len(small_table))))
    assert not small_table.equals(small_table.head(3))


# -- property-based checks ----------------------------------------------------

simple_rows = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.none(), st.floats(-100, 100)),
    ),
    min_size=0,
    max_size=30,
)


@given(rows=simple_rows)
@settings(max_examples=50, deadline=None)
def test_concat_length_is_additive(rows):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(schema, rows)
    assert len(table.concat(table)) == 2 * len(table)


@given(rows=simple_rows)
@settings(max_examples=50, deadline=None)
def test_distinct_idempotent(rows):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(schema, rows)
    once = table.distinct()
    twice = once.distinct()
    assert once.equals(twice)


@given(rows=simple_rows, value=st.sampled_from(["a", "b", "c"]))
@settings(max_examples=50, deadline=None)
def test_filter_is_subset_and_complement_partitions(rows, value):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(schema, rows)
    matching = table.filter(Eq("g", value))
    complement = table.filter(~Eq("g", value))
    assert len(matching) + len(complement) == len(table)
    assert all(row[0] == value for row in matching.iter_rows())


@given(rows=simple_rows)
@settings(max_examples=30, deadline=None)
def test_join_matches_nested_loop_oracle(rows):
    schema = Schema([("g", "categorical"), ("x", "numeric")])
    table = Table.from_rows(schema, rows)
    joined = table.join(table.rename({"x": "x2"}), on=["g"])
    oracle = sum(
        1
        for a in table.iter_rows()
        for b in table.iter_rows()
        if a[0] is not None and a[0] == b[0]
    )
    assert len(joined) == oracle
