"""Cross-subsystem integration: the tutorial's whole story in one test.

Builds a lake containing clinic tables (union-compatible with the
query) plus distractors, then: discovers sources, tailors a balanced
collection, injects and repairs missingness, audits the §2
requirements, exports the transparency artifacts, and finally audits
the exported CSV through the CLI — every subsystem touching real output
of the previous one.
"""

import json

import numpy as np
import pytest

from respdi import ResponsibleIntegrationPipeline
from respdi.cleaning import GroupMeanImputer
from respdi.cli import main as cli_main
from respdi.datagen import make_source_tables, skewed_group_distributions
from respdi.datagen.population import default_health_population
from respdi.discovery import DataLakeIndex
from respdi.profiling import dump_json
from respdi.requirements import (
    CompletenessCorrectnessRequirement,
    DistributionRepresentationRequirement,
    FeatureRequirement,
    GroupRepresentationRequirement,
)
from respdi.table import ColumnType, Schema, Table, read_csv, write_csv
from respdi.tailoring import CountSpec


@pytest.fixture(scope="module")
def world():
    population = default_health_population(minority_fraction=0.2)
    distributions = skewed_group_distributions(
        population.group_distribution(), 3, concentration=5.0,
        specialized={0: ("F", "black")}, rng=61,
    )
    clinics = make_source_tables(population, distributions, 1800, rng=62)
    lake = DataLakeIndex(rng=0)
    for i, clinic in enumerate(clinics):
        lake.register(f"clinic{i}", clinic, description=f"clinic {i} records")
    # Distractors that are NOT union-compatible and must be filtered out.
    rng = np.random.default_rng(63)
    for d in range(5):
        lake.register(
            f"distractor{d}",
            Table(
                Schema([("thing", ColumnType.CATEGORICAL)]),
                {"thing": [f"d{d}_{i}" for i in range(50)]},
            ),
        )
    return population, lake


def test_full_story(world, tmp_path, capsys):
    population, lake = world

    # 1. Discovery: find tailoring sources in the lake by schema.
    pipeline = ResponsibleIntegrationPipeline(
        ("gender", "race"), target_column="y",
        imputers=[GroupMeanImputer("x0", ["race"])],
        coverage_threshold=30,
    )
    query = population.sample(80, rng=64)
    sources = pipeline.discover_sources(lake, query, k=10)
    assert set(sources) == {"clinic0", "clinic1", "clinic2"}

    # 2. Tailor + clean + audit + document.
    spec = CountSpec(("gender", "race"), {g: 40 for g in population.groups})
    requirements = [
        GroupRepresentationRequirement(
            ("gender", "race"), threshold=30,
            expected_domains={"gender": ["F", "M"], "race": ["white", "black"]},
        ),
        DistributionRepresentationRequirement(
            ("gender", "race"), {g: 0.25 for g in population.groups},
            max_divergence=0.15,
        ),
        FeatureRequirement(
            ["x0", "x1", "x2", "x3"], "y", ("gender", "race"),
            max_sensitive_association=0.95,
        ),
        CompletenessCorrectnessRequirement(
            ["x0", "x1", "x2", "x3"], ("race",),
        ),
    ]
    result = pipeline.run(sources, spec, requirements=requirements, rng=65)
    assert result.tailoring.satisfied
    assert result.fit_for_use
    assert len(result.table) == 160
    counts = result.table.group_counts(["gender", "race"])
    assert all(count == 40 for count in counts.values())

    # 3. Transparency artifacts export and survive a JSON round trip.
    label_path = tmp_path / "label.json"
    dump_json(result.label, label_path)
    with open(label_path) as handle:
        label_payload = json.load(handle)
    assert label_payload["rows"] == 160
    assert result.datasheet.render().startswith("# Datasheet")

    # 4. The integrated data round-trips through CSV...
    csv_path = tmp_path / "integrated.csv"
    write_csv(result.table, csv_path)
    assert read_csv(csv_path).equals(result.table)

    # 5. ...and passes the standalone CLI audit.
    code = cli_main(
        [
            str(csv_path),
            "--sensitive", "gender,race",
            "--target", "y",
            "--audit",
            "--coverage-threshold", "30",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "overall: PASS" in out
