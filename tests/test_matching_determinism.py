"""Matching determinism: gold sets and link sets are seed- and backend-stable.

Two independent claims, both load-bearing for the strength harness:

* **Hash-seed independence** — gold registries (corrupted tables + gold
  pairs) and every view's link set flow only through the seeded NumPy
  generator and content-based ordering, never Python's randomized
  ``hash()``; two processes with different ``PYTHONHASHSEED`` values
  must emit byte-identical CSVs, pair lists, and link sets.
* **Backend independence** — the fuzzy view's pair scoring fans out over
  :mod:`respdi.parallel`; serial and threaded runs must produce the same
  link sets (chunking is deterministic, matching is per-pair pure).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from respdi.datagen.duplicates import generate_gold_registry
from respdi.linkage import STRENGTH_ORDER, build_view
from respdi.parallel import ExecutionContext

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = r"""
import hashlib, json, os, sys, tempfile

from respdi.datagen.corruption import NameNoiseModel
from respdi.datagen.duplicates import generate_gold_registry
from respdi.linkage import STRENGTH_ORDER, build_view
from respdi.table import write_csv

reg = generate_gold_registry(
    50,
    duplicates_per_entity=2,
    noise=NameNoiseModel(),
    group_intensity={"green": 1.3},
    rng=23,
)
fd, csv_path = tempfile.mkstemp(suffix=".csv")
os.close(fd)
write_csv(reg.table, csv_path)
with open(csv_path, "rb") as handle:
    csv_digest = hashlib.blake2b(handle.read(), digest_size=16).hexdigest()
os.unlink(csv_path)

links = {
    strength: build_view(strength, ["name"]).link(reg.table).sorted_pairs()
    for strength in STRENGTH_ORDER
}
print(json.dumps({
    "csv": csv_digest,
    "pairs": sorted(list(pair) for pair in reg.pairs),
    "links": {s: [list(p) for p in ps] for s, ps in links.items()},
}))
"""


def _run(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def test_gold_sets_and_links_identical_across_hash_seeds():
    first = _run("1")
    second = _run("31337")
    assert first["csv"] == second["csv"]
    assert first["pairs"] == second["pairs"]
    assert first["links"] == second["links"]
    # Sanity: the registry actually contains duplicates to find.
    assert first["pairs"] and first["links"]["fuzzy"]


def test_same_seed_same_registry_in_process():
    a = generate_gold_registry(30, duplicates_per_entity=1, rng=42)
    b = generate_gold_registry(30, duplicates_per_entity=1, rng=42)
    assert a.pairs == b.pairs
    for name in a.table.column_names:
        assert list(a.table.column(name)) == list(b.table.column(name))


def test_different_seeds_differ():
    a = generate_gold_registry(30, duplicates_per_entity=1, rng=1)
    b = generate_gold_registry(30, duplicates_per_entity=1, rng=2)
    assert list(a.table.column("name")) != list(b.table.column("name"))


def test_all_views_agree_across_parallel_backends():
    reg = generate_gold_registry(
        70, duplicates_per_entity=2, rng=19, group_intensity={"green": 1.5}
    )
    serial = ExecutionContext(backend="serial")
    threads = ExecutionContext(backend="threads", n_jobs=4)
    for strength in STRENGTH_ORDER:
        view_a = build_view(strength, ["name"])
        view_b = build_view(strength, ["name"])
        links_serial = view_a.link(reg.table, context=serial)
        links_threads = view_b.link(reg.table, context=threads)
        assert links_serial.pairs == links_threads.pairs, strength
        assert links_serial.clusters == links_threads.clusters, strength
