"""JSON export of transparency artifacts."""

import json

import pytest

from respdi.profiling import (
    audit_to_dict,
    build_datasheet,
    build_nutritional_label,
    datasheet_to_dict,
    dump_json,
    label_to_dict,
)
from respdi.requirements import GroupRepresentationRequirement, audit_requirements


@pytest.fixture
def label(health_table):
    return build_nutritional_label(
        health_table, ["gender", "race"], target_column="y",
        coverage_threshold=20,
    )


@pytest.fixture
def datasheet(health_table):
    return build_datasheet(
        "export test", health_table, motivation="m", collection_process="c",
        known_limitations=["synthetic"],
    )


@pytest.fixture
def audit(health_table):
    return audit_requirements(
        health_table,
        [GroupRepresentationRequirement(("gender", "race"), threshold=20)],
    )


def test_label_roundtrips_through_json(label):
    payload = label_to_dict(label)
    text = json.dumps(payload)
    back = json.loads(text)
    assert back["rows"] == label.profile.row_count
    assert set(back["feature_target_correlation"]) == {"x0", "x1", "x2", "x3"}
    # Tuple keys flattened to readable strings.
    assert all("|" in key for key in back["feature_sensitive_association"])


def test_datasheet_roundtrips_through_json(datasheet):
    payload = datasheet_to_dict(datasheet)
    back = json.loads(json.dumps(payload))
    assert back["title"] == "export test"
    assert back["known_limitations"] == ["synthetic"]
    assert "composition" in back
    assert back["composition"]["rows"] > 0


def test_audit_roundtrips_through_json(audit):
    payload = audit_to_dict(audit)
    back = json.loads(json.dumps(payload))
    assert back["passed"] == audit.passed
    assert back["requirements"][0]["requirement"] == "group-representation"


def test_dump_json_dispatch(tmp_path, label, datasheet, audit):
    for name, artifact in (
        ("label", label), ("sheet", datasheet), ("audit", audit),
    ):
        path = tmp_path / f"{name}.json"
        dump_json(artifact, path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert isinstance(loaded, dict)


def test_dump_json_plain_dict(tmp_path):
    import numpy as np

    path = tmp_path / "plain.json"
    dump_json({("a", "b"): np.float64(1.5), "nan": float("nan")}, path)
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == {"a|b": 1.5, "nan": None}
